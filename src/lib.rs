#![warn(missing_docs)]

//! Concord: learning network configuration contracts.
//!
//! This umbrella crate re-exports the public API of the Concord workspace
//! — a from-scratch Rust reproduction of *"Concord: Learning Network
//! Configuration Contracts"* (EuroSys 2026). Concord learns lightweight,
//! line-local *contracts* from example network configurations and checks
//! new or changed configurations against them, reporting line-localized
//! violations before a misconfiguration reaches the network.
//!
//! # Quickstart
//!
//! ```
//! use concord::core::{check, learn, Dataset, LearnParams};
//!
//! // Training configurations (normally read from files).
//! let configs: Vec<(String, String)> = (0..6)
//!     .map(|i| {
//!         (
//!             format!("device-{i}"),
//!             format!("interface Loopback0\n ip address 10.0.0.{i}\nip prefix-list lo\n seq 10 permit 10.0.0.{i}/32\n"),
//!         )
//!     })
//!     .collect();
//!
//! // Learn contracts...
//! let dataset = Dataset::from_named_texts(&configs, &[]).unwrap();
//! let mut params = LearnParams::default();
//! params.support = 3;
//! let contracts = learn(&dataset, &params);
//!
//! // ...and check a changed configuration.
//! let broken = vec![(
//!     "device-x".to_string(),
//!     "interface Loopback0\n ip address 10.0.0.200\nip prefix-list lo\n seq 10 permit 10.0.0.1/32\n".to_string(),
//! )];
//! let test = Dataset::from_named_texts(&broken, &[]).unwrap();
//! let report = check(&contracts, &test);
//! assert!(!report.violations.is_empty());
//! ```
//!
//! # Crate map
//!
//! | Module | Contents |
//! |---|---|
//! | [`core`] | contract model, learning engine, checking, coverage |
//! | [`lexer`] | typed-pattern extraction (§3.2) |
//! | [`formats`] | format inference and context embedding (§3.1) |
//! | [`types`] | configuration value types and transformations |
//! | [`regex`] | the regex engine backing the lexer |
//! | [`graph`] | SCC / transitive reduction used by minimization (§3.6) |
//! | [`datagen`] | synthetic dataset generator (stand-in for §5.1 data) |
//! | [`baseline`] | Apriori / FP-Growth / brute-force baselines |

pub use concord_baseline as baseline;
pub use concord_core as core;
pub use concord_datagen as datagen;
pub use concord_formats as formats;
pub use concord_graph as graph;
pub use concord_lexer as lexer;
pub use concord_regex as regex;
pub use concord_types as types;
