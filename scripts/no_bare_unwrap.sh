#!/usr/bin/env bash
# Gate: the fault-isolated paths must not contain a bare `.unwrap()`
# outside `#[cfg(test)]`. A panic in the engine or the serve loop is
# supposed to be impossible by construction (typed errors + `.expect()`
# with an invariant message where infallibility is provable); a bare
# unwrap is how "impossible" states take the whole resident process
# down. Test modules sit at the end of each file, so everything from
# the first `#[cfg(test)]` marker onward is exempt.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
# crates/core/src/ir.rs and legacy.rs carry the arena-interned dataset
# the resident engine holds in memory — same blast radius, same gate.
for f in crates/engine/src/*.rs crates/cli/src/serve.rs \
         crates/cli/src/protocol.rs crates/cli/src/eventloop.rs \
         crates/cli/src/sync.rs crates/cli/src/fleet.rs \
         crates/core/src/ir.rs crates/core/src/legacy.rs; do
  hits=$(awk '/#\[cfg\(test\)\]/{exit} /\.unwrap\(\)/{print FILENAME ":" FNR ": " $0}' "$f")
  if [ -n "$hits" ]; then
    echo "$hits"
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "error: bare .unwrap() outside #[cfg(test)] in fault-isolated code" >&2
  exit 1
fi
echo "ok: no bare unwrap outside tests in crates/engine, the serve stack, and the core IR"
