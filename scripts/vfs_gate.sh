#!/usr/bin/env bash
# Gate: the durability layer must do ALL of its filesystem I/O through
# the `Vfs` trait. A direct `std::fs` / `File` / `OpenOptions` call in
# wal.rs, store.rs, or image.rs would bypass fault injection and
# crash-point counting, silently shrinking the crash-exploration
# surface the storage tests rely on. Test modules sit at the end of
# each file, so everything from the first `#[cfg(test)]` marker onward
# is exempt (tests may stage real files to corrupt).
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
for f in crates/engine/src/wal.rs crates/engine/src/store.rs \
         crates/engine/src/image.rs; do
  hits=$(awk '/#\[cfg\(test\)\]/{exit}
    /(^|[^A-Za-z0-9_])(std::fs|fs::|File::|OpenOptions)/ {print FILENAME ":" FNR ": " $0}' "$f")
  if [ -n "$hits" ]; then
    echo "$hits"
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "error: direct filesystem access outside #[cfg(test)] in the durability layer — route it through Vfs" >&2
  exit 1
fi
echo "ok: wal.rs, store.rs, and image.rs touch the filesystem only through Vfs"
