//! Whole-pipeline robustness tests: random mutations of generated
//! configurations must never panic the pipeline, and every reported
//! violation must be well-localized.

// NOTE: the hermetic build has no `proptest`; enable the `proptests`
// feature after vendoring it to run this suite.
#![cfg(feature = "proptests")]

use concord::core::{check, learn, Dataset, LearnParams};
use concord::datagen::{generate_role, standard_roles};
use proptest::prelude::*;

/// Applies a deterministic text-level mutation to one config.
fn mutate(text: &str, kind: u8, pos: usize) -> String {
    let lines: Vec<&str> = text.lines().collect();
    if lines.is_empty() {
        return text.to_string();
    }
    let i = pos % lines.len();
    let mut out: Vec<String> = lines.iter().map(|s| s.to_string()).collect();
    match kind % 6 {
        0 => {
            out.remove(i);
        }
        1 => out.insert(i, "garbage inserted line 42".to_string()),
        2 => out[i] = out[i].replace(|c: char| c.is_ascii_digit(), "9"),
        3 => out.swap(i, (i + 1) % lines.len()),
        4 => out[i] = format!("{}{}", out[i], out[i]),
        _ => out[i] = out[i].chars().rev().collect(),
    }
    let mut joined = out.join("\n");
    joined.push('\n');
    joined
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Checking mutated configurations is total, and violations always
    /// point at real lines of the named configuration.
    #[test]
    fn mutated_configs_check_without_panic(
        role_idx in 0usize..10,
        seed in 0u64..50,
        kind in 0u8..12,
        pos in 0usize..500,
    ) {
        let spec = &standard_roles(0.25)[role_idx];
        let role = generate_role(spec, 9000 + seed);
        let train = Dataset::from_named_texts(&role.configs, &role.metadata).unwrap();
        let params = LearnParams { support: 2, ..LearnParams::default() };
        let contracts = learn(&train, &params);

        let (victim, text) = &role.configs[0];
        let mutated = mutate(text, kind, pos);
        let test = Dataset::from_named_texts(
            &[(victim.clone(), mutated.clone())],
            &role.metadata,
        )
        .unwrap();
        let report = check(&contracts, &test);

        let line_count = mutated.lines().count() as u32;
        for v in &report.violations {
            prop_assert_eq!(v.config.as_str(), victim.as_str());
            prop_assert!(v.contract_index < contracts.len());
            if let Some(n) = v.line_no {
                // Metadata violations carry metadata line numbers; config
                // violations must stay within the file.
                let meta_lines = role
                    .metadata
                    .iter()
                    .map(|(_, t)| t.lines().count() as u32)
                    .max()
                    .unwrap_or(0);
                prop_assert!(
                    n >= 1 && (n <= line_count || n <= meta_lines),
                    "line {n} out of range (config {line_count} lines)"
                );
            }
        }
    }

    /// Deleting a random line never makes checking report *fewer*
    /// categories than deleting nothing... more precisely: the clean
    /// config checks clean except for planted anomalies, and deletion
    /// only ever adds violations about this config.
    #[test]
    fn deletion_only_adds_violations(seed in 0u64..30, pos in 0usize..300) {
        let spec = standard_roles(0.25)
            .into_iter()
            .find(|s| s.name == "W1")
            .unwrap();
        let role = generate_role(&spec, 7000 + seed);
        let train = Dataset::from_named_texts(&role.configs, &role.metadata).unwrap();
        let params = LearnParams { support: 2, ..LearnParams::default() };
        let contracts = learn(&train, &params);

        let (victim, text) = &role.configs[0];
        let clean = Dataset::from_named_texts(
            &[(victim.clone(), text.clone())],
            &role.metadata,
        )
        .unwrap();
        let clean_count = check(&contracts, &clean).violations.len();

        let mutated = mutate(text, 0, pos); // Kind 0 = deletion.
        let test = Dataset::from_named_texts(
            &[(victim.clone(), mutated)],
            &role.metadata,
        )
        .unwrap();
        let mutated_count = check(&contracts, &test).violations.len();
        // Deleting a line can remove at most the violations that pointed
        // at it; it cannot reduce the count below clean minus a handful.
        prop_assert!(
            mutated_count + 3 >= clean_count,
            "deletion hid violations: clean={clean_count} mutated={mutated_count}"
        );
    }
}

/// The lexer + embedder handle pathological inputs without panicking.
#[test]
fn pathological_inputs_are_total() {
    let nasty = [
        "".to_string(),
        "\n\n\n".to_string(),
        " ".repeat(10_000),
        "x".repeat(10_000),
        format!("{}\n", "9".repeat(5_000)),
        "déjà vu ünïcode ライン\n".to_string(),
        "{\"unterminated\": \n".to_string(),
        "key: [unclosed\n".to_string(),
        "\t\tmixed \t indentation\n  spaces\n".to_string(),
        "0x 0x0x 1.2.3.4.5.6.7.8 :::::: ff:ff\n".to_string(),
    ];
    let configs: Vec<(String, String)> = nasty
        .iter()
        .enumerate()
        .map(|(i, t)| (format!("n{i}"), t.clone()))
        .collect();
    let ds = Dataset::from_named_texts(&configs, &[]).unwrap();
    let contracts = learn(&ds, &LearnParams::default());
    let report = check(&contracts, &ds);
    let _ = report.coverage.summary();
}
