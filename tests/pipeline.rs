//! Cross-crate integration tests: datagen → learn → check on every
//! standard role.

use concord::core::{check, learn, Dataset, LearnParams};
use concord::datagen::{generate_role, standard_roles};

fn build(role: &concord::datagen::GeneratedRole) -> Dataset {
    Dataset::from_named_texts(&role.configs, &role.metadata).unwrap()
}

#[test]
fn every_role_learns_and_checks_clean() {
    for spec in standard_roles(0.5) {
        let role = generate_role(&spec, 42);
        let dataset = build(&role);
        let contracts = learn(&dataset, &LearnParams::default());
        assert!(
            contracts.len() > 5,
            "{}: too few contracts ({})",
            spec.name,
            contracts.len()
        );
        let report = check(&contracts, &dataset);
        // The single planted mistyped line is an anomaly that type and
        // ordering contracts legitimately flag even on the training set
        // (the paper: anomalies "are flagged pre-deployment for quick
        // dismissal"); every other category must be clean.
        let unexpected: Vec<_> = report
            .violations
            .iter()
            .filter(|v| v.category != "type" && v.category != "ordering")
            .collect();
        assert!(
            unexpected.is_empty(),
            "{}: learned contracts must hold on their own training set: {:#?}",
            spec.name,
            &unexpected[..unexpected.len().min(5)]
        );
        assert!(
            report.violations.len() <= 4,
            "{}: too many anomaly flags: {}",
            spec.name,
            report.violations.len()
        );
    }
}

#[test]
fn edge_role_learns_figure_1_contract_shapes() {
    let spec = standard_roles(0.5)
        .into_iter()
        .find(|s| s.name == "E1")
        .unwrap();
    let role = generate_role(&spec, 7);
    let dataset = build(&role);
    let contracts = learn(&dataset, &LearnParams::default());
    let descriptions: Vec<String> = contracts.contracts.iter().map(|c| c.describe()).collect();
    let any = |needle: &str| descriptions.iter().any(|d| d.contains(needle));

    // Contract 1: hex(port-channel) == MAC segment.
    assert!(any("hex(l1.a)") || any("segment("), "hex/segment missing");
    // Contract 2: address contained in prefix-list entry.
    assert!(any("contains("), "contains missing");
    // Contract 3: RD ends with VLAN id.
    assert!(any("endswith("), "endswith missing");
    // Presence of structural blocks.
    assert!(any("exists l ~ /router bgp [a:num]"), "present missing");
}

#[test]
fn learned_contracts_transfer_to_fresh_devices() {
    // Learn on one seed, check devices generated with another seed from
    // the same role template: planted invariants must still hold.
    let spec = standard_roles(0.5)
        .into_iter()
        .find(|s| s.name == "W1")
        .unwrap();
    let train = generate_role(&spec, 1);
    let test = generate_role(&spec, 2);
    let mut contracts = learn(&build(&train), &LearnParams::default());
    // Ordering contracts capture the deployment's fixed-but-
    // interchangeable line order and do not transfer across deployments;
    // the production service disables them (§5.4).
    contracts
        .contracts
        .retain(|c| !matches!(c, concord::core::Contract::Ordering { .. }));
    let report = check(&contracts, &build(&test));
    // Same-template devices may differ in role-wide constants (e.g. a
    // different site octet), so allow a small residue but no blow-up.
    let budget = test.configs.len() * 3;
    assert!(
        report.violations.len() <= budget,
        "too many cross-seed violations: {} > {budget}: {:#?}",
        report.violations.len(),
        &report.violations[..report.violations.len().min(5)]
    );
}

#[test]
fn coverage_majority_on_edge_roles() {
    // The paper reports > 84% coverage on edge datasets (Table 4).
    let spec = standard_roles(0.5)
        .into_iter()
        .find(|s| s.name == "E1")
        .unwrap();
    let role = generate_role(&spec, 3);
    let dataset = build(&role);
    let params = LearnParams {
        learn_constants: true,
        ..LearnParams::default()
    };
    let contracts = learn(&dataset, &params);
    let report = check(&contracts, &dataset);
    let summary = report.coverage.summary();
    assert!(
        summary.fraction > 0.6,
        "edge coverage too low: {} ({:#?})",
        summary.fraction,
        summary.by_category
    );
}

#[test]
fn metadata_relations_are_learned() {
    // The edge role links `vlan <v>` blocks to metadata `vlanId: <v>`.
    let spec = standard_roles(0.5)
        .into_iter()
        .find(|s| s.name == "E1")
        .unwrap();
    let role = generate_role(&spec, 5);
    assert!(!role.metadata.is_empty());
    let dataset = build(&role);
    let contracts = learn(&dataset, &LearnParams::default());
    let has_meta_relation = contracts.contracts.iter().any(|c| {
        let d = c.describe();
        d.contains("@meta") && d.starts_with("forall")
    });
    assert!(
        has_meta_relation,
        "no config<->metadata relational contract"
    );
}

#[test]
fn minimization_reduces_relational_contracts() {
    let spec = standard_roles(0.5)
        .into_iter()
        .find(|s| s.name == "E1")
        .unwrap();
    let role = generate_role(&spec, 5);
    let dataset = build(&role);
    let minimized = learn(&dataset, &LearnParams::default());
    let unminimized = learn(
        &dataset,
        &LearnParams {
            minimize: false,
            ..LearnParams::default()
        },
    );
    let count = |set: &concord::core::ContractSet| {
        set.contracts
            .iter()
            .filter(|c| matches!(c, concord::core::Contract::Relational(_)))
            .count()
    };
    assert!(
        count(&minimized) <= count(&unminimized),
        "minimization must not grow the set"
    );
    assert_eq!(
        minimized.relational_before_minimization, unminimized.relational_before_minimization,
        "pre-minimization count is recorded identically"
    );
    assert!(minimized.relational_before_minimization >= count(&minimized));
}

#[test]
fn parallel_learning_matches_sequential() {
    let spec = standard_roles(0.5)
        .into_iter()
        .find(|s| s.name == "W2")
        .unwrap();
    let role = generate_role(&spec, 13);
    let dataset = build(&role);
    let seq = learn(&dataset, &LearnParams::default());
    let par = learn(
        &dataset,
        &LearnParams {
            parallelism: 4,
            ..LearnParams::default()
        },
    );
    assert_eq!(seq.contracts, par.contracts);
}

#[test]
fn contracts_roundtrip_through_json() {
    let spec = standard_roles(0.5)
        .into_iter()
        .find(|s| s.name == "E2")
        .unwrap();
    let role = generate_role(&spec, 21);
    let dataset = build(&role);
    let contracts = learn(&dataset, &LearnParams::default());
    let json = contracts.to_json();
    let back = concord::core::ContractSet::from_json(&json).unwrap();
    assert_eq!(back.contracts, contracts.contracts);
    // Checking with the deserialized set gives identical results.
    let a = check(&contracts, &dataset);
    let b = check(&back, &dataset);
    assert_eq!(a.violations, b.violations);
}
