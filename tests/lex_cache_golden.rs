//! Golden equivalence test for the shared lex cache.
//!
//! The cache is a pure memoization: building a [`Dataset`] with it must
//! produce byte-identical results to the uncached scanner — same pattern
//! table, same line records, and a byte-identical serialized
//! [`ContractSet`] — at every parallelism level. The inputs are the
//! checked-in sample configurations under `examples/configs/`.

use concord_core::{learn, Dataset, LearnParams};
use concord_lexer::{LexCache, Lexer};

fn example_configs() -> Vec<(String, String)> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/configs");
    let mut out: Vec<(String, String)> = std::fs::read_dir(&dir)
        .expect("examples/configs exists")
        .filter_map(|entry| {
            let path = entry.expect("readable dir entry").path();
            if path.extension().is_some_and(|e| e == "cfg") {
                let name = path.file_stem().unwrap().to_string_lossy().into_owned();
                let text = std::fs::read_to_string(&path).expect("readable config");
                Some((name, text))
            } else {
                None
            }
        })
        .collect();
    out.sort();
    assert!(
        out.len() >= 6,
        "expected the checked-in sample configs, found {}",
        out.len()
    );
    out
}

fn assert_datasets_identical(a: &Dataset, b: &Dataset, label: &str) {
    assert_eq!(a.pattern_count(), b.pattern_count(), "{label}: patterns");
    for (id, text) in a.table.iter() {
        assert_eq!(text, b.table.text(id), "{label}: pattern {id:?}");
    }
    assert_eq!(a.configs.len(), b.configs.len(), "{label}: configs");
    for (ca, cb) in a.configs.iter().zip(&b.configs) {
        let name = a.name_of(ca);
        assert_eq!(name, b.name_of(cb), "{label}");
        assert_eq!(ca.format, cb.format, "{label}: {name}");
        assert_eq!(ca.len(), cb.len(), "{label}: {name}");
        for (la, lb) in ca.lines(&a.arenas).zip(cb.lines(&b.arenas)) {
            assert_eq!(la.pattern, lb.pattern, "{label}: {name}:{}", la.line_no);
            assert_eq!(la.params, lb.params, "{label}: {name}:{}", la.line_no);
            assert_eq!(la.line_no, lb.line_no, "{label}: {name}");
            assert_eq!(la.original, lb.original, "{label}: {name}");
            assert_eq!(la.is_meta, lb.is_meta, "{label}: {name}");
        }
    }
}

#[test]
fn cached_build_is_byte_identical_to_uncached() {
    let configs = example_configs();
    let lexer = Lexer::standard();
    let params = LearnParams {
        support: 3,
        ..LearnParams::default()
    };

    let (reference, _) =
        Dataset::build_with_stats(&configs, &[], &lexer, true, 1, None).expect("uncached build");
    let reference_contracts = learn(&reference, &params).to_json();

    for parallelism in [1usize, 8] {
        let cache = LexCache::new();
        let (cached, stats) =
            Dataset::build_with_stats(&configs, &[], &lexer, true, parallelism, Some(&cache))
                .expect("cached build");
        let label = format!("parallelism {parallelism}");
        assert_datasets_identical(&reference, &cached, &label);

        // The whole point of the cache: repeated line shapes hit.
        assert!(stats.cache_enabled, "{label}");
        assert!(
            stats.cache_hits > 0,
            "{label}: expected hits over {} lookups",
            stats.cache_hits + stats.cache_misses
        );
        // Every distinct line shape missed at least once. At parallelism
        // 1 that is exact; with concurrent workers two threads can race
        // on the same shape (both miss, both scan, one insert wins), so
        // misses may legitimately exceed the entry count.
        assert!(
            stats.cache_misses as usize >= cache.len(),
            "{label}: {} misses < {} distinct shapes",
            stats.cache_misses,
            cache.len()
        );
        if parallelism == 1 {
            assert_eq!(
                stats.cache_misses as usize,
                cache.len(),
                "{label}: one miss per distinct line shape"
            );
        }

        let contracts = learn(&cached, &params).to_json();
        assert_eq!(
            contracts, reference_contracts,
            "{label}: serialized contracts differ"
        );
    }
}

#[test]
fn shared_cache_across_builds_keeps_outputs_identical() {
    let configs = example_configs();
    let lexer = Lexer::standard();
    let cache = LexCache::new();

    let (first, first_stats) =
        Dataset::build_with_stats(&configs, &[], &lexer, true, 4, Some(&cache)).expect("build");
    let (second, second_stats) =
        Dataset::build_with_stats(&configs, &[], &lexer, true, 4, Some(&cache)).expect("rebuild");

    assert_datasets_identical(&first, &second, "shared cache rebuild");
    // The second pass over identical inputs is answered entirely from the
    // cache.
    assert_eq!(second_stats.cache_misses, 0);
    assert_eq!(
        second_stats.cache_hits,
        first_stats.cache_hits + first_stats.cache_misses
    );
}
