//! Regression tests: the headline Figure 1 contracts must keep being
//! learned, in exactly the paper's rendered form, from the standard E1
//! role at a fixed seed.

use concord::core::{learn, Dataset, LearnParams};
use concord::datagen::{generate_role, standard_roles};

fn descriptions() -> Vec<String> {
    let spec = standard_roles(0.5)
        .into_iter()
        .find(|s| s.name == "E1")
        .unwrap();
    let role = generate_role(&spec, 20260427);
    let dataset = Dataset::from_named_texts(&role.configs, &role.metadata).unwrap();
    learn(&dataset, &LearnParams::default())
        .contracts
        .iter()
        .map(|c| c.describe())
        .collect()
}

/// The exact rendered contracts that correspond to the paper's Figure 1,
/// as learned from the synthetic E1 role. If a refactor changes learning
/// or rendering, this is the test that says so.
#[test]
fn figure_1_contracts_render_exactly() {
    let descriptions = descriptions();
    let expected = [
        // Contract 1: hex(port-channel number) == MAC segment 6.
        "forall l1 ~ /interface Port-Channel[a:num]\n\
         exists l2 ~ /interface Port-Channel[num]/evpn ether-segment/route-target import [a:mac]\n\
         equals(hex(l1.a), segment(l2.a, 6))",
        // Contract 2: loopback address permitted by the prefix list.
        "forall l1 ~ /interface Loopback[num]/ip address [a:ip4]\n\
         exists l2 ~ /ip prefix-list loopback/seq [a:num] permit [b:pfx4]\n\
         contains(l2.b, l1.a)",
        // Contract 5-ish: the BGP block is present everywhere.
        "exists l ~ /router bgp [a:num]",
        // The loopback interface is present everywhere.
        "exists l ~ /interface Loopback[a:num]",
    ];
    for wanted in expected {
        assert!(
            descriptions.iter().any(|d| d == wanted),
            "missing contract:\n{wanted}\n\nlearned ({}):\n{}",
            descriptions.len(),
            descriptions.join("\n---\n")
        );
    }
}

/// Contract 3 (RD ends with VLAN id) in the paper's endswith form.
#[test]
fn figure_1_contract_3_learned() {
    let descriptions = descriptions();
    let found = descriptions.iter().any(|d| {
        d.starts_with("forall l1 ~ /router bgp [num]/vlan [a:num]")
            && d.contains("endswith(str(l2.")
            && d.contains("str(l1.a))")
    });
    assert!(
        found,
        "missing the vlan/rd endswith contract; affix contracts learned:\n{}",
        descriptions
            .iter()
            .filter(|d| d.contains("endswith"))
            .cloned()
            .collect::<Vec<_>>()
            .join("\n---\n")
    );
}

/// The config ↔ metadata relation behind the §5.5 MAC-broadcast-loop
/// catch: every configured VLAN id appears in the role metadata.
#[test]
fn metadata_vlan_contract_learned() {
    let descriptions = descriptions();
    // Minimization may route the VLAN clique's reachability through any
    // of its members (vlan block, vni, interface Vlan, name); what must
    // survive is a config-side antecedent whose witness lives in the
    // metadata.
    let found = descriptions
        .iter()
        .any(|d| d.starts_with("forall l1 ~ /") && d.contains("exists l2 ~ @meta/nfInfos/vlanId"));
    assert!(
        found,
        "missing a config -> metadata vlan contract; @meta contracts:\n{}",
        descriptions
            .iter()
            .filter(|d| d.contains("@meta"))
            .cloned()
            .collect::<Vec<_>>()
            .join("\n---\n")
    );
}

/// Learned sets are stable across processes for a fixed seed: the same
/// role and seed always produce the same contract list (determinism is
/// what makes CI diffs meaningful).
#[test]
fn learned_set_is_reproducible() {
    let a = descriptions();
    let b = descriptions();
    assert_eq!(a, b);
}
