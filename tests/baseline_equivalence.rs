//! Cross-crate checks on the baseline miners: the two frequent-item-set
//! algorithms agree on real generated data, and the key–value model's
//! information loss is visible on every role.

use concord::baseline::{apriori, fpgrowth, generate_rules, kv};
use concord::core::Dataset;
use concord::datagen::{generate_role, standard_roles};

fn dataset(role_name: &str) -> Dataset {
    let spec = standard_roles(0.4)
        .into_iter()
        .find(|s| s.name == role_name)
        .unwrap();
    let role = generate_role(&spec, 2026);
    Dataset::from_named_texts(&role.configs, &role.metadata).unwrap()
}

#[test]
fn apriori_and_fpgrowth_agree_on_generated_roles() {
    for role in ["E1", "W2", "W5"] {
        let ds = dataset(role);
        let (transactions, _) = kv::transactions(&kv::from_dataset(&ds));
        for min_support in [3usize, 5, 10] {
            let mut a = apriori::mine(&transactions, min_support, 2);
            let mut f = fpgrowth::mine(&transactions, min_support, 2);
            a.sort_by(|x, y| x.items.cmp(&y.items));
            f.sort_by(|x, y| x.items.cmp(&y.items));
            assert_eq!(a, f, "{role} at support {min_support}");
        }
    }
}

#[test]
fn kv_rules_are_nonempty_but_line_losses_are_heavy() {
    for role in ["E1", "W1", "W4", "W8"] {
        let ds = dataset(role);
        let lost = kv::lost_fraction(&ds);
        assert!(
            lost > 0.3,
            "{role}: expected heavy key-collision loss, got {lost}"
        );
        let (transactions, names) = kv::transactions(&kv::from_dataset(&ds));
        let sets = apriori::mine(&transactions, 3, 2);
        let rules = generate_rules(&sets, 0.9);
        assert!(!rules.is_empty(), "{role}: kv pipeline mined nothing");
        // Every rule references interned items.
        for rule in &rules {
            assert!((rule.consequent as usize) < names.len());
            for &item in &rule.antecedent {
                assert!((item as usize) < names.len());
            }
            assert!(rule.confidence >= 0.9 && rule.confidence <= 1.0);
        }
    }
}

#[test]
fn frequent_sets_respect_support_monotonicity() {
    let ds = dataset("W3");
    let (transactions, _) = kv::transactions(&kv::from_dataset(&ds));
    let loose = apriori::mine(&transactions, 3, 2);
    let strict = apriori::mine(&transactions, 8, 2);
    // Every strict-frequent set is loose-frequent with the same support.
    for set in &strict {
        assert!(
            loose
                .iter()
                .any(|s| s.items == set.items && s.support == set.support),
            "{:?} missing at looser support",
            set.items
        );
    }
    assert!(strict.len() <= loose.len());
}
