//! Context embedding for YAML documents (pragmatic subset).
//!
//! Concord does not need full YAML semantics — only the hierarchy of keys
//! leading to each line. This embedder handles the subset that appears in
//! real configuration metadata: block mappings (`key:` / `key: value`),
//! block sequences (`- item`, including `- key: value` inline mappings),
//! comments, and document markers. Flow collections, anchors, and
//! multi-line scalars are treated as opaque scalar text, which degrades
//! gracefully (the line is still captured, just without deeper structure).

use crate::EmbeddedLine;

/// Embeds a YAML document.
pub fn embed(text: &str) -> Vec<EmbeddedLine> {
    let mut out = Vec::new();
    // Stack of (indent, path_component).
    let mut stack: Vec<(usize, String)> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = (i + 1) as u32;
        let no_comment = strip_comment(raw);
        let trimmed = no_comment.trim_end();
        let content = trimmed.trim_start();
        if content.is_empty() || content == "---" || content == "..." {
            continue;
        }
        let mut indent = trimmed.len() - content.len();
        let mut content = content;

        // Sequence items nest under the key that introduced the sequence;
        // `- ` itself adds one level of effective indentation.
        while let Some(rest) = content
            .strip_prefix("- ")
            .or_else(|| (content == "-").then_some(""))
        {
            while matches!(stack.last(), Some(&(top, _)) if top >= indent) {
                stack.pop();
            }
            // Re-anchor nested content two columns deeper, matching the
            // `- ` prefix width.
            indent += 2;
            content = rest.trim_start();
            if content.is_empty() {
                break;
            }
        }
        if content.is_empty() {
            continue;
        }

        while matches!(stack.last(), Some(&(top, _)) if top >= indent) {
            stack.pop();
        }

        let parents: Vec<String> = stack.iter().map(|(_, p)| p.clone()).collect();
        match split_mapping(content) {
            Some((key, "")) => {
                // `key:` opens a nested block; it is both a content line
                // and a parent for what follows.
                out.push(EmbeddedLine {
                    line_no,
                    parents,
                    original: key.to_string(),
                });
                stack.push((indent, key.to_string()));
            }
            Some((key, value)) => {
                out.push(EmbeddedLine {
                    line_no,
                    parents,
                    original: format!("{key} {value}"),
                });
                // A `key: value` line can still parent an indented block
                // in odd documents; treat it as a potential parent too.
                stack.push((indent, key.to_string()));
            }
            None => {
                out.push(EmbeddedLine {
                    line_no,
                    parents,
                    original: content.to_string(),
                });
                stack.push((indent, content.to_string()));
            }
        }
    }
    out
}

/// Splits `key: value` / `key:` lines; returns `None` for plain scalars.
fn split_mapping(content: &str) -> Option<(&str, &str)> {
    let colon = content.find(':')?;
    let key = &content[..colon];
    let after = &content[colon + 1..];
    let key_ok = !key.is_empty()
        && key
            .chars()
            .all(|c| c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | ' '));
    if !key_ok {
        return None;
    }
    if after.is_empty() {
        Some((key, ""))
    } else if let Some(value) = after.strip_prefix(' ') {
        Some((key, value.trim().trim_matches('"').trim_matches('\'')))
    } else {
        None
    }
}

/// Removes a trailing ` # comment` (not inside quotes — kept simple since
/// embedded output is heuristic anyway).
fn strip_comment(line: &str) -> &str {
    let mut in_single = false;
    let mut in_double = false;
    for (i, c) in line.char_indices() {
        match c {
            '\'' if !in_double => in_single = !in_single,
            '"' if !in_single => in_double = !in_double,
            '#' if !in_single
                && !in_double
                && (i == 0 || line.as_bytes()[i - 1].is_ascii_whitespace()) =>
            {
                return &line[..i];
            }
            _ => {}
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    fn find<'a>(lines: &'a [EmbeddedLine], original: &str) -> &'a EmbeddedLine {
        lines
            .iter()
            .find(|l| l.original == original)
            .unwrap_or_else(|| panic!("line {original:?} missing from {lines:#?}"))
    }

    #[test]
    fn nested_mappings() {
        let text = "device:\n  name: spine1\n  bgp:\n    asn: 65015\n";
        let lines = embed(text);
        assert_eq!(
            find(&lines, "name spine1").parents,
            vec!["device".to_string()]
        );
        assert_eq!(
            find(&lines, "asn 65015").parents,
            vec!["device".to_string(), "bgp".to_string()]
        );
        // The block-opening keys are content lines too.
        assert!(lines.iter().any(|l| l.original == "device"));
    }

    #[test]
    fn sequences_nest_under_key() {
        let text = "vlans:\n  - 10\n  - 20\n";
        let lines = embed(text);
        assert_eq!(find(&lines, "10").parents, vec!["vlans".to_string()]);
        assert_eq!(find(&lines, "20").parents, vec!["vlans".to_string()]);
    }

    #[test]
    fn sequence_of_mappings() {
        let text =
            "nfInfos:\n  - vrfName: data\n    vlanId: 251\n  - vrfName: mgmt\n    vlanId: 252\n";
        let lines = embed(text);
        assert_eq!(
            find(&lines, "vrfName data").parents,
            vec!["nfInfos".to_string()]
        );
        // `vlanId` is a sibling of `vrfName` inside the same item mapping.
        assert_eq!(
            find(&lines, "vlanId 251").parents,
            vec!["nfInfos".to_string()]
        );
        assert_eq!(
            find(&lines, "vlanId 252").parents,
            vec!["nfInfos".to_string()]
        );
    }

    #[test]
    fn comments_and_markers_skipped() {
        let text = "# header\n---\na: 1 # trailing\n...\n";
        let lines = embed(text);
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].original, "a 1");
        assert_eq!(lines[0].line_no, 3);
    }

    #[test]
    fn hash_inside_quotes_kept() {
        let lines = embed("a: \"x # y\"\n");
        assert_eq!(lines[0].original, "a x # y");
    }

    #[test]
    fn quoted_values_unquoted() {
        let lines = embed("name: \"spine-1\"\nrole: 'leaf'\n");
        assert_eq!(lines[0].original, "name spine-1");
        assert_eq!(lines[1].original, "role leaf");
    }

    #[test]
    fn plain_scalars_survive() {
        let lines = embed("list:\n  - just text with spaces\n");
        assert_eq!(
            find(&lines, "just text with spaces").parents,
            vec!["list".to_string()]
        );
    }

    #[test]
    fn dedent_pops_to_correct_level() {
        let text = "a:\n  b:\n    c: 1\nd: 2\n";
        let lines = embed(text);
        assert!(find(&lines, "d 2").parents.is_empty());
    }

    #[test]
    fn empty_document() {
        assert!(embed("").is_empty());
        assert!(embed("# only comments\n---\n").is_empty());
    }
}
