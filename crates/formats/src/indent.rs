//! Context embedding for indentation-structured text (Figure 3).
//!
//! A stack of `(indent, text)` pairs tracks the current block nesting: a
//! line deeper than the stack top becomes its child, while a line at equal
//! or shallower indentation pops back to its level first. This matches the
//! block structure of Arista/Cisco-style CLI configurations as well as any
//! other whitespace-nested format.

use crate::EmbeddedLine;

/// Number of columns a tab advances (classic terminal default).
const TAB_WIDTH: usize = 8;

/// Embeds indentation-structured `text`.
pub fn embed(text: &str) -> Vec<EmbeddedLine> {
    let mut out = Vec::new();
    // Stack of (indent_width, trimmed_text) for the current ancestors.
    let mut stack: Vec<(usize, String)> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let trimmed = raw.trim();
        if trimmed.is_empty() {
            continue;
        }
        let indent = indent_width(raw);
        while matches!(stack.last(), Some(&(parent_indent, _)) if parent_indent >= indent) {
            stack.pop();
        }
        out.push(EmbeddedLine {
            line_no: (i + 1) as u32,
            parents: stack.iter().map(|(_, t)| t.clone()).collect(),
            original: trimmed.to_string(),
        });
        stack.push((indent, trimmed.to_string()));
    }
    out
}

fn indent_width(line: &str) -> usize {
    let mut width = 0;
    for c in line.chars() {
        match c {
            ' ' => width += 1,
            '\t' => width = (width / TAB_WIDTH + 1) * TAB_WIDTH,
            _ => break,
        }
    }
    width
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parents_of<'a>(lines: &'a [EmbeddedLine], original: &str) -> &'a [String] {
        &lines
            .iter()
            .find(|l| l.original == original)
            .unwrap_or_else(|| panic!("line {original:?} missing"))
            .parents
    }

    #[test]
    fn figure_3_shape() {
        let config = "\
hostname DEV1
!
interface Loopback0
   ip address 10.14.14.34
!
interface Port-Channel110
   evpn ether-segment
      route-target import 00:00:0c:d3:00:6e
!
ip prefix-list loopback
   seq 10 permit 10.14.14.34/32
   seq 20 permit 0.0.0.0/0
!
router bgp 65015
   maximum-paths 64 ecmp 64
   vlan 251
      rd 10.14.14.117:10251
";
        let lines = embed(config);
        assert!(parents_of(&lines, "hostname DEV1").is_empty());
        assert!(parents_of(&lines, "!").is_empty());
        assert_eq!(
            parents_of(&lines, "ip address 10.14.14.34"),
            &["interface Loopback0".to_string()]
        );
        assert_eq!(
            parents_of(&lines, "route-target import 00:00:0c:d3:00:6e"),
            &[
                "interface Port-Channel110".to_string(),
                "evpn ether-segment".to_string(),
            ]
        );
        assert_eq!(
            parents_of(&lines, "rd 10.14.14.117:10251"),
            &["router bgp 65015".to_string(), "vlan 251".to_string()]
        );
        // The separator `!` resets nesting.
        assert!(parents_of(&lines, "ip prefix-list loopback").is_empty());
    }

    #[test]
    fn sibling_lines_share_parent() {
        let lines = embed("a\n  b\n  c\n");
        assert_eq!(parents_of(&lines, "b"), &["a".to_string()]);
        assert_eq!(parents_of(&lines, "c"), &["a".to_string()]);
    }

    #[test]
    fn dedent_pops_multiple_levels() {
        let lines = embed("a\n  b\n    c\nd\n");
        assert!(parents_of(&lines, "d").is_empty());
    }

    #[test]
    fn equal_indent_replaces_sibling() {
        let lines = embed("a\n  b\n    x\n  c\n    y\n");
        assert_eq!(parents_of(&lines, "y"), &["a".to_string(), "c".to_string()]);
    }

    #[test]
    fn tabs_count_as_indentation() {
        let lines = embed("a\n\tb\n");
        assert_eq!(parents_of(&lines, "b"), &["a".to_string()]);
    }

    #[test]
    fn line_numbers_are_one_based_and_skip_blanks() {
        let lines = embed("a\n\n  b\n");
        assert_eq!(lines[0].line_no, 1);
        assert_eq!(lines[1].line_no, 3);
    }

    #[test]
    fn empty_input() {
        assert!(embed("").is_empty());
        assert!(embed("\n\n  \n").is_empty());
    }

    #[test]
    fn embedded_text_matches_figure_3() {
        let lines = embed("router bgp 65015\n   vlan 251\n      rd 10.14.14.117:10251\n");
        assert_eq!(
            lines[2].embedded_text(),
            "/router bgp 65015/vlan 251/rd 10.14.14.117:10251"
        );
    }
}
