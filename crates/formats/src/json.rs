//! Context embedding for JSON documents.
//!
//! Unlike a general-purpose JSON library, this scanner preserves *line
//! numbers*: every scalar becomes an [`EmbeddedLine`] whose parents are the
//! object keys on the path to it (§3.1 — "including the 'object keys'
//! leading to the value") and whose line number points back into the source
//! text, so contract violations stay actionable.
//!
//! A scalar under key `k` is rendered as `k <value>`; array elements render
//! as the scalar alone with the array's key as the innermost parent.

use crate::EmbeddedLine;

/// Embeds a JSON document. Malformed input yields the lines scanned up to
/// the error (detection runs [`validate`] first, so this path is rare).
pub fn embed(text: &str) -> Vec<EmbeddedLine> {
    let mut scanner = Scanner::new(text);
    let mut out = Vec::new();
    let mut path: Vec<String> = Vec::new();
    let _ = scanner.value(&mut path, None, &mut out);
    out
}

/// Returns `true` if `text` is a single well-formed JSON document.
pub fn validate(text: &str) -> bool {
    let mut scanner = Scanner::new(text);
    let mut path = Vec::new();
    let mut sink = Vec::new();
    scanner.value(&mut path, None, &mut sink).is_ok() && scanner.skip_whitespace().is_none()
}

struct Scanner<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
}

/// Internal scan abort; carries no payload because `embed` keeps partial
/// output and `validate` only needs success/failure.
struct ScanError;

impl<'a> Scanner<'a> {
    fn new(text: &'a str) -> Self {
        Scanner {
            bytes: text.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    /// Skips whitespace; returns the next significant byte without
    /// consuming it.
    fn skip_whitespace(&mut self) -> Option<u8> {
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b => return Some(b),
            }
        }
        None
    }

    fn expect(&mut self, b: u8) -> Result<(), ScanError> {
        if self.skip_whitespace() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(ScanError)
        }
    }

    fn value(
        &mut self,
        path: &mut Vec<String>,
        key: Option<&str>,
        out: &mut Vec<EmbeddedLine>,
    ) -> Result<(), ScanError> {
        match self.skip_whitespace().ok_or(ScanError)? {
            b'{' => {
                self.pos += 1;
                if let Some(k) = key {
                    path.push(k.to_string());
                }
                self.object_body(path, out)?;
                if key.is_some() {
                    path.pop();
                }
                Ok(())
            }
            b'[' => {
                self.pos += 1;
                if let Some(k) = key {
                    path.push(k.to_string());
                }
                self.array_body(path, out)?;
                if key.is_some() {
                    path.pop();
                }
                Ok(())
            }
            _ => {
                let line_no = self.line;
                let scalar = self.scalar()?;
                let original = match key {
                    Some(k) => format!("{k} {scalar}"),
                    None => scalar,
                };
                out.push(EmbeddedLine {
                    line_no,
                    parents: path.clone(),
                    original,
                });
                Ok(())
            }
        }
    }

    fn object_body(
        &mut self,
        path: &mut Vec<String>,
        out: &mut Vec<EmbeddedLine>,
    ) -> Result<(), ScanError> {
        if self.skip_whitespace() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.expect(b':')?;
            self.value(path, Some(&key), out)?;
            match self.skip_whitespace().ok_or(ScanError)? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(ScanError),
            }
        }
    }

    fn array_body(
        &mut self,
        path: &mut Vec<String>,
        out: &mut Vec<EmbeddedLine>,
    ) -> Result<(), ScanError> {
        if self.skip_whitespace() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.value(path, None, out)?;
            match self.skip_whitespace().ok_or(ScanError)? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(ScanError),
            }
        }
    }

    /// Scans a scalar (string, number, `true`, `false`, or `null`) and
    /// returns its rendered text (strings are unquoted and unescaped).
    fn scalar(&mut self) -> Result<String, ScanError> {
        match self.bytes.get(self.pos).ok_or(ScanError)? {
            b'"' => self.string(),
            b't' => self.keyword("true"),
            b'f' => self.keyword("false"),
            b'n' => self.keyword("null"),
            b'-' | b'0'..=b'9' => self.number(),
            _ => Err(ScanError),
        }
    }

    fn keyword(&mut self, word: &str) -> Result<String, ScanError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(word.to_string())
        } else {
            Err(ScanError)
        }
    }

    fn number(&mut self) -> Result<String, ScanError> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.bytes.get(self.pos), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(ScanError);
        }
        if self.bytes.get(self.pos) == Some(&b'.') {
            self.pos += 1;
            while matches!(self.bytes.get(self.pos), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.bytes.get(self.pos), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        Ok(std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| ScanError)?
            .to_string())
    }

    fn string(&mut self) -> Result<String, ScanError> {
        if self.bytes.get(self.pos) != Some(&b'"') {
            return Err(ScanError);
        }
        self.pos += 1;
        let mut value = String::new();
        loop {
            match self.bytes.get(self.pos).ok_or(ScanError)? {
                b'"' => {
                    self.pos += 1;
                    return Ok(value);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.bytes.get(self.pos).ok_or(ScanError)? {
                        b'"' => value.push('"'),
                        b'\\' => value.push('\\'),
                        b'/' => value.push('/'),
                        b'n' => value.push('\n'),
                        b't' => value.push('\t'),
                        b'r' => value.push('\r'),
                        b'b' => value.push('\u{8}'),
                        b'f' => value.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or(ScanError)?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| ScanError)?,
                                16,
                            )
                            .map_err(|_| ScanError)?;
                            value.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(ScanError),
                    }
                    self.pos += 1;
                }
                b'\n' => return Err(ScanError),
                _ => {
                    // Consume one UTF-8 character.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|_| ScanError)?;
                    let c = rest.chars().next().ok_or(ScanError)?;
                    value.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_get_key_paths() {
        let text = r#"{
  "interfaces": {
    "eth0": { "mtu": 9214, "addr": "10.0.0.1" }
  }
}"#;
        let lines = embed(text);
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].original, "mtu 9214");
        assert_eq!(
            lines[0].parents,
            vec!["interfaces".to_string(), "eth0".to_string()]
        );
        assert_eq!(lines[0].line_no, 3);
        assert_eq!(lines[1].original, "addr 10.0.0.1");
    }

    #[test]
    fn array_elements_use_array_key_as_parent() {
        let text = r#"{ "vlans": [10, 20, 30] }"#;
        let lines = embed(text);
        assert_eq!(lines.len(), 3);
        for (line, val) in lines.iter().zip(["10", "20", "30"]) {
            assert_eq!(line.original, val);
            assert_eq!(line.parents, vec!["vlans".to_string()]);
        }
    }

    #[test]
    fn nested_arrays_of_objects() {
        let text = r#"{ "nfInfos": [ { "vrfName": "a", "vlanId": 251 } ] }"#;
        let lines = embed(text);
        assert_eq!(lines[0].original, "vrfName a");
        assert_eq!(lines[0].parents, vec!["nfInfos".to_string()]);
        assert_eq!(lines[1].original, "vlanId 251");
    }

    #[test]
    fn multiline_line_numbers() {
        let text = "{\n  \"a\": 1,\n  \"b\": {\n    \"c\": 2\n  }\n}";
        let lines = embed(text);
        assert_eq!(lines[0].line_no, 2);
        assert_eq!(lines[1].line_no, 4);
    }

    #[test]
    fn string_escapes() {
        let text = r#"{ "k": "a\"b\\c\nd" }"#;
        let lines = embed(text);
        assert_eq!(lines[0].original, "k a\"b\\c\nd");
    }

    #[test]
    fn unicode_escape() {
        let lines = embed(r#"{ "k": "A" }"#);
        assert_eq!(lines[0].original, "k A");
    }

    #[test]
    fn booleans_null_and_numbers() {
        let lines = embed(r#"{ "a": true, "b": null, "c": -1.5e3 }"#);
        assert_eq!(lines[0].original, "a true");
        assert_eq!(lines[1].original, "b null");
        assert_eq!(lines[2].original, "c -1.5e3");
    }

    #[test]
    fn top_level_scalar_and_array() {
        assert_eq!(embed("42")[0].original, "42");
        let lines = embed("[1, 2]");
        assert_eq!(lines.len(), 2);
        assert!(lines[0].parents.is_empty());
    }

    #[test]
    fn validate_accepts_and_rejects() {
        assert!(validate(r#"{"a": [1, {"b": true}]}"#));
        assert!(validate("[]"));
        assert!(validate("{}"));
        assert!(!validate("{"));
        assert!(!validate("{\"a\" 1}"));
        assert!(!validate("{} trailing"));
        assert!(!validate("{'single': 1}"));
        assert!(!validate(""));
    }

    #[test]
    fn empty_containers_produce_no_lines() {
        assert!(embed("{}").is_empty());
        assert!(embed(r#"{"a": {}, "b": []}"#).is_empty());
    }
}
