#![warn(missing_docs)]

//! Data-format inference and context embedding (§3.1 of the paper).
//!
//! Treating each configuration line as an isolated unit of text loses the
//! hierarchy that most configuration dialects express — indentation blocks
//! in vendor CLIs, object nesting in JSON, mappings in YAML. Concord first
//! infers a *format category* for each file and then runs a context
//! embedding pass that prefixes every line with the chain of its parents,
//! e.g. (Figure 3):
//!
//! ```text
//! interface Loopback0
//!     ip address 10.14.14.34
//! ```
//!
//! becomes
//!
//! ```text
//! /interface Loopback0
//! /interface Loopback0/ip address 10.14.14.34
//! ```
//!
//! The embedded text is treated downstream as uninterpreted input to the
//! lexer; the separator is arbitrary (this implementation uses `/`, like
//! the paper). Crucially, every [`EmbeddedLine`] remembers its original
//! 1-based line number so contract violations can be localized.
//!
//! # Examples
//!
//! ```
//! use concord_formats::{embed_auto, FormatCategory};
//!
//! let config = "interface Loopback0\n    ip address 10.0.0.1\n";
//! let (format, lines) = embed_auto(config);
//! assert_eq!(format, FormatCategory::Indent);
//! assert_eq!(lines[1].parents, vec!["interface Loopback0".to_string()]);
//! assert_eq!(lines[1].original, "ip address 10.0.0.1");
//! assert_eq!(lines[1].line_no, 2);
//! ```

mod detect;
mod indent;
mod json;
mod yaml;

pub use detect::detect_format;

/// The inferred data-format category of a configuration file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FormatCategory {
    /// JSON object/array data.
    Json,
    /// YAML mappings and sequences (a pragmatic subset).
    Yaml,
    /// Indentation-structured text (most vendor CLI configs).
    Indent,
    /// Flat text with no hierarchical structure.
    Flat,
}

impl std::fmt::Display for FormatCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            FormatCategory::Json => "json",
            FormatCategory::Yaml => "yaml",
            FormatCategory::Indent => "indent",
            FormatCategory::Flat => "flat",
        };
        f.write_str(name)
    }
}

/// One configuration line with its embedded hierarchical context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmbeddedLine {
    /// 1-based line number in the source file.
    pub line_no: u32,
    /// The chain of enclosing parents, outermost first. Parents are the
    /// trimmed source text of the enclosing lines (or object keys for
    /// JSON).
    pub parents: Vec<String>,
    /// The trimmed original line text (or `key value` form for JSON).
    pub original: String,
}

impl EmbeddedLine {
    /// Renders the full embedded form, e.g.
    /// `/interface Loopback0/ip address 10.0.0.1`.
    pub fn embedded_text(&self) -> String {
        let mut out = String::new();
        for parent in &self.parents {
            out.push('/');
            out.push_str(parent);
        }
        out.push('/');
        out.push_str(&self.original);
        out
    }
}

/// Embeds `text` according to an already-detected `format`.
///
/// Returns one [`EmbeddedLine`] per content-bearing source line;
/// whitespace-only lines (and, for JSON, pure punctuation lines) are
/// skipped. With embedding conceptually disabled (`FormatCategory::Flat`),
/// each line is returned with an empty parent chain — this is the
/// "Baseline" configuration of Figure 7.
pub fn embed(text: &str, format: FormatCategory) -> Vec<EmbeddedLine> {
    match format {
        FormatCategory::Json => json::embed(text),
        FormatCategory::Yaml => yaml::embed(text),
        FormatCategory::Indent => indent::embed(text),
        FormatCategory::Flat => flat_embed(text),
    }
}

/// Detects the format of `text` and embeds it.
pub fn embed_auto(text: &str) -> (FormatCategory, Vec<EmbeddedLine>) {
    let format = detect_format(text);
    let lines = embed(text, format);
    (format, lines)
}

/// Embeds with no hierarchy: every line gets an empty parent chain.
fn flat_embed(text: &str) -> Vec<EmbeddedLine> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        out.push(EmbeddedLine {
            line_no: (i + 1) as u32,
            parents: Vec::new(),
            original: trimmed.to_string(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_embedding_keeps_lines_and_numbers() {
        let lines = embed("a b c\n\n  d e\n", FormatCategory::Flat);
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].line_no, 1);
        assert_eq!(lines[0].original, "a b c");
        assert_eq!(lines[1].line_no, 3);
        assert_eq!(lines[1].original, "d e");
        assert!(lines[1].parents.is_empty());
    }

    #[test]
    fn embedded_text_uses_slash_separator() {
        let line = EmbeddedLine {
            line_no: 4,
            parents: vec!["router bgp 65015".to_string(), "vlan 251".to_string()],
            original: "rd 10.14.14.117:10251".to_string(),
        };
        assert_eq!(
            line.embedded_text(),
            "/router bgp 65015/vlan 251/rd 10.14.14.117:10251"
        );
    }

    #[test]
    fn embed_auto_routes_by_format() {
        let (format, lines) = embed_auto("{\"a\": {\"b\": 1}}");
        assert_eq!(format, FormatCategory::Json);
        assert!(!lines.is_empty());
        let (format, _) = embed_auto("x 1\ny 2\nz 3\n");
        assert_eq!(format, FormatCategory::Flat);
    }

    #[test]
    fn display_names() {
        assert_eq!(FormatCategory::Json.to_string(), "json");
        assert_eq!(FormatCategory::Indent.to_string(), "indent");
    }
}
