//! Format-category inference.
//!
//! Despite thousands of configuration dialects, the number of ways to
//! structure hierarchical information is small (§3.1). Detection is
//! heuristic but deliberately conservative: when in doubt it falls back to
//! `Indent` (if any indentation exists) or `Flat`, both of which degrade
//! gracefully.

use crate::FormatCategory;

/// Infers the format category of a configuration file.
///
/// # Examples
///
/// ```
/// use concord_formats::{detect_format, FormatCategory};
///
/// assert_eq!(detect_format("{\"a\": 1}"), FormatCategory::Json);
/// assert_eq!(detect_format("key: value\nother: 2\n"), FormatCategory::Yaml);
/// assert_eq!(
///     detect_format("interface Et1\n   mtu 9214\n"),
///     FormatCategory::Indent
/// );
/// assert_eq!(detect_format("a 1\nb 2\n"), FormatCategory::Flat);
/// ```
pub fn detect_format(text: &str) -> FormatCategory {
    if looks_like_json(text) {
        return FormatCategory::Json;
    }
    if looks_like_yaml(text) {
        return FormatCategory::Yaml;
    }
    if has_indentation(text) {
        return FormatCategory::Indent;
    }
    FormatCategory::Flat
}

fn looks_like_json(text: &str) -> bool {
    let trimmed = text.trim_start();
    if !(trimmed.starts_with('{') || trimmed.starts_with('[')) {
        return false;
    }
    // Validate the overall shape with the embedding scanner itself: if it
    // consumes the document without error, treat the file as JSON.
    crate::json::validate(text)
}

fn looks_like_yaml(text: &str) -> bool {
    let mut content_lines = 0usize;
    let mut yaml_lines = 0usize;
    for line in text.lines().take(400) {
        let trimmed = line.trim_start();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if trimmed == "---" {
            return true;
        }
        content_lines += 1;
        if is_yaml_mapping_line(trimmed) || trimmed.starts_with("- ") || trimmed == "-" {
            yaml_lines += 1;
        }
    }
    content_lines > 0 && yaml_lines * 10 >= content_lines * 9
}

/// Returns `true` for `key:` / `key: value` lines with a bare scalar key.
fn is_yaml_mapping_line(trimmed: &str) -> bool {
    let Some(colon) = trimmed.find(':') else {
        return false;
    };
    let key = &trimmed[..colon];
    if key.is_empty() || key.len() > 64 {
        return false;
    }
    // The colon must terminate the key: either end of line or a space
    // after it (this rejects `rd 10.14.14.117:10251`).
    let after = &trimmed[colon + 1..];
    let key_ok = key
        .chars()
        .all(|c| c.is_alphanumeric() || matches!(c, '_' | '-' | '.'));
    key_ok && (after.is_empty() || after.starts_with(' '))
}

fn has_indentation(text: &str) -> bool {
    text.lines()
        .any(|line| !line.trim().is_empty() && line.starts_with([' ', '\t']))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_json_object_and_array() {
        assert_eq!(detect_format("{ \"k\": [1, 2] }"), FormatCategory::Json);
        assert_eq!(detect_format("[1, 2, 3]"), FormatCategory::Json);
        assert_eq!(
            detect_format("  {\n \"a\": null\n}\n"),
            FormatCategory::Json
        );
    }

    #[test]
    fn malformed_json_falls_through() {
        // Opens like JSON but does not scan; falls back to indent/flat.
        assert_ne!(detect_format("{ not json at all"), FormatCategory::Json);
    }

    #[test]
    fn detects_yaml_mappings() {
        let text = "name: spine1\nrole: spine\nvlans:\n  - 10\n  - 20\n";
        assert_eq!(detect_format(text), FormatCategory::Yaml);
    }

    #[test]
    fn detects_yaml_document_marker() {
        assert_eq!(detect_format("---\nanything goes\n"), FormatCategory::Yaml);
    }

    #[test]
    fn cli_config_is_not_yaml() {
        // Route distinguishers contain colons but are not YAML keys.
        let text = "router bgp 65015\n   vlan 251\n      rd 10.14.14.117:10251\n";
        assert_eq!(detect_format(text), FormatCategory::Indent);
    }

    #[test]
    fn detects_indentation() {
        let text = "interface Et1\n   description uplink\n!\n";
        assert_eq!(detect_format(text), FormatCategory::Indent);
    }

    #[test]
    fn flat_text() {
        assert_eq!(detect_format("a 1\nb 2\nc 3\n"), FormatCategory::Flat);
        assert_eq!(detect_format(""), FormatCategory::Flat);
    }

    #[test]
    fn mostly_yaml_with_comments() {
        let text = "# generated\nhost: dev1\nasn: 65015\n";
        assert_eq!(detect_format(text), FormatCategory::Yaml);
    }
}
