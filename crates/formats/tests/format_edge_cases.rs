//! Edge-case tests for format detection and embedding beyond the unit
//! suites: real-world-shaped oddities.

use concord_formats::{detect_format, embed, embed_auto, FormatCategory};

#[test]
fn crlf_line_endings_are_tolerated() {
    let text = "interface Et1\r\n   mtu 9214\r\n";
    let (format, lines) = embed_auto(text);
    assert_eq!(format, FormatCategory::Indent);
    assert_eq!(lines.len(), 2);
    assert_eq!(lines[1].original, "mtu 9214");
    assert_eq!(lines[1].parents, vec!["interface Et1".to_string()]);
}

#[test]
fn deeply_nested_indentation() {
    let mut text = String::new();
    for depth in 0..32 {
        text.push_str(&" ".repeat(depth));
        text.push_str(&format!("level{depth}\n"));
    }
    let lines = embed(&text, FormatCategory::Indent);
    assert_eq!(lines.len(), 32);
    assert_eq!(lines[31].parents.len(), 31);
    assert_eq!(lines[31].parents[0], "level0");
    assert_eq!(lines[31].parents[30], "level30");
}

#[test]
fn indentation_jump_back_to_middle_level() {
    let text = "a\n    b\n        c\n  d\n";
    let lines = embed(text, FormatCategory::Indent);
    // `d` at indent 2 pops `c` (8) and `b` (4) but keeps `a` (0).
    assert_eq!(lines[3].parents, vec!["a".to_string()]);
}

#[test]
fn json_with_deeply_nested_objects() {
    let mut doc = String::new();
    for i in 0..20 {
        doc.push_str(&format!("{{\"k{i}\": "));
    }
    doc.push('1');
    doc.push_str(&"}".repeat(20));
    assert_eq!(detect_format(&doc), FormatCategory::Json);
    let lines = embed(&doc, FormatCategory::Json);
    assert_eq!(lines.len(), 1);
    assert_eq!(lines[0].parents.len(), 19);
    assert_eq!(lines[0].original, "k19 1");
}

#[test]
fn json_array_of_arrays() {
    let lines = embed("[[1, 2], [3]]", FormatCategory::Json);
    assert_eq!(lines.len(), 3);
    for line in &lines {
        assert!(line.parents.is_empty());
    }
}

#[test]
fn yaml_with_windows_comments_and_blank_lines() {
    let text = "# generated\r\n\r\nhost: dev1\r\n\r\nasn: 65015 # site asn\r\n";
    let (format, lines) = embed_auto(text);
    assert_eq!(format, FormatCategory::Yaml);
    assert_eq!(lines.len(), 2);
    assert_eq!(lines[0].original, "host dev1");
    assert_eq!(lines[1].original, "asn 65015");
}

#[test]
fn yaml_nested_sequences_of_sequences() {
    let text = "matrix:\n  - - 1\n    - 2\n  - - 3\n";
    let lines = embed(text, FormatCategory::Yaml);
    // Every scalar survives with `matrix` as an ancestor.
    let scalars: Vec<&str> = lines
        .iter()
        .filter(|l| l.original.chars().all(|c| c.is_ascii_digit()))
        .map(|l| l.original.as_str())
        .collect();
    assert_eq!(scalars, vec!["1", "2", "3"]);
    for line in &lines {
        if line.original.chars().all(|c| c.is_ascii_digit()) {
            assert!(line.parents.contains(&"matrix".to_string()));
        }
    }
}

#[test]
fn detection_prefers_json_over_yaml_for_json_docs() {
    // `{"a": 1}` has a `key: value` shape YAML detection could claim.
    assert_eq!(detect_format("{\"a\": 1}\n"), FormatCategory::Json);
}

#[test]
fn single_line_file() {
    let (format, lines) = embed_auto("hostname X");
    assert_eq!(format, FormatCategory::Flat);
    assert_eq!(lines.len(), 1);
    assert_eq!(lines[0].line_no, 1);
}

#[test]
fn huge_flat_file_is_linear() {
    let text: String = (0..50_000).map(|i| format!("line {i}\n")).collect();
    let start = std::time::Instant::now();
    let lines = embed(&text, FormatCategory::Flat);
    assert_eq!(lines.len(), 50_000);
    assert!(
        start.elapsed() < std::time::Duration::from_secs(2),
        "embedding took {:?}",
        start.elapsed()
    );
}

#[test]
fn bom_and_unicode_content() {
    let text = "\u{feff}hostname DEV1\n   descripción enlace\n";
    let lines = embed(text, FormatCategory::Indent);
    assert_eq!(lines.len(), 2);
    assert_eq!(lines[1].original, "descripción enlace");
}
