//! Property-based tests for format detection and context embedding.

// NOTE: the hermetic build has no `proptest`; enable the `proptests`
// feature after vendoring it to run this suite.
#![cfg(feature = "proptests")]

use concord_formats::{detect_format, embed, embed_auto, FormatCategory};
use proptest::prelude::*;

/// Arbitrary indentation-structured text.
fn arb_indent_text() -> impl Strategy<Value = String> {
    proptest::collection::vec((0usize..4, "[a-z]{1,8}( [a-z0-9.]{1,10}){0,3}"), 1..30).prop_map(
        |lines| {
            let mut out = String::new();
            for (depth, content) in lines {
                out.push_str(&"   ".repeat(depth));
                out.push_str(&content);
                out.push('\n');
            }
            out
        },
    )
}

proptest! {
    /// Embedding emits exactly the non-blank lines, in order, with
    /// strictly increasing line numbers.
    #[test]
    fn embedding_preserves_lines(text in arb_indent_text()) {
        let (_, lines) = embed_auto(&text);
        let expected: Vec<&str> = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .collect();
        let got: Vec<&str> = lines.iter().map(|l| l.original.as_str()).collect();
        prop_assert_eq!(got, expected);
        for w in lines.windows(2) {
            prop_assert!(w[0].line_no < w[1].line_no);
        }
    }

    /// A line's parents are a prefix chain: each parent appeared earlier
    /// in the file as some line's original text.
    #[test]
    fn parents_come_from_earlier_lines(text in arb_indent_text()) {
        let lines = embed(&text, FormatCategory::Indent);
        for (i, line) in lines.iter().enumerate() {
            for parent in &line.parents {
                prop_assert!(
                    lines[..i].iter().any(|e| &e.original == parent),
                    "parent {parent:?} of line {} not seen earlier",
                    line.line_no
                );
            }
        }
    }

    /// Flat embedding never invents hierarchy.
    #[test]
    fn flat_embedding_has_no_parents(text in arb_indent_text()) {
        for line in embed(&text, FormatCategory::Flat) {
            prop_assert!(line.parents.is_empty());
        }
    }

    /// The embedded text renders with one `/` per component.
    #[test]
    fn embedded_text_well_formed(text in arb_indent_text()) {
        for line in embed(&text, FormatCategory::Indent) {
            let rendered = line.embedded_text();
            prop_assert!(rendered.starts_with('/'));
            prop_assert!(rendered.ends_with(&line.original));
        }
    }

    /// Detection never panics and embedding is total for arbitrary text.
    #[test]
    fn detection_and_embedding_total(text in "\\PC{0,400}") {
        let format = detect_format(&text);
        let lines = embed(&text, format);
        // Every produced line number indexes a real source line.
        let source: Vec<&str> = text.lines().collect();
        for line in &lines {
            prop_assert!((line.line_no as usize) <= source.len());
        }
    }

    /// JSON detection implies the scanner accepts the document, and
    /// embedding then produces only scalar-bearing lines.
    #[test]
    fn json_detection_consistent(keys in proptest::collection::vec("[a-z]{1,6}", 1..6), values in proptest::collection::vec(0u32..1000, 1..6)) {
        let pairs: Vec<String> = keys
            .iter()
            .zip(&values)
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect();
        let doc = format!("{{ {} }}", pairs.join(", "));
        prop_assert_eq!(detect_format(&doc), FormatCategory::Json);
        let lines = embed(&doc, FormatCategory::Json);
        // One line per unique key (duplicate JSON keys still emit one
        // line each during scanning).
        prop_assert_eq!(lines.len(), pairs.len());
    }

    /// YAML mapping documents embed every key.
    #[test]
    fn yaml_mappings_embed_all_keys(pairs in proptest::collection::vec(("[a-z]{1,6}", 1u32..1000), 1..8)) {
        let doc: String = pairs
            .iter()
            .map(|(k, v)| format!("{k}: {v}\n"))
            .collect();
        let lines = embed(&doc, FormatCategory::Yaml);
        prop_assert_eq!(lines.len(), pairs.len());
        for ((k, v), line) in pairs.iter().zip(&lines) {
            let expected = format!("{k} {v}");
            prop_assert_eq!(&line.original, &expected);
        }
    }
}
