//! Iterative Tarjan strongly-connected-components algorithm.
//!
//! The recursion is converted to an explicit stack so million-node relation
//! graphs cannot overflow the call stack.

/// Computes SCCs of the adjacency list `adj`.
///
/// Components are emitted in reverse topological order of the condensation
/// (a property of Tarjan's algorithm: a component is completed only after
/// every component it can reach).
pub fn tarjan(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    const UNVISITED: usize = usize::MAX;

    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut components = Vec::new();

    // Explicit DFS frames: (node, next child position).
    let mut frames: Vec<(usize, usize)> = Vec::new();

    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        frames.push((root, 0));
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(&mut (u, ref mut child_pos)) = frames.last_mut() {
            if *child_pos < adj[u].len() {
                let v = adj[u][*child_pos];
                *child_pos += 1;
                if index[v] == UNVISITED {
                    index[v] = next_index;
                    lowlink[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                    frames.push((v, 0));
                } else if on_stack[v] {
                    lowlink[u] = lowlink[u].min(index[v]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[u]);
                }
                if lowlink[u] == index[u] {
                    let mut component = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack invariant");
                        on_stack[w] = false;
                        component.push(w);
                        if w == u {
                            break;
                        }
                    }
                    components.push(component);
                }
            }
        }
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty() {
        assert!(tarjan(&[]).is_empty());
    }

    #[test]
    fn isolated_nodes() {
        let comps = tarjan(&[vec![], vec![], vec![]]);
        assert_eq!(comps.len(), 3);
    }

    #[test]
    fn one_big_cycle() {
        let adj = vec![vec![1], vec![2], vec![3], vec![0]];
        let comps = tarjan(&adj);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), 4);
    }

    #[test]
    fn self_loop_is_singleton() {
        let adj = vec![vec![0], vec![]];
        let comps = tarjan(&adj);
        assert_eq!(comps.len(), 2);
    }

    #[test]
    fn classic_example() {
        // Wikipedia's 8-node Tarjan example.
        let adj = vec![
            vec![1],       // 0 -> 1
            vec![2],       // 1 -> 2
            vec![0],       // 2 -> 0
            vec![1, 2, 4], // 3 -> 1,2,4
            vec![3, 5],    // 4 -> 3,5
            vec![2, 6],    // 5 -> 2,6
            vec![5],       // 6 -> 5
            vec![4, 6, 7], // 7 -> 4,6,7
        ];
        let mut sizes: Vec<usize> = tarjan(&adj).iter().map(Vec::len).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 2, 2, 3]);
    }

    #[test]
    fn deep_chain_no_stack_overflow() {
        // 200k-node path: would overflow the call stack if recursive.
        let n = 200_000;
        let adj: Vec<Vec<usize>> = (0..n)
            .map(|u| if u + 1 < n { vec![u + 1] } else { vec![] })
            .collect();
        assert_eq!(tarjan(&adj).len(), n);
    }
}
