//! A fixed-capacity bit set used by reachability computations.

/// A set of `usize` values in `0..capacity`, stored as packed 64-bit words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty set with room for values in `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Returns the capacity the set was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `value`; returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `value >= capacity`.
    pub fn insert(&mut self, value: usize) -> bool {
        assert!(value < self.capacity, "bitset value out of range");
        let (word, bit) = (value / 64, value % 64);
        let mask = 1u64 << bit;
        let fresh = self.words[word] & mask == 0;
        self.words[word] |= mask;
        fresh
    }

    /// Returns `true` if `value` is in the set.
    pub fn contains(&self, value: usize) -> bool {
        if value >= self.capacity {
            return false;
        }
        self.words[value / 64] & (1u64 << (value % 64)) != 0
    }

    /// Unions `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// Returns the number of elements in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over the elements in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            (0..64).filter_map(move |bit| {
                if word & (1u64 << bit) != 0 {
                    Some(wi * 64 + bit)
                } else {
                    None
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64));
        assert!(s.contains(0));
        assert!(s.contains(64));
        assert!(s.contains(129));
        assert!(!s.contains(1));
        assert!(!s.contains(1000));
        assert_eq!(s.len(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        BitSet::new(4).insert(4);
    }

    #[test]
    fn union() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.insert(3);
        b.insert(70);
        a.union_with(&b);
        assert!(a.contains(3));
        assert!(a.contains(70));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn iter_ordered() {
        let mut s = BitSet::new(200);
        for v in [150, 3, 64, 63] {
            s.insert(v);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 63, 64, 150]);
    }

    #[test]
    fn empty() {
        let s = BitSet::new(10);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.iter().count(), 0);
        let zero = BitSet::new(0);
        assert!(zero.is_empty());
    }
}
