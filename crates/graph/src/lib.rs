#![warn(missing_docs)]

//! Directed-graph algorithms for Concord's contract minimization (§3.6).
//!
//! Contract minimization reduces a quadratic blow-up of transitive
//! relational contracts (equality, `startswith`, `endswith`) to a compact
//! equivalent set: nodes are `(pattern, parameter, transformation)` triples,
//! edges are learned contracts, and the minimizer
//!
//! 1. finds strongly connected components ([`DiGraph::scc`]),
//! 2. replaces each SCC's internal edges with a simple cycle,
//! 3. collapses SCCs into a DAG ([`DiGraph::condensation`]), and
//! 4. removes implied DAG edges ([`DiGraph::transitive_reduction`],
//!    Aho–Garey–Ullman).
//!
//! Reachability — and therefore bug-finding power — is preserved exactly.
//!
//! # Examples
//!
//! ```
//! use concord_graph::DiGraph;
//!
//! // A triangle a -> b -> c plus the implied a -> c.
//! let mut g = DiGraph::new(3);
//! g.add_edge(0, 1);
//! g.add_edge(1, 2);
//! g.add_edge(0, 2);
//! let reduced = g.transitive_reduction();
//! assert_eq!(reduced.num_edges(), 2);
//! assert!(!reduced.has_edge(0, 2));
//! ```

mod bitset;
mod scc;

pub use bitset::BitSet;

/// A simple directed graph over dense node indices `0..n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiGraph {
    adj: Vec<Vec<usize>>,
    num_edges: usize,
}

impl DiGraph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        DiGraph {
            adj: vec![Vec::new(); n],
            num_edges: 0,
        }
    }

    /// Returns the number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Returns the number of edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Adds the edge `u -> v`. Duplicate edges and self-loops are ignored
    /// (neither affects reachability).
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(
            u < self.adj.len() && v < self.adj.len(),
            "node out of range"
        );
        if u == v || self.adj[u].contains(&v) {
            return;
        }
        self.adj[u].push(v);
        self.num_edges += 1;
    }

    /// Returns `true` if the edge `u -> v` exists.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj.get(u).is_some_and(|succ| succ.contains(&v))
    }

    /// Returns the successors of `u`.
    pub fn successors(&self, u: usize) -> &[usize] {
        &self.adj[u]
    }

    /// Iterates over all edges as `(u, v)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.adj
            .iter()
            .enumerate()
            .flat_map(|(u, succ)| succ.iter().map(move |&v| (u, v)))
    }

    /// Computes strongly connected components (iterative Tarjan).
    ///
    /// Components are returned in reverse topological order of the
    /// condensation (every edge between components points from a
    /// later-listed component to an earlier one).
    pub fn scc(&self) -> Vec<Vec<usize>> {
        scc::tarjan(&self.adj)
    }

    /// Collapses SCCs into single nodes.
    ///
    /// Returns the condensation (a DAG) and the mapping from original node
    /// to component index. Component indices follow the order returned by
    /// [`DiGraph::scc`].
    pub fn condensation(&self) -> (DiGraph, Vec<usize>) {
        let comps = self.scc();
        let mut comp_of = vec![0usize; self.num_nodes()];
        for (ci, comp) in comps.iter().enumerate() {
            for &node in comp {
                comp_of[node] = ci;
            }
        }
        let mut dag = DiGraph::new(comps.len());
        for (u, v) in self.edges() {
            let (cu, cv) = (comp_of[u], comp_of[v]);
            if cu != cv {
                dag.add_edge(cu, cv);
            }
        }
        (dag, comp_of)
    }

    /// Computes the set of nodes reachable from `start` (excluding `start`
    /// itself unless it lies on a cycle).
    pub fn reachable_from(&self, start: usize) -> BitSet {
        let mut seen = BitSet::new(self.num_nodes());
        let mut stack = vec![start];
        let mut visited = BitSet::new(self.num_nodes());
        visited.insert(start);
        while let Some(u) = stack.pop() {
            for &v in &self.adj[u] {
                seen.insert(v);
                if !visited.contains(v) {
                    visited.insert(v);
                    stack.push(v);
                }
            }
        }
        seen
    }

    /// Computes the transitive reduction of a DAG.
    ///
    /// The result has the same nodes and the minimum number of edges with
    /// the same reachability relation (unique for DAGs). An edge `u -> v`
    /// is removed exactly when some other successor of `u` reaches `v`.
    ///
    /// # Panics
    ///
    /// Panics if the graph contains a cycle (call
    /// [`DiGraph::condensation`] first).
    pub fn transitive_reduction(&self) -> DiGraph {
        let order = self.topological_order().expect("graph must be a DAG");
        let n = self.num_nodes();
        // `reach[u]` = nodes reachable from u (including u), built in
        // reverse topological order so successors are done first.
        let mut reach: Vec<BitSet> = vec![BitSet::new(n); n];
        let mut reduced = DiGraph::new(n);
        for &u in order.iter().rev() {
            // Visit direct successors in topological order: a successor
            // appearing earlier can never be implied by one appearing
            // later, so keep-decisions are order-independent for DAGs; we
            // simply test each candidate against all *other* successors.
            let succs = &self.adj[u];
            for &v in succs {
                let implied = succs.iter().any(|&w| w != v && reach[w].contains(v));
                if !implied {
                    reduced.add_edge(u, v);
                }
            }
            let mut r = BitSet::new(n);
            r.insert(u);
            for &v in succs {
                r.insert(v);
                r.union_with(&reach[v]);
            }
            reach[u] = r;
        }
        reduced
    }

    /// Returns a topological order, or `None` when the graph has a cycle.
    pub fn topological_order(&self) -> Option<Vec<usize>> {
        let n = self.num_nodes();
        let mut indegree = vec![0usize; n];
        for (_, v) in self.edges() {
            indegree[v] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&u| indegree[u] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(u) = queue.pop() {
            order.push(u);
            for &v in &self.adj[u] {
                indegree[v] -= 1;
                if indegree[v] == 0 {
                    queue.push(v);
                }
            }
        }
        (order.len() == n).then_some(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(n: usize, edges: &[(usize, usize)]) -> DiGraph {
        let mut g = DiGraph::new(n);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    #[test]
    fn add_edge_deduplicates() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        g.add_edge(0, 0);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn scc_of_cycle() {
        let g = graph(3, &[(0, 1), (1, 2), (2, 0)]);
        let comps = g.scc();
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), 3);
    }

    #[test]
    fn scc_of_dag_is_singletons() {
        let g = graph(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(g.scc().len(), 4);
    }

    #[test]
    fn scc_mixed() {
        // Two 2-cycles joined by a bridge.
        let g = graph(4, &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)]);
        let comps = g.scc();
        assert_eq!(comps.len(), 2);
        let sizes: Vec<usize> = comps.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![2, 2]);
    }

    #[test]
    fn scc_reverse_topological_order() {
        let g = graph(3, &[(0, 1), (1, 2)]);
        let comps = g.scc();
        let pos = |node: usize| comps.iter().position(|c| c.contains(&node)).unwrap();
        // Edges go from later-listed components to earlier ones.
        assert!(pos(0) > pos(1));
        assert!(pos(1) > pos(2));
    }

    #[test]
    fn condensation_collapses() {
        let g = graph(5, &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 4), (4, 2)]);
        let (dag, comp_of) = g.condensation();
        assert_eq!(dag.num_nodes(), 2);
        assert_eq!(dag.num_edges(), 1);
        assert_eq!(comp_of[0], comp_of[1]);
        assert_eq!(comp_of[2], comp_of[3]);
        assert_ne!(comp_of[0], comp_of[2]);
    }

    #[test]
    fn transitive_reduction_chain() {
        // Complete order over 4 nodes reduces to a path.
        let mut g = DiGraph::new(4);
        for u in 0..4 {
            for v in (u + 1)..4 {
                g.add_edge(u, v);
            }
        }
        let r = g.transitive_reduction();
        assert_eq!(r.num_edges(), 3);
        assert!(r.has_edge(0, 1) && r.has_edge(1, 2) && r.has_edge(2, 3));
    }

    #[test]
    fn transitive_reduction_diamond() {
        // 0 -> {1, 2} -> 3, plus the implied 0 -> 3.
        let g = graph(4, &[(0, 1), (0, 2), (1, 3), (2, 3), (0, 3)]);
        let r = g.transitive_reduction();
        assert_eq!(r.num_edges(), 4);
        assert!(!r.has_edge(0, 3));
    }

    #[test]
    fn transitive_reduction_keeps_unimplied_edges() {
        let g = graph(3, &[(0, 1), (0, 2)]);
        let r = g.transitive_reduction();
        assert_eq!(r.num_edges(), 2);
    }

    #[test]
    #[should_panic(expected = "DAG")]
    fn transitive_reduction_rejects_cycles() {
        let g = graph(2, &[(0, 1), (1, 0)]);
        let _ = g.transitive_reduction();
    }

    #[test]
    fn topological_order_detects_cycle() {
        assert!(graph(2, &[(0, 1), (1, 0)]).topological_order().is_none());
        let order = graph(3, &[(0, 1), (1, 2)]).topological_order().unwrap();
        let pos = |x: usize| order.iter().position(|&u| u == x).unwrap();
        assert!(pos(0) < pos(1));
        assert!(pos(1) < pos(2));
    }

    #[test]
    fn reachable_from_walks_transitively() {
        let g = graph(4, &[(0, 1), (1, 2)]);
        let r = g.reachable_from(0);
        assert!(r.contains(1));
        assert!(r.contains(2));
        assert!(!r.contains(3));
        assert!(!r.contains(0));
    }

    #[test]
    fn reachable_from_includes_self_on_cycle() {
        let g = graph(2, &[(0, 1), (1, 0)]);
        assert!(g.reachable_from(0).contains(0));
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::new(0);
        assert!(g.scc().is_empty());
        assert_eq!(g.transitive_reduction().num_nodes(), 0);
    }
}
