//! Property-based tests for the graph algorithms.

// NOTE: the hermetic build has no `proptest`; enable the `proptests`
// feature after vendoring it to run this suite.
#![cfg(feature = "proptests")]

use concord_graph::DiGraph;
use proptest::prelude::*;

/// Generates a random directed graph with up to `max_n` nodes.
fn arb_graph(max_n: usize) -> impl Strategy<Value = DiGraph> {
    (1..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n), 0..(n * 3)).prop_map(move |edges| {
            let mut g = DiGraph::new(n);
            for (u, v) in edges {
                g.add_edge(u, v);
            }
            g
        })
    })
}

/// Generates a random DAG by orienting edges from lower to higher index.
fn arb_dag(max_n: usize) -> impl Strategy<Value = DiGraph> {
    (2..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n), 0..(n * 3)).prop_map(move |edges| {
            let mut g = DiGraph::new(n);
            for (u, v) in edges {
                if u < v {
                    g.add_edge(u, v);
                }
            }
            g
        })
    })
}

proptest! {
    /// SCCs partition the node set.
    #[test]
    fn scc_is_a_partition(g in arb_graph(24)) {
        let comps = g.scc();
        let mut seen = vec![false; g.num_nodes()];
        for comp in &comps {
            for &node in comp {
                prop_assert!(!seen[node], "node {node} in two components");
                seen[node] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Two nodes share an SCC iff they reach each other.
    #[test]
    fn scc_matches_mutual_reachability(g in arb_graph(12)) {
        let comps = g.scc();
        let comp_of = |x: usize| comps.iter().position(|c| c.contains(&x)).unwrap();
        for u in 0..g.num_nodes() {
            let ru = g.reachable_from(u);
            for v in 0..g.num_nodes() {
                if u == v { continue; }
                let rv = g.reachable_from(v);
                let mutual = ru.contains(v) && rv.contains(u);
                prop_assert_eq!(mutual, comp_of(u) == comp_of(v));
            }
        }
    }

    /// The condensation is acyclic.
    #[test]
    fn condensation_is_dag(g in arb_graph(24)) {
        let (dag, _) = g.condensation();
        prop_assert!(dag.topological_order().is_some());
    }

    /// Transitive reduction preserves reachability exactly.
    #[test]
    fn reduction_preserves_reachability(g in arb_dag(16)) {
        let r = g.transitive_reduction();
        for u in 0..g.num_nodes() {
            let before = g.reachable_from(u);
            let after = r.reachable_from(u);
            for v in 0..g.num_nodes() {
                prop_assert_eq!(before.contains(v), after.contains(v),
                    "reachability {}->{} changed", u, v);
            }
        }
    }

    /// Transitive reduction never adds edges and is idempotent.
    #[test]
    fn reduction_shrinks_and_is_idempotent(g in arb_dag(16)) {
        let r = g.transitive_reduction();
        prop_assert!(r.num_edges() <= g.num_edges());
        for (u, v) in r.edges() {
            prop_assert!(g.has_edge(u, v), "reduction invented edge {}->{}", u, v);
        }
        let rr = r.transitive_reduction();
        prop_assert_eq!(rr.num_edges(), r.num_edges());
    }

    /// Every surviving edge is essential: removing it changes reachability.
    #[test]
    fn reduction_is_minimal(g in arb_dag(10)) {
        let r = g.transitive_reduction();
        for (u, v) in r.edges() {
            let mut without = DiGraph::new(r.num_nodes());
            for (a, b) in r.edges() {
                if (a, b) != (u, v) {
                    without.add_edge(a, b);
                }
            }
            prop_assert!(!without.reachable_from(u).contains(v),
                "edge {}->{} was redundant", u, v);
        }
    }
}
