#![warn(missing_docs)]

//! A dependency-free JSON library for the Concord workspace.
//!
//! The build environment is hermetic (no registry access), so instead of
//! `serde`/`serde_json` the workspace serializes through this crate: a
//! [`Json`] value model, a strict parser, compact and pretty writers, the
//! [`ToJson`]/[`FromJson`] conversion traits, and a [`json!`] macro for
//! building values inline.
//!
//! Conventions mirror serde's externally-tagged encoding so contract
//! files keep the obvious shape:
//!
//! * unit enum variants encode as their name (`"Num"`),
//! * newtype/struct variants encode as a one-key object
//!   (`{"Present": {"pattern": "..."}}`),
//! * structs encode as objects of their fields.
//!
//! Object key order is preserved (insertion order), which keeps every
//! writer deterministic.

use std::collections::BTreeMap;
use std::fmt;

/// Alias matching the `serde_json::Value` spelling used around the
/// workspace.
pub type Value = Json;

/// A parsed or constructed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number. Integers up to 2^53 round-trip exactly.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Json)>),
}

/// A JSON error: parse failure or a shape mismatch during decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Builds an error from any displayable message (serde parity).
    pub fn custom(msg: impl fmt::Display) -> Error {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl Json {
    /// Returns the bool value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the number as `u64` when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.007199254740992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Returns the number as `i64` when it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && n.abs() <= 9.007199254740992e15 => Some(*n as i64),
            _ => None,
        }
    }

    /// Returns the string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the key/value pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Returns `true` for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Looks up `key` in an object (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object()
            .and_then(|pairs| pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// Builds the one-key object `{tag: value}` (externally-tagged enum
    /// encoding).
    pub fn tagged(tag: &str, value: Json) -> Json {
        Json::Object(vec![(tag.to_string(), value)])
    }

    /// Parses a JSON document, requiring it to span the whole input.
    pub fn parse(text: &str) -> Result<Json, Error> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(Error(format!("trailing characters at byte {}", p.pos)));
        }
        Ok(value)
    }

    /// Renders the document compactly.
    pub fn render(&self) -> String {
        let mut out = String::new();
        write_value(self, None, 0, &mut out);
        out
    }

    /// Renders the document with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        write_value(self, Some(2), 0, &mut out);
        out
    }
}

/// The shared `null` returned by out-of-range indexing.
static NULL: Json = Json::Null;

impl std::ops::Index<&str> for Json {
    type Output = Json;

    /// Object field access; missing keys and non-objects yield `null`
    /// (serde_json parity).
    fn index(&self, key: &str) -> &Json {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Json {
    type Output = Json;

    /// Array element access; out-of-range and non-arrays yield `null`.
    fn index(&self, i: usize) -> &Json {
        self.as_array().and_then(|a| a.get(i)).unwrap_or(&NULL)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Serializes any [`ToJson`] value compactly.
///
/// Serialization cannot fail; the `Result` mirrors the `serde_json` call
/// shape so call sites read the same.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json().render())
}

/// Serializes any [`ToJson`] value with pretty indentation.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json().render_pretty())
}

/// Parses `text` and decodes it into `T`.
pub fn from_str<T: FromJson>(text: &str) -> Result<T, Error> {
    T::from_json(&Json::parse(text)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(value: &Json, indent: Option<usize>, depth: usize, out: &mut String) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(n) => write_number(*n, out),
        Json::Str(s) => write_string(s, out),
        Json::Array(items) => {
            write_seq(items.iter(), indent, depth, out, '[', ']', |item, d, o| {
                write_value(item, indent, d, o)
            })
        }
        Json::Object(pairs) => write_seq(
            pairs.iter(),
            indent,
            depth,
            out,
            '{',
            '}',
            |(k, v), d, o| {
                write_string(k, o);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(v, indent, d, o);
            },
        ),
    }
}

fn write_seq<I: ExactSizeIterator>(
    items: I,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    open: char,
    close: char,
    mut write_item: impl FnMut(I::Item, usize, &mut String),
) {
    out.push(open);
    let len = items.len();
    for (i, item) in items.enumerate() {
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        write_item(item, depth + 1, out);
        if i + 1 < len {
            out.push(',');
            if indent.is_none() {
                // compact form: no separator space
            }
        }
    }
    if indent.is_some() && len > 0 {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', indent.unwrap_or(0) * depth));
    }
    out.push(close);
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; mirror the lossy-but-valid choice of
        // emitting null.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.007199254740992e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn fail<T>(&self, msg: &str) -> Result<T, Error> {
        Err(Error(format!("{msg} at byte {}", self.pos)))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            self.fail(&format!("expected {:?}", b as char))
        }
    }

    fn eat_literal(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, Error> {
        match self.bytes.get(self.pos) {
            None => self.fail("unexpected end of input"),
            Some(b'n') if self.eat_literal("null") => Ok(Json::Null),
            Some(b't') if self.eat_literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(_) => self.fail("unexpected character"),
        }
    }

    fn array(&mut self) -> Result<Json, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return self.fail("expected ',' or ']'"),
            }
        }
    }

    fn object(&mut self) -> Result<Json, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return self.fail("expected ',' or '}'"),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid utf-8 in string".to_string()))?,
            );
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error("unterminated escape".to_string()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let first = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow.
                                if !self.eat_literal("\\u") {
                                    return self.fail("unpaired surrogate");
                                }
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return self.fail("invalid low surrogate");
                                }
                                0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                first
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return self.fail("invalid unicode escape"),
                            }
                        }
                        _ => return self.fail("invalid escape"),
                    }
                }
                _ => return self.fail("unterminated string"),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
        let text =
            std::str::from_utf8(slice).map_err(|_| Error("invalid \\u escape".to_string()))?;
        let code =
            u32::from_str_radix(text, 16).map_err(|_| Error("invalid \\u escape".to_string()))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.bytes.get(self.pos) == Some(&b'.') {
            self.pos += 1;
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".to_string()))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| Error(format!("invalid number {text:?}")))
    }
}

// ---------------------------------------------------------------------------
// Conversion traits
// ---------------------------------------------------------------------------

/// Converts a value into its [`Json`] representation.
pub trait ToJson {
    /// Builds the JSON form of `self`.
    fn to_json(&self) -> Json;
}

/// Reconstructs a value from its [`Json`] representation.
pub trait FromJson: Sized {
    /// Decodes `value`, failing with a descriptive [`Error`] on shape
    /// mismatches.
    fn from_json(value: &Json) -> Result<Self, Error>;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(value: &Json) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(value: &Json) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error(format!("expected bool, got {value}")))
    }
}

macro_rules! impl_json_int {
    ($($ty:ty),*) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }

        impl FromJson for $ty {
            fn from_json(value: &Json) -> Result<Self, Error> {
                value
                    .as_i64()
                    .and_then(|n| <$ty>::try_from(n).ok())
                    .ok_or_else(|| Error(format!(
                        concat!("expected ", stringify!($ty), ", got {}"),
                        value
                    )))
            }
        }
    )*};
}

impl_json_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl FromJson for f64 {
    fn from_json(value: &Json) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error(format!("expected number, got {value}")))
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Num(f64::from(*self))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(value: &Json) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error(format!("expected string, got {value}")))
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(value: &Json) -> Result<Self, Error> {
        if value.is_null() {
            Ok(None)
        } else {
            T::from_json(value).map(Some)
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(value: &Json) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error(format!("expected array, got {value}")))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<K: fmt::Display, V: ToJson> ToJson for BTreeMap<K, V> {
    fn to_json(&self) -> Json {
        Json::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_json()))
                .collect(),
        )
    }
}

/// Builds a [`Json`] value inline.
///
/// Supports `null`, object literals with literal keys, array literals, and
/// any expression implementing [`ToJson`] as a value. Nest by calling
/// `json!` recursively in value position.
///
/// ```
/// use concord_json::json;
///
/// let v = json!({ "name": "W2", "lines": 2865, "ok": true });
/// assert_eq!(v.get("lines").and_then(|n| n.as_u64()), Some(2865));
/// ```
#[macro_export]
macro_rules! json {
    (null) => {
        $crate::Json::Null
    };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Json::Object(vec![
            $( ($key.to_string(), $crate::ToJson::to_json(&$value)) ),*
        ])
    };
    ([ $($value:expr),* $(,)? ]) => {
        $crate::Json::Array(vec![ $( $crate::ToJson::to_json(&$value) ),* ])
    };
    ($other:expr) => {
        $crate::ToJson::to_json(&$other)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for text in ["null", "true", "false", "0", "-17", "3.5", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.render(), text);
        }
    }

    #[test]
    fn roundtrip_nested() {
        let text = r#"{"a":[1,2,{"b":null}],"c":"x\ny","d":-0.5}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.render(), text);
        let pretty = v.render_pretty();
        assert!(pretty.contains("\n  \"a\": [\n"));
        assert_eq!(Json::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn string_escapes() {
        let v = Json::parse(r#""tab\tquote\"uAsurrogate😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "tab\tquote\"uAsurrogate\u{1F600}");
        let back = Json::parse(&v.render()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_garbage() {
        for text in ["", "{", "[1,", "\"open", "{\"a\" 1}", "nul", "1 2", "[01a]"] {
            assert!(Json::parse(text).is_err(), "accepted {text:?}");
        }
    }

    #[test]
    fn numbers_render_integers_exactly() {
        assert_eq!(Json::Num(42.0).render(), "42");
        assert_eq!(Json::Num(-3.0).render(), "-3");
        assert_eq!(Json::Num(0.25).render(), "0.25");
        assert_eq!(
            Json::parse("9007199254740991").unwrap().as_u64(),
            Some(9007199254740991)
        );
    }

    #[test]
    fn object_order_is_preserved() {
        let v = json!({ "z": 1, "a": 2 });
        assert_eq!(v.render(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn macro_shapes() {
        let rows = vec![json!({ "x": 1 }), json!({ "x": 2 })];
        let v = json!({ "rows": rows, "label": "t", "none": json!(null) });
        assert_eq!(v.get("rows").unwrap().as_array().unwrap().len(), 2);
        assert!(v.get("none").unwrap().is_null());
        let arr = json!([1, 2, 3]);
        assert_eq!(arr.as_array().unwrap().len(), 3);
    }

    #[test]
    fn conversion_traits_roundtrip() {
        let xs = vec![1u32, 5, 9];
        let text = to_string(&xs).unwrap();
        let back: Vec<u32> = from_str(&text).unwrap();
        assert_eq!(back, xs);
        let opt: Option<String> = from_str("null").unwrap();
        assert_eq!(opt, None);
        assert!(from_str::<u8>("300").is_err());
    }

    #[test]
    fn btreemap_serializes_as_object() {
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), 7u32);
        assert_eq!(to_string(&m).unwrap(), r#"{"k":7}"#);
    }
}
