//! Token definitions (Table 1 of the paper).

use concord_regex::Regex;
use concord_types::{Value, ValueType};

/// A quick first-character filter so the scanner can skip regex execution
/// at positions where a token cannot possibly start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FirstSet {
    /// ASCII digit.
    Digit,
    /// ASCII hex digit or `:` (MAC / IPv6 shapes).
    HexOrColon,
    /// Exactly `0` (the `0x...` hex literal prefix).
    Zero,
    /// `t` or `f` (booleans).
    TrueFalse,
    /// No filter (user-defined tokens).
    Any,
}

impl FirstSet {
    fn admits(self, c: char) -> bool {
        match self {
            FirstSet::Digit => c.is_ascii_digit(),
            FirstSet::HexOrColon => c.is_ascii_hexdigit() || c == ':',
            FirstSet::Zero => c == '0',
            FirstSet::TrueFalse => c == 't' || c == 'f',
            FirstSet::Any => true,
        }
    }
}

/// A single token definition: a type, its regex, and matching rules.
#[derive(Debug, Clone)]
pub struct TokenDef {
    ty: ValueType,
    regex: Regex,
    first: FirstSet,
    /// Require non-alphanumeric characters on both sides of the match
    /// (used by word-like tokens such as booleans so `trueness` does not
    /// contain a `[bool]`).
    word_boundary: bool,
}

/// Error constructing a [`TokenDef`] from a user-supplied pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenDefError {
    /// The token name the definition was for.
    pub name: String,
    /// Why the regex failed to compile.
    pub message: String,
}

impl std::fmt::Display for TokenDefError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid token definition [{}]: {}",
            self.name, self.message
        )
    }
}

impl std::error::Error for TokenDefError {}

impl TokenDef {
    /// Creates a user-defined token type from a regex.
    pub fn custom(name: &str, pattern: &str) -> Result<TokenDef, TokenDefError> {
        let regex = Regex::new(pattern).map_err(|e| TokenDefError {
            name: name.to_string(),
            message: e.to_string(),
        })?;
        Ok(TokenDef {
            ty: ValueType::Custom(name.to_string()),
            regex,
            first: FirstSet::Any,
            word_boundary: false,
        })
    }

    /// Returns the token's value type.
    pub fn ty(&self) -> &ValueType {
        &self.ty
    }

    /// Returns the source regex pattern.
    pub fn pattern(&self) -> &str {
        self.regex.pattern()
    }

    /// Attempts to match this token at byte offset `pos` of `text`.
    ///
    /// Returns the match length only if the regex matches, boundary rules
    /// hold, and the matched text semantically parses as the token's type.
    pub fn match_at(&self, text: &str, pos: usize) -> Option<usize> {
        let next = text[pos..].chars().next()?;
        if !self.first.admits(next) {
            return None;
        }
        if self.word_boundary && !boundary_before(text, pos) {
            return None;
        }
        let len = self.regex.match_at(text, pos)?;
        if len == 0 {
            return None;
        }
        if self.word_boundary && !boundary_after(text, pos + len) {
            return None;
        }
        Value::parse_as(&self.ty, &text[pos..pos + len])?;
        Some(len)
    }
}

fn boundary_before(text: &str, pos: usize) -> bool {
    pos == 0
        || text[..pos]
            .chars()
            .next_back()
            .is_none_or(|c| !c.is_alphanumeric())
}

fn boundary_after(text: &str, end: usize) -> bool {
    text[end..]
        .chars()
        .next()
        .is_none_or(|c| !c.is_alphanumeric())
}

/// Builds the built-in token definitions in priority order.
///
/// The longest match wins regardless of order, so order only breaks ties;
/// the more specific types come first for clarity.
pub fn builtin_defs() -> Vec<TokenDef> {
    let hex_group = "[0-9a-fA-F]{1,4}";
    let ip6 = format!(
        "(({g}:){{7}}{g}|({g}:){{1,7}}:|({g}:){{1,6}}(:{g}){{1,6}}|:(:{g}){{1,7}}|::)",
        g = hex_group
    );
    let defs: Vec<(ValueType, String, FirstSet, bool)> = vec![
        (
            ValueType::Pfx4,
            r"[0-9]{1,3}(\.[0-9]{1,3}){3}/[0-9]{1,2}".to_string(),
            FirstSet::Digit,
            false,
        ),
        (
            ValueType::Ip4,
            r"[0-9]{1,3}(\.[0-9]{1,3}){3}".to_string(),
            FirstSet::Digit,
            false,
        ),
        (
            ValueType::Pfx6,
            format!("{ip6}/[0-9]{{1,3}}"),
            FirstSet::HexOrColon,
            false,
        ),
        (ValueType::Ip6, ip6.clone(), FirstSet::HexOrColon, false),
        (
            ValueType::Mac,
            "[0-9a-fA-F]{1,2}(:[0-9a-fA-F]{1,2}){5}".to_string(),
            FirstSet::HexOrColon,
            false,
        ),
        (
            ValueType::Hex,
            "0x[0-9a-fA-F]+".to_string(),
            FirstSet::Zero,
            false,
        ),
        (ValueType::Num, "[0-9]+".to_string(), FirstSet::Digit, false),
        (
            ValueType::Bool,
            "true|false".to_string(),
            FirstSet::TrueFalse,
            true,
        ),
    ];
    defs.into_iter()
        .map(|(ty, pattern, first, word_boundary)| TokenDef {
            regex: Regex::new(&pattern).expect("built-in token regex must compile"),
            ty,
            first,
            word_boundary,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn def_for(ty: &ValueType) -> TokenDef {
        builtin_defs()
            .into_iter()
            .find(|d| d.ty() == ty)
            .unwrap_or_else(|| panic!("missing builtin {ty}"))
    }

    #[test]
    fn builtins_compile() {
        let defs = builtin_defs();
        assert_eq!(defs.len(), 8);
    }

    #[test]
    fn ip4_def_validates_semantically() {
        let def = def_for(&ValueType::Ip4);
        assert_eq!(def.match_at("10.0.0.1", 0), Some(8));
        assert_eq!(def.match_at("999.0.0.1", 0), None);
    }

    #[test]
    fn ip6_def_rejects_mac_shape() {
        let def = def_for(&ValueType::Ip6);
        assert!(def.match_at("00:00:0c:d3:00:6e", 0).is_none());
        assert!(def.match_at("2001:db8::1", 0).is_some());
        assert_eq!(def.match_at("::", 0), Some(2));
    }

    #[test]
    fn mac_def_rejects_short_runs() {
        let def = def_for(&ValueType::Mac);
        assert!(def.match_at("00:00:0c:d3:00", 0).is_none());
        assert_eq!(def.match_at("00:00:0c:d3:00:6e", 0), Some(17));
    }

    #[test]
    fn bool_word_boundaries() {
        let def = def_for(&ValueType::Bool);
        assert_eq!(def.match_at("true", 0), Some(4));
        assert_eq!(def.match_at("trueness", 0), None);
        assert_eq!(def.match_at("xtrue", 1), None);
        assert_eq!(def.match_at("x true y", 2), Some(4));
    }

    #[test]
    fn hex_requires_prefix() {
        let def = def_for(&ValueType::Hex);
        assert_eq!(def.match_at("0x1f", 0), Some(4));
        assert_eq!(def.match_at("1f", 0), None);
    }

    #[test]
    fn first_set_filter_blocks_cheaply() {
        let def = def_for(&ValueType::Num);
        // Starts with a letter: filtered before regex execution.
        assert_eq!(def.match_at("abc", 0), None);
    }

    #[test]
    fn custom_token_roundtrip() {
        let def = TokenDef::custom("iface", "[eE]t-?[0-9]+").unwrap();
        assert_eq!(def.ty(), &ValueType::Custom("iface".to_string()));
        assert_eq!(def.match_at("Et10", 0), Some(4));
        assert_eq!(def.pattern(), "[eE]t-?[0-9]+");
    }

    #[test]
    fn custom_token_error_carries_name() {
        let err = TokenDef::custom("bad", "(").unwrap_err();
        assert_eq!(err.name, "bad");
        assert!(err.to_string().contains("bad"));
    }
}
