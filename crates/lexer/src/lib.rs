#![warn(missing_docs)]

//! Pattern and value extraction (§3.2 of the paper).
//!
//! The lexer separates each configuration line into a *typed pattern* and a
//! *parameter map*. The line
//!
//! ```text
//! rd 10.14.14.117:10251
//! ```
//!
//! becomes the pattern `rd [a:ip4]:[b:num]` with parameters
//! `{a ↦ 10.14.14.117, b ↦ 10251}`. Patterns identify configuration lines
//! that differ only in their data, which is what lets Concord learn
//! contracts such as "every loopback address is permitted by a prefix
//! list".
//!
//! Token types follow Table 1 of the paper: built-ins for numbers, hex
//! numbers, booleans, MAC addresses, IPv4/IPv6 addresses and prefixes, plus
//! user-defined types supplied as custom regular expressions (which take
//! precedence over the built-ins, like `[iface]` and `[descr]` in the
//! paper). Every regex match is validated semantically (e.g. `999.1.1.1`
//! matches the IPv4 regex but is rejected by the parser), and the longest
//! valid candidate wins, with earlier definitions breaking ties.
//!
//! Parent context from embedding is lexed *anonymously*: holes in parent
//! components render as `[num]` with no variable, because Concord does not
//! bind variables for embedded context (§3.2, footnote 2).
//!
//! # Examples
//!
//! ```
//! use concord_lexer::Lexer;
//!
//! let lexer = Lexer::standard();
//! let lexed = lexer.lex_line(&["router bgp 65015".to_string()], "vlan 251", 21);
//! assert_eq!(lexed.pattern, "/router bgp [num]/vlan [a:num]");
//! assert_eq!(lexed.params.len(), 1);
//! assert_eq!(lexed.params[0].value.render(), "251");
//! ```

mod cache;
mod token;

pub use cache::{CacheStats, LexCache};
pub use token::{TokenDef, TokenDefError};

use concord_types::{Value, ValueType};

/// A named, typed parameter extracted from a line.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Param {
    /// The variable name (`a`, `b`, ..., then `a1`, `b1`, ...).
    pub name: String,
    /// The token type the value was extracted as.
    pub ty: ValueType,
    /// The extracted value.
    pub value: Value,
}

/// A configuration line after lexing: its full embedded typed pattern plus
/// the parameters bound from the original (non-context) text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexedLine {
    /// The typed pattern of the embedded line, e.g.
    /// `/interface Port-Channel[num]/route-target import [a:mac]`.
    pub pattern: String,
    /// Parameters bound from the original line, in order of appearance.
    pub params: Vec<Param>,
    /// 1-based source line number.
    pub line_no: u32,
    /// The trimmed original source text (without embedded context).
    pub original: String,
}

/// The Concord lexer: an ordered list of token definitions.
#[derive(Debug, Clone)]
pub struct Lexer {
    defs: Vec<TokenDef>,
}

impl Lexer {
    /// Builds the standard lexer with the built-in token types of Table 1.
    pub fn standard() -> Lexer {
        Lexer {
            defs: token::builtin_defs(),
        }
    }

    /// Builds a lexer with user-defined token types layered *before* the
    /// built-ins (custom definitions win ties, mirroring Table 1 where
    /// user patterns sit above the dotted line).
    ///
    /// Each definition is a `(name, regex)` pair; the extracted values are
    /// strings typed as [`ValueType::Custom`].
    pub fn with_custom<I, S>(custom: I) -> Result<Lexer, TokenDefError>
    where
        I: IntoIterator<Item = (S, S)>,
        S: AsRef<str>,
    {
        let mut defs = Vec::new();
        for (name, pattern) in custom {
            defs.push(TokenDef::custom(name.as_ref(), pattern.as_ref())?);
        }
        defs.extend(token::builtin_defs());
        Ok(Lexer { defs })
    }

    /// Returns the token definitions in matching priority order.
    pub fn defs(&self) -> &[TokenDef] {
        &self.defs
    }

    /// Lexes a full embedded line: anonymous patterns for the parents,
    /// bound parameters for the original text.
    pub fn lex_line(&self, parents: &[String], original: &str, line_no: u32) -> LexedLine {
        let mut pattern = String::new();
        for parent in parents {
            pattern.push('/');
            pattern.push_str(&self.fragment_pattern(parent, None).0);
        }
        pattern.push('/');
        let mut params = Vec::new();
        let (orig_pattern, _) = self.fragment_pattern(original, Some(&mut params));
        pattern.push_str(&orig_pattern);
        LexedLine {
            pattern,
            params,
            line_no,
            original: original.to_string(),
        }
    }

    /// Lexes a full embedded line through a shared [`LexCache`]: each
    /// distinct `(parents, original)` content is scanned once per cache,
    /// and later occurrences replay the memoized pattern and parameters
    /// (with their own `line_no`).
    ///
    /// The result is identical to [`Lexer::lex_line`] as long as `cache`
    /// is only ever used with lexers holding the same token definitions.
    pub fn lex_line_cached(
        &self,
        cache: &LexCache,
        parents: &[String],
        original: &str,
        line_no: u32,
    ) -> LexedLine {
        let key = LexCache::key(parents, original);
        if let Some((pattern, params)) = cache.lookup(&key) {
            return LexedLine {
                pattern,
                params,
                line_no,
                original: original.to_string(),
            };
        }
        let lexed = self.lex_line(parents, original, line_no);
        cache.insert(key, &lexed.pattern, &lexed.params);
        lexed
    }

    /// Lexes a standalone fragment, binding parameters.
    ///
    /// Returns the typed pattern and the extracted parameters.
    pub fn lex_fragment(&self, text: &str) -> (String, Vec<Param>) {
        let mut params = Vec::new();
        let (pattern, _) = self.fragment_pattern(text, Some(&mut params));
        (pattern, params)
    }

    /// Core scanning loop: maximal munch over the token definitions.
    ///
    /// With `params = None` the holes render anonymously (`[ty]`);
    /// otherwise they bind fresh variables (`[a:ty]`) and push values.
    fn fragment_pattern(&self, text: &str, mut params: Option<&mut Vec<Param>>) -> (String, usize) {
        let mut pattern = String::with_capacity(text.len());
        let mut count = 0usize;
        let mut pos = 0usize;
        while pos < text.len() {
            match self.best_token_at(text, pos) {
                Some((def_idx, len)) => {
                    let def = &self.defs[def_idx];
                    let matched = &text[pos..pos + len];
                    let value = Value::parse_as(def.ty(), matched)
                        .expect("best_token_at validated the value");
                    match params.as_deref_mut() {
                        Some(params) => {
                            let name = var_name(params.len());
                            pattern.push('[');
                            pattern.push_str(&name);
                            pattern.push(':');
                            pattern.push_str(def.ty().name());
                            pattern.push(']');
                            params.push(Param {
                                name,
                                ty: def.ty().clone(),
                                value,
                            });
                        }
                        None => {
                            pattern.push('[');
                            pattern.push_str(def.ty().name());
                            pattern.push(']');
                        }
                    }
                    count += 1;
                    pos += len;
                }
                None => {
                    let c = text[pos..].chars().next().expect("in-bounds position");
                    pattern.push(c);
                    pos += c.len_utf8();
                }
            }
        }
        (pattern, count)
    }

    /// Finds the best token at `pos`: longest valid match, ties broken by
    /// definition order.
    fn best_token_at(&self, text: &str, pos: usize) -> Option<(usize, usize)> {
        let mut best: Option<(usize, usize)> = None;
        for (idx, def) in self.defs.iter().enumerate() {
            if let Some(len) = def.match_at(text, pos) {
                if len == 0 {
                    continue;
                }
                let better = match best {
                    Some((_, best_len)) => len > best_len,
                    None => true,
                };
                if better {
                    best = Some((idx, len));
                }
            }
        }
        best
    }
}

/// Renders the `i`-th variable name: `a`..`z`, then `a1`, `b1`, ...
fn var_name(i: usize) -> String {
    let letter = (b'a' + (i % 26) as u8) as char;
    let round = i / 26;
    if round == 0 {
        letter.to_string()
    } else {
        format!("{letter}{round}")
    }
}

/// Rewrites a typed pattern into its type-agnostic form, replacing every
/// hole with `[?]` (used by type-contract learning, §3.4).
///
/// # Examples
///
/// ```
/// use concord_lexer::type_agnostic_pattern;
///
/// assert_eq!(
///     type_agnostic_pattern("ip address [a:ip4]"),
///     "ip address [?]"
/// );
/// ```
pub fn type_agnostic_pattern(pattern: &str) -> String {
    rewrite_holes(pattern, |_, _| "[?]".to_string())
}

/// Parses the holes of a typed pattern, returning `(name, type)` pairs in
/// order. Anonymous holes yield an empty name.
pub fn pattern_holes(pattern: &str) -> Vec<(String, ValueType)> {
    let mut holes = Vec::new();
    rewrite_holes(pattern, |name, ty| {
        holes.push((name.to_string(), ValueType::from_name(ty)));
        format!("[{}]", ty)
    });
    holes
}

/// Internal scanner over `[...]` holes; `f(name, ty)` produces the
/// replacement text for each hole.
fn rewrite_holes(pattern: &str, mut f: impl FnMut(&str, &str) -> String) -> String {
    let mut out = String::with_capacity(pattern.len());
    let bytes = pattern.as_bytes();
    let mut pos = 0;
    while pos < pattern.len() {
        if bytes[pos] == b'[' {
            if let Some(end_rel) = pattern[pos + 1..].find(']') {
                let inner = &pattern[pos + 1..pos + 1 + end_rel];
                let looks_like_hole = !inner.is_empty()
                    && inner
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == ':' || c == '?');
                if looks_like_hole {
                    let (name, ty) = match inner.split_once(':') {
                        Some((name, ty)) => (name, ty),
                        None => ("", inner),
                    };
                    out.push_str(&f(name, ty));
                    pos += end_rel + 2;
                    continue;
                }
            }
        }
        let c = pattern[pos..].chars().next().expect("in-bounds position");
        out.push(c);
        pos += c.len_utf8();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn std_lexer() -> Lexer {
        Lexer::standard()
    }

    #[test]
    fn lexes_ip_address_line() {
        let (pattern, params) = std_lexer().lex_fragment("ip address 10.14.14.34");
        assert_eq!(pattern, "ip address [a:ip4]");
        assert_eq!(params.len(), 1);
        assert_eq!(params[0].ty, ValueType::Ip4);
        assert_eq!(params[0].value.render(), "10.14.14.34");
    }

    #[test]
    fn prefix_beats_address() {
        let (pattern, params) = std_lexer().lex_fragment("seq 10 permit 10.14.14.34/32");
        assert_eq!(pattern, "seq [a:num] permit [b:pfx4]");
        assert_eq!(params[1].value.render(), "10.14.14.34/32");
    }

    #[test]
    fn mac_beats_number_runs() {
        let (pattern, params) = std_lexer().lex_fragment("route-target import 00:00:0c:d3:00:6e");
        assert_eq!(pattern, "route-target import [a:mac]");
        assert_eq!(params[0].value.render(), "00:00:0c:d3:00:6e");
    }

    #[test]
    fn route_distinguisher_splits() {
        let (pattern, params) = std_lexer().lex_fragment("rd 10.14.14.117:10251");
        assert_eq!(pattern, "rd [a:ip4]:[b:num]");
        assert_eq!(params[0].value.render(), "10.14.14.117");
        assert_eq!(params[1].value.render(), "10251");
    }

    #[test]
    fn number_embedded_in_word() {
        let (pattern, params) = std_lexer().lex_fragment("interface Loopback0");
        assert_eq!(pattern, "interface Loopback[a:num]");
        assert_eq!(params[0].value.render(), "0");
        let (pattern, _) = std_lexer().lex_fragment("hostname DEV1");
        assert_eq!(pattern, "hostname DEV[a:num]");
    }

    #[test]
    fn booleans_need_word_boundaries() {
        let (pattern, _) = std_lexer().lex_fragment("bfd true");
        assert_eq!(pattern, "bfd [a:bool]");
        let (pattern, _) = std_lexer().lex_fragment("trueness");
        assert_eq!(pattern, "trueness");
    }

    #[test]
    fn invalid_ip_rejected_semantically() {
        // `999.1.1.1` matches the IPv4 token regex but fails parsing; the
        // octet runs lex as plain numbers instead.
        let (pattern, _) = std_lexer().lex_fragment("ip address 999.1.1.1");
        assert_eq!(pattern, "ip address [a:num].[b:num].[c:num].[d:num]");
    }

    #[test]
    fn ipv6_and_prefix6() {
        // Note the `6` of `ipv6` itself extracts as a number, exactly like
        // `DEV1` -> `DEV[a:num]` in Figure 3 of the paper.
        let (pattern, params) = std_lexer().lex_fragment("ipv6 address 2001:db8::1/64");
        assert_eq!(pattern, "ipv[a:num] address [b:pfx6]");
        assert_eq!(params[1].ty, ValueType::Pfx6);
        let (pattern, _) = std_lexer().lex_fragment("neighbor fe80::12 remote-as 65000");
        assert_eq!(pattern, "neighbor [a:ip6] remote-as [b:num]");
    }

    #[test]
    fn hex_numbers() {
        let (pattern, params) = std_lexer().lex_fragment("register 0x1f");
        assert_eq!(pattern, "register [a:hex]");
        assert_eq!(params[0].value.render(), "31");
    }

    #[test]
    fn parents_lex_anonymously() {
        let lexed = std_lexer().lex_line(
            &[
                "interface Port-Channel110".to_string(),
                "evpn ether-segment".to_string(),
            ],
            "route-target import 00:00:0c:d3:00:6e",
            8,
        );
        assert_eq!(
            lexed.pattern,
            "/interface Port-Channel[num]/evpn ether-segment/route-target import [a:mac]"
        );
        assert_eq!(lexed.params.len(), 1);
        assert_eq!(lexed.line_no, 8);
        assert_eq!(lexed.original, "route-target import 00:00:0c:d3:00:6e");
    }

    #[test]
    fn custom_tokens_take_priority() {
        let lexer = Lexer::with_custom(vec![("iface", "([eE]t|ae)-?[0-9]+")]).unwrap();
        let (pattern, params) = lexer.lex_fragment("interface Et12");
        assert_eq!(pattern, "interface [a:iface]");
        assert_eq!(params[0].ty, ValueType::Custom("iface".to_string()));
        assert_eq!(params[0].value.render(), "Et12");
    }

    #[test]
    fn custom_token_bad_regex_errors() {
        assert!(Lexer::with_custom(vec![("bad", "a{3,1}")]).is_err());
    }

    #[test]
    fn multiple_params_name_in_order() {
        let (pattern, params) = std_lexer().lex_fragment("maximum-paths 64 ecmp 64");
        assert_eq!(pattern, "maximum-paths [a:num] ecmp [b:num]");
        assert_eq!(params[0].name, "a");
        assert_eq!(params[1].name, "b");
    }

    #[test]
    fn var_names_wrap_after_z() {
        assert_eq!(var_name(0), "a");
        assert_eq!(var_name(25), "z");
        assert_eq!(var_name(26), "a1");
        assert_eq!(var_name(27), "b1");
    }

    #[test]
    fn type_agnostic_rewrites_all_holes() {
        assert_eq!(
            type_agnostic_pattern("/router bgp [num]/rd [a:ip4]:[b:num]"),
            "/router bgp [?]/rd [?]:[?]"
        );
        // Literal brackets that are not holes survive.
        assert_eq!(type_agnostic_pattern("match [x y]"), "match [x y]");
    }

    #[test]
    fn pattern_holes_extraction() {
        let holes = pattern_holes("/interface Port-Channel[num]/rt [a:mac] x [b:num]");
        assert_eq!(
            holes,
            vec![
                ("".to_string(), ValueType::Num),
                ("a".to_string(), ValueType::Mac),
                ("b".to_string(), ValueType::Num),
            ]
        );
    }

    #[test]
    fn empty_line_lexes_to_empty_pattern() {
        let (pattern, params) = std_lexer().lex_fragment("");
        assert_eq!(pattern, "");
        assert!(params.is_empty());
    }

    #[test]
    fn bang_separator_survives() {
        let (pattern, params) = std_lexer().lex_fragment("!");
        assert_eq!(pattern, "!");
        assert!(params.is_empty());
    }

    #[test]
    fn figure_3_full_example() {
        let lexer = std_lexer();
        let cases = [
            ("hostname DEV1", "hostname DEV[a:num]"),
            ("interface Loopback0", "interface Loopback[a:num]"),
            ("interface Port-Channel110", "interface Port-Channel[a:num]"),
            ("seq 20 permit 0.0.0.0/0", "seq [a:num] permit [b:pfx4]"),
            ("router bgp 65015", "router bgp [a:num]"),
            ("vlan 251", "vlan [a:num]"),
        ];
        for (line, expected) in cases {
            let (pattern, _) = lexer.lex_fragment(line);
            assert_eq!(pattern, expected, "lexing {line:?}");
        }
    }
}
