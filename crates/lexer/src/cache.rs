//! A shared, content-addressed lex cache.
//!
//! Network configurations within a role repeat the same line *shapes*
//! thousands of times (`vlan 251` on thirty devices, `no shutdown` on
//! every interface). Re-running the maximal-munch scanner on each
//! occurrence dominates dataset construction, so [`LexCache`] memoizes
//! the result of lexing one embedded line — the typed pattern plus the
//! bound parameters — keyed by the full embedded content (parent context
//! and original text). Each distinct line shape is lexed exactly once per
//! cache, no matter how many configurations contain it.
//!
//! The cache is sharded and internally synchronized, so the parallel
//! dataset builder shares one cache across all worker threads. Hits and
//! misses are counted with relaxed atomics and surface in the pipeline
//! statistics (`concord-cli --stats`).
//!
//! A cache can be *bounded* ([`LexCache::with_capacity`]): each shard
//! evicts with a second-chance (clock) policy once it reaches its share
//! of the capacity, so a long-lived resident process (`concord serve`)
//! holds the hot working set without growing memory without limit.
//! Evictions only ever cost a re-scan on the next occurrence of the
//! evicted shape — hit/miss counters stay exact, and an eviction is
//! counted separately.
//!
//! A cache memoizes the output of *one* token-definition set: reusing a
//! cache with a lexer built from different custom tokens returns stale
//! patterns. Callers that switch lexers must switch caches.

use std::collections::{HashMap, VecDeque};
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::Param;

/// Number of independently locked shards. A small power of two keeps
/// contention negligible at the parallelism levels the pipeline uses.
const SHARDS: usize = 16;

/// One memoized lexing result.
#[derive(Debug, Clone)]
struct CachedLine {
    pattern: String,
    params: Vec<Param>,
    /// Second-chance bit: set on every hit, cleared by one clock sweep.
    hot: bool,
}

/// One independently locked portion of the cache.
#[derive(Debug, Default)]
struct Shard {
    map: HashMap<std::sync::Arc<str>, CachedLine>,
    /// Clock order over the keys of `map` (shared allocations). Keys are
    /// only removed by eviction, which pops from here in the same step,
    /// so the queue and the map always hold the same key set.
    clock: VecDeque<std::sync::Arc<str>>,
}

/// Hit/miss/eviction counts observed by a [`LexCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the scanner.
    pub misses: u64,
    /// Entries evicted to stay under the configured capacity (0 for an
    /// unbounded cache).
    pub evictions: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]`; `0` when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }
}

/// A thread-safe memo table from embedded line content to lexing result.
#[derive(Debug, Default)]
pub struct LexCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard entry cap; 0 means unbounded.
    shard_cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl LexCache {
    /// Creates an empty, unbounded cache.
    pub fn new() -> LexCache {
        Self::with_capacity(0)
    }

    /// Creates an empty cache holding at most `capacity` entries across
    /// all shards (`0` = unbounded). Once a shard reaches its share of
    /// the capacity it evicts with a second-chance (clock) policy: a
    /// shape hit since the last sweep gets one more round, everything
    /// else is dropped in insertion order.
    pub fn with_capacity(capacity: usize) -> LexCache {
        LexCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            // Round up so SHARDS * shard_cap >= capacity; a tiny bound
            // still caches at least one entry per shard.
            shard_cap: if capacity == 0 {
                0
            } else {
                capacity.div_ceil(SHARDS)
            },
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The configured total capacity (0 = unbounded).
    pub fn capacity(&self) -> usize {
        self.shard_cap * SHARDS
    }

    /// Builds the content-address of an embedded line. Parents are single
    /// lines (no `'\n'`), so newline-joining is unambiguous, and `'\x00'`
    /// separates context from original text.
    pub(crate) fn key(parents: &[String], original: &str) -> String {
        let mut key = String::with_capacity(
            parents.iter().map(|p| p.len() + 1).sum::<usize>() + original.len() + 1,
        );
        for parent in parents {
            key.push_str(parent);
            key.push('\n');
        }
        key.push('\x00');
        key.push_str(original);
        key
    }

    fn shard(&self, key: &str) -> &Mutex<Shard> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % SHARDS]
    }

    /// Looks up a memoized result, counting the hit or miss.
    pub(crate) fn lookup(&self, key: &str) -> Option<(String, Vec<Param>)> {
        let mut guard = self.shard(key).lock().expect("lex cache shard poisoned");
        match guard.map.get_mut(key) {
            Some(entry) => {
                entry.hot = true;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some((entry.pattern.clone(), entry.params.clone()))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Memoizes a freshly lexed line, evicting with the clock policy when
    /// the shard is at capacity.
    pub(crate) fn insert(&self, key: String, pattern: &str, params: &[Param]) {
        let mut guard = self.shard(&key).lock().expect("lex cache shard poisoned");
        if guard.map.contains_key(key.as_str()) {
            return; // raced with another worker: first write wins.
        }
        if self.shard_cap > 0 {
            while guard.map.len() >= self.shard_cap {
                let Some(victim) = guard.clock.pop_front() else {
                    break; // defensive: clock and map always match.
                };
                let give_second_chance = guard
                    .map
                    .get_mut(victim.as_ref())
                    .is_some_and(|entry| std::mem::take(&mut entry.hot));
                if give_second_chance {
                    guard.clock.push_back(victim);
                } else {
                    guard.map.remove(victim.as_ref());
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let key: std::sync::Arc<str> = key.into();
        guard.clock.push_back(key.clone());
        guard.map.insert(
            key,
            CachedLine {
                pattern: pattern.to_string(),
                params: params.to_vec(),
                hot: false,
            },
        );
    }

    /// Returns the number of distinct line shapes cached.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("lex cache shard poisoned").map.len())
            .sum()
    }

    /// Returns `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the hit/miss/eviction counts observed so far.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Lexer;

    #[test]
    fn second_lookup_hits() {
        let lexer = Lexer::standard();
        let cache = LexCache::new();
        let parents = vec!["router bgp 65015".to_string()];
        let first = lexer.lex_line_cached(&cache, &parents, "vlan 251", 3);
        let second = lexer.lex_line_cached(&cache, &parents, "vlan 251", 9);
        assert_eq!(first.pattern, second.pattern);
        assert_eq!(first.params, second.params);
        // line_no stays per-occurrence, outside the cache.
        assert_eq!(first.line_no, 3);
        assert_eq!(second.line_no, 9);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                evictions: 0
            }
        );
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn cached_result_matches_uncached() {
        let lexer = Lexer::standard();
        let cache = LexCache::new();
        let parents = vec!["interface Port-Channel110".to_string()];
        let line = "route-target import 00:00:0c:d3:00:6e";
        let direct = lexer.lex_line(&parents, line, 8);
        lexer.lex_line_cached(&cache, &parents, line, 8); // prime
        let cached = lexer.lex_line_cached(&cache, &parents, line, 8);
        assert_eq!(cached, direct);
    }

    #[test]
    fn distinct_context_is_a_distinct_entry() {
        let lexer = Lexer::standard();
        let cache = LexCache::new();
        let a = lexer.lex_line_cached(&cache, &["vlan 10".to_string()], "name X", 1);
        let b = lexer.lex_line_cached(&cache, &["vlan 20".to_string()], "name X", 1);
        // Same pattern text (context lexes anonymously) but both shapes
        // were real misses: the key includes the raw parent text.
        assert_eq!(a.pattern, b.pattern);
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn key_is_unambiguous() {
        // (parents ["a"], "b") must differ from (parents [], "a\nb")-style
        // concatenations.
        let k1 = LexCache::key(&["a".to_string()], "b");
        let k2 = LexCache::key(&[], "a\nb");
        assert_ne!(k1, k2);
    }

    #[test]
    fn hit_rate_arithmetic() {
        let stats = CacheStats {
            hits: 3,
            misses: 1,
            evictions: 0,
        };
        assert_eq!(stats.lookups(), 4);
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn bounded_cache_never_exceeds_capacity() {
        let lexer = Lexer::standard();
        // SHARDS * 2 entries max, with keys spread across shards.
        let cache = LexCache::with_capacity(32);
        for i in 0..2000 {
            lexer.lex_line_cached(&cache, &[], &format!("vlan {i} mode trunk-{i}"), 1);
        }
        assert!(
            cache.len() <= cache.capacity(),
            "cache holds {} entries over capacity {}",
            cache.len(),
            cache.capacity()
        );
        let stats = cache.stats();
        assert!(stats.evictions > 0, "overflow must evict: {stats:?}");
        // Every distinct shape was scanned at least once: all misses.
        assert_eq!(stats.misses, 2000);
    }

    #[test]
    fn evicted_entry_is_a_miss_then_reusable_again() {
        let lexer = Lexer::standard();
        let cache = LexCache::with_capacity(16); // one entry per shard
        lexer.lex_line_cached(&cache, &[], "hostname ALPHA", 1);
        // Flood with distinct shapes to force ALPHA out of its shard.
        for i in 0..500 {
            lexer.lex_line_cached(&cache, &[], &format!("ip route 10.0.{i}.0/24 drop"), 1);
        }
        let before = cache.stats();
        let relex = lexer.lex_line_cached(&cache, &[], "hostname ALPHA", 2);
        let after = cache.stats();
        // Whether ALPHA survived depends on clock order; either way the
        // counters stay exact and the result is correct.
        assert_eq!(after.lookups(), before.lookups() + 1);
        assert_eq!(
            relex.pattern,
            lexer.lex_line(&[], "hostname ALPHA", 2).pattern
        );
        assert!(cache.len() <= cache.capacity());
    }

    #[test]
    fn second_chance_keeps_hot_entries() {
        let lexer = Lexer::standard();
        let cache = LexCache::with_capacity(16); // one entry per shard
        lexer.lex_line_cached(&cache, &[], "hostname KEEP", 1);
        for i in 0..200 {
            // Re-touch the hot entry between floods of cold shapes.
            lexer.lex_line_cached(&cache, &[], "hostname KEEP", 1);
            lexer.lex_line_cached(&cache, &[], &format!("vlan {i}"), 1);
        }
        let hits = cache.stats().hits;
        assert!(
            hits >= 150,
            "a constantly re-touched shape should mostly survive eviction, hits={hits}"
        );
    }

    #[test]
    fn zero_capacity_means_unbounded() {
        let cache = LexCache::with_capacity(0);
        assert_eq!(cache.capacity(), 0);
        let lexer = Lexer::standard();
        for i in 0..300 {
            lexer.lex_line_cached(&cache, &[], &format!("vlan {i}"), 1);
        }
        assert_eq!(cache.len(), 300);
        assert_eq!(cache.stats().evictions, 0);
    }
}
