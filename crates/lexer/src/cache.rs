//! A shared, content-addressed lex cache.
//!
//! Network configurations within a role repeat the same line *shapes*
//! thousands of times (`vlan 251` on thirty devices, `no shutdown` on
//! every interface). Re-running the maximal-munch scanner on each
//! occurrence dominates dataset construction, so [`LexCache`] memoizes
//! the result of lexing one embedded line — the typed pattern plus the
//! bound parameters — keyed by the full embedded content (parent context
//! and original text). Each distinct line shape is lexed exactly once per
//! cache, no matter how many configurations contain it.
//!
//! The cache is sharded and internally synchronized, so the parallel
//! dataset builder shares one cache across all worker threads. Hits and
//! misses are counted with relaxed atomics and surface in the pipeline
//! statistics (`concord-cli --stats`).
//!
//! A cache memoizes the output of *one* token-definition set: reusing a
//! cache with a lexer built from different custom tokens returns stale
//! patterns. Callers that switch lexers must switch caches.

use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::Param;

/// Number of independently locked shards. A small power of two keeps
/// contention negligible at the parallelism levels the pipeline uses.
const SHARDS: usize = 16;

/// One memoized lexing result.
#[derive(Debug, Clone)]
struct CachedLine {
    pattern: String,
    params: Vec<Param>,
}

/// Hit/miss counts observed by a [`LexCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the scanner.
    pub misses: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]`; `0` when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }
}

/// A thread-safe memo table from embedded line content to lexing result.
#[derive(Debug, Default)]
pub struct LexCache {
    shards: Vec<Mutex<HashMap<String, CachedLine>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl LexCache {
    /// Creates an empty cache.
    pub fn new() -> LexCache {
        LexCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Builds the content-address of an embedded line. Parents are single
    /// lines (no `'\n'`), so newline-joining is unambiguous, and `'\x00'`
    /// separates context from original text.
    pub(crate) fn key(parents: &[String], original: &str) -> String {
        let mut key = String::with_capacity(
            parents.iter().map(|p| p.len() + 1).sum::<usize>() + original.len() + 1,
        );
        for parent in parents {
            key.push_str(parent);
            key.push('\n');
        }
        key.push('\x00');
        key.push_str(original);
        key
    }

    fn shard(&self, key: &str) -> &Mutex<HashMap<String, CachedLine>> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % SHARDS]
    }

    /// Looks up a memoized result, counting the hit or miss.
    pub(crate) fn lookup(&self, key: &str) -> Option<(String, Vec<Param>)> {
        let guard = self.shard(key).lock().expect("lex cache shard poisoned");
        match guard.get(key) {
            Some(entry) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some((entry.pattern.clone(), entry.params.clone()))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Memoizes a freshly lexed line.
    pub(crate) fn insert(&self, key: String, pattern: &str, params: &[Param]) {
        let mut guard = self.shard(&key).lock().expect("lex cache shard poisoned");
        guard.entry(key).or_insert_with(|| CachedLine {
            pattern: pattern.to_string(),
            params: params.to_vec(),
        });
    }

    /// Returns the number of distinct line shapes cached.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("lex cache shard poisoned").len())
            .sum()
    }

    /// Returns `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the hit/miss counts observed so far.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Lexer;

    #[test]
    fn second_lookup_hits() {
        let lexer = Lexer::standard();
        let cache = LexCache::new();
        let parents = vec!["router bgp 65015".to_string()];
        let first = lexer.lex_line_cached(&cache, &parents, "vlan 251", 3);
        let second = lexer.lex_line_cached(&cache, &parents, "vlan 251", 9);
        assert_eq!(first.pattern, second.pattern);
        assert_eq!(first.params, second.params);
        // line_no stays per-occurrence, outside the cache.
        assert_eq!(first.line_no, 3);
        assert_eq!(second.line_no, 9);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn cached_result_matches_uncached() {
        let lexer = Lexer::standard();
        let cache = LexCache::new();
        let parents = vec!["interface Port-Channel110".to_string()];
        let line = "route-target import 00:00:0c:d3:00:6e";
        let direct = lexer.lex_line(&parents, line, 8);
        lexer.lex_line_cached(&cache, &parents, line, 8); // prime
        let cached = lexer.lex_line_cached(&cache, &parents, line, 8);
        assert_eq!(cached, direct);
    }

    #[test]
    fn distinct_context_is_a_distinct_entry() {
        let lexer = Lexer::standard();
        let cache = LexCache::new();
        let a = lexer.lex_line_cached(&cache, &["vlan 10".to_string()], "name X", 1);
        let b = lexer.lex_line_cached(&cache, &["vlan 20".to_string()], "name X", 1);
        // Same pattern text (context lexes anonymously) but both shapes
        // were real misses: the key includes the raw parent text.
        assert_eq!(a.pattern, b.pattern);
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn key_is_unambiguous() {
        // (parents ["a"], "b") must differ from (parents [], "a\nb")-style
        // concatenations.
        let k1 = LexCache::key(&["a".to_string()], "b");
        let k2 = LexCache::key(&[], "a\nb");
        assert_ne!(k1, k2);
    }

    #[test]
    fn hit_rate_arithmetic() {
        let stats = CacheStats { hits: 3, misses: 1 };
        assert_eq!(stats.lookups(), 4);
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
