//! Property-based tests for the pattern lexer.

// NOTE: the hermetic build has no `proptest`; enable the `proptests`
// feature after vendoring it to run this suite.
#![cfg(feature = "proptests")]

use concord_lexer::{pattern_holes, type_agnostic_pattern, Lexer};
use proptest::prelude::*;

fn arb_config_line() -> impl Strategy<Value = String> {
    prop_oneof![
        // Word/number mixes.
        "[a-z]{1,8}( [a-z]{1,8}| [0-9]{1,5}){0,4}",
        // Lines with addresses and prefixes.
        (0u8..=255, 0u8..=255, 0u8..=255, 0u8..=32).prop_map(|(a, b, c, len)| {
            format!("ip address 10.{a}.{b}.{c} or 10.{a}.{b}.0/{len}")
        }),
        // MAC-bearing lines.
        proptest::array::uniform6(0u8..=255).prop_map(|o| {
            format!(
                "route-target import {:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
                o[0], o[1], o[2], o[3], o[4], o[5]
            )
        }),
        // Arbitrary printable noise.
        "\\PC{0,60}",
    ]
}

proptest! {
    /// Lexing is total, deterministic, and binds one parameter per
    /// bound hole.
    #[test]
    fn lexing_total_and_consistent(line in arb_config_line()) {
        let lexer = Lexer::standard();
        let (pattern, params) = lexer.lex_fragment(&line);
        let (pattern2, params2) = lexer.lex_fragment(&line);
        prop_assert_eq!(&pattern, &pattern2);
        prop_assert_eq!(&params, &params2);

        let holes = pattern_holes(&pattern);
        let bound: Vec<_> = holes.iter().filter(|(name, _)| !name.is_empty()).collect();
        prop_assert_eq!(bound.len(), params.len());
        for ((_, hole_ty), param) in bound.iter().zip(&params) {
            prop_assert_eq!(hole_ty, &param.ty);
        }
    }

    /// Parameter names are `a`, `b`, `c`, ... in order of appearance.
    #[test]
    fn parameter_names_sequential(line in arb_config_line()) {
        let (_, params) = Lexer::standard().lex_fragment(&line);
        for (i, param) in params.iter().enumerate().take(26) {
            let expected = ((b'a' + i as u8) as char).to_string();
            prop_assert_eq!(&param.name, &expected);
        }
    }

    /// Substituting rendered values back into the pattern and re-lexing
    /// yields the same pattern, for value-stable token types. (`hex`
    /// renders as decimal, so lines containing `0x` literals are
    /// excluded by construction here.)
    #[test]
    fn relex_of_substituted_pattern_is_stable(line in "[a-z]{1,8}( [0-9]{1,4}| 10\\.[0-9]{1,3}\\.[0-9]{1,3}\\.[0-9]{1,3}){0,3}") {
        let lexer = Lexer::standard();
        let (pattern, params) = lexer.lex_fragment(&line);
        // Rebuild the line from the pattern by splicing values back in.
        let mut rebuilt = String::new();
        let mut values = params.iter();
        let mut rest = pattern.as_str();
        while let Some(start) = rest.find('[') {
            rebuilt.push_str(&rest[..start]);
            let end = rest[start..].find(']').map(|e| start + e).unwrap();
            rebuilt.push_str(&values.next().unwrap().value.render());
            rest = &rest[end + 1..];
        }
        rebuilt.push_str(rest);
        let (pattern2, _) = lexer.lex_fragment(&rebuilt);
        prop_assert_eq!(pattern, pattern2, "rebuilt line {:?}", rebuilt);
    }

    /// The embedded pattern of a line always starts with its parents'
    /// anonymous patterns.
    #[test]
    fn embedded_pattern_prefix(parent in "[a-z]{1,8} [0-9]{1,4}", line in "[a-z]{1,8} [0-9]{1,4}") {
        let lexer = Lexer::standard();
        let lexed = lexer.lex_line(std::slice::from_ref(&parent), &line, 1);
        prop_assert!(lexed.pattern.starts_with('/'));
        // The parent segment contains an anonymous hole, not a bound one.
        let first_segment = lexed.pattern[1..].split('/').next().unwrap();
        prop_assert!(!first_segment.contains(':'), "{}", lexed.pattern);
    }

    /// The type-agnostic rewrite is idempotent and erases every hole.
    #[test]
    fn agnostic_rewrite_idempotent(line in arb_config_line()) {
        let (pattern, _) = Lexer::standard().lex_fragment(&line);
        let agnostic = type_agnostic_pattern(&pattern);
        prop_assert_eq!(type_agnostic_pattern(&agnostic), agnostic.clone());
        for (name, _) in pattern_holes(&agnostic) {
            prop_assert!(name.is_empty());
        }
    }
}
