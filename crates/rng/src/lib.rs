#![warn(missing_docs)]

//! A tiny deterministic PRNG for the synthetic dataset generators.
//!
//! The workspace builds hermetically (no registry access), so instead of
//! the `rand` crate the generators use this xoshiro256++ implementation
//! seeded through SplitMix64. The API mirrors the `rand` subset the
//! generators need (`StdRng::seed_from_u64`, `gen_range`, `gen_bool`), so
//! call sites read identically; determinism per seed is guaranteed across
//! platforms, which is what the experiment harness actually relies on.

/// Seedable random number generators (API parity with `rand::rngs`).
pub mod rngs {
    /// The standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: [u64; 4],
    }
}

pub use rngs::StdRng;

/// Construction from a seed (API parity with `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        // SplitMix64 expansion, the standard way to seed xoshiro.
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            state: [next(), next(), next(), next()],
        }
    }
}

impl StdRng {
    /// Produces the next 64 random bits (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }
}

/// Sampling helpers over a generator (API parity with `rand::Rng`).
pub trait Rng {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for StdRng {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 uniform mantissa bits, the usual open [0, 1) construction.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample(self, rng: &mut StdRng) -> T;
}

/// Unbiased sampling of `[0, bound)` by rejection (Lemire-style masking
/// would also do; the bound sizes here make rejection negligible).
fn uniform_below(rng: &mut StdRng, bound: u64) -> u64 {
    assert!(bound > 0, "empty range");
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let raw = rng.next_u64();
        if raw < zone {
            return raw % bound;
        }
    }
}

macro_rules! impl_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for std::ops::Range<$ty> {
            fn sample(self, rng: &mut StdRng) -> $ty {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let offset = uniform_below(rng, span);
                (self.start as i128 + offset as i128) as $ty
            }
        }

        impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
            fn sample(self, rng: &mut StdRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                let offset = uniform_below(rng, span + 1);
                (start as i128 + offset as i128) as $ty
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(100..120u32);
            assert!((100..120).contains(&v));
            let w: i32 = rng.gen_range(0..10);
            assert!((0..10).contains(&w));
            let x = rng.gen_range(0..=3u8);
            assert!(x <= 3);
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.15)).count();
        assert!((1200..1800).contains(&hits), "got {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
