//! IP addresses and networks (prefixes).
//!
//! The `contains` relational contract ("every interface address is
//! permitted by some prefix-list entry", Figure 1 contract 2) needs fast
//! prefix containment, so addresses are stored as fixed-width integers and
//! networks expose their bit representation for trie indexing.

use std::fmt;

use concord_json::{Error as JsonError, FromJson, Json, ToJson};

/// An IPv4 or IPv6 address.
///
/// # Examples
///
/// ```
/// use concord_types::{IpAddress, IpNetwork};
///
/// let addr: IpAddress = "10.14.14.34".parse().unwrap();
/// let net: IpNetwork = "10.14.14.34/32".parse().unwrap();
/// assert!(net.contains(addr));
/// assert!("0.0.0.0/0".parse::<IpNetwork>().unwrap().contains(addr));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IpAddress {
    /// An IPv4 address stored big-endian in a `u32`.
    V4(u32),
    /// An IPv6 address stored big-endian in a `u128`.
    V6(u128),
}

impl IpAddress {
    /// Returns the address bits left-aligned in a `u128`.
    ///
    /// IPv4 addresses occupy the top 32 bits; this gives both families a
    /// uniform most-significant-bit-first representation for tries.
    pub fn bits(&self) -> u128 {
        match *self {
            IpAddress::V4(v) => u128::from(v) << 96,
            IpAddress::V6(v) => v,
        }
    }

    /// Returns the number of bits in the address family (32 or 128).
    pub fn family_bits(&self) -> u8 {
        match self {
            IpAddress::V4(_) => 32,
            IpAddress::V6(_) => 128,
        }
    }

    /// Returns `true` for IPv4 addresses.
    pub fn is_v4(&self) -> bool {
        matches!(self, IpAddress::V4(_))
    }

    /// Returns the `i`-th octet of an IPv4 address (0-based from the left),
    /// or `None` for IPv6 or an out-of-range index.
    pub fn octet(&self, i: u8) -> Option<u8> {
        match *self {
            IpAddress::V4(v) if i < 4 => Some(v.to_be_bytes()[usize::from(i)]),
            _ => None,
        }
    }

    fn parse_v4(s: &str) -> Option<u32> {
        let mut parts = s.split('.');
        let mut addr: u32 = 0;
        for _ in 0..4 {
            let part = parts.next()?;
            if part.is_empty() || part.len() > 3 || !part.bytes().all(|b| b.is_ascii_digit()) {
                return None;
            }
            let octet: u32 = part.parse().ok()?;
            if octet > 255 {
                return None;
            }
            addr = (addr << 8) | octet;
        }
        if parts.next().is_some() {
            return None;
        }
        Some(addr)
    }

    fn parse_v6(s: &str) -> Option<u128> {
        // RFC 4291 text form with `::` compression, including the
        // embedded-IPv4 tail form (`::ffff:192.0.2.1`): rewrite the
        // dotted quad into its two trailing 16-bit groups first.
        let rewritten;
        let s = if s.contains('.') {
            let colon = s.rfind(':')?;
            let v4 = IpAddress::parse_v4(&s[colon + 1..])?;
            rewritten = format!("{}:{:x}:{:x}", &s[..colon], v4 >> 16, v4 & 0xffff);
            &rewritten
        } else {
            s
        };
        let (head, tail) = match s.find("::") {
            Some(pos) => {
                let tail = &s[pos + 2..];
                if tail.contains("::") {
                    return None;
                }
                (&s[..pos], tail)
            }
            None => (s, ""),
        };
        let parse_groups = |part: &str| -> Option<Vec<u16>> {
            if part.is_empty() {
                return Some(Vec::new());
            }
            part.split(':')
                .map(|g| {
                    if g.is_empty() || g.len() > 4 {
                        None
                    } else {
                        u16::from_str_radix(g, 16).ok()
                    }
                })
                .collect()
        };
        let head_groups = parse_groups(head)?;
        let tail_groups = parse_groups(tail)?;
        let total = head_groups.len() + tail_groups.len();
        let has_compression = s.contains("::");
        if (has_compression && total >= 8) || (!has_compression && total != 8) {
            return None;
        }
        let mut groups = [0u16; 8];
        groups[..head_groups.len()].copy_from_slice(&head_groups);
        groups[8 - tail_groups.len()..].copy_from_slice(&tail_groups);
        let mut bits: u128 = 0;
        for g in groups {
            bits = (bits << 16) | u128::from(g);
        }
        Some(bits)
    }
}

impl std::str::FromStr for IpAddress {
    type Err = IpParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(v4) = IpAddress::parse_v4(s) {
            Ok(IpAddress::V4(v4))
        } else if let Some(v6) = IpAddress::parse_v6(s) {
            Ok(IpAddress::V6(v6))
        } else {
            Err(IpParseError {
                input: s.to_string(),
            })
        }
    }
}

impl fmt::Display for IpAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            IpAddress::V4(v) => {
                let b = v.to_be_bytes();
                write!(f, "{}.{}.{}.{}", b[0], b[1], b[2], b[3])
            }
            IpAddress::V6(v) => {
                // Canonical-ish form: longest zero run compressed.
                let groups: Vec<u16> = (0..8)
                    .map(|i| ((v >> (112 - 16 * i)) & 0xffff) as u16)
                    .collect();
                let (best_start, best_len) = longest_zero_run(&groups);
                if best_len >= 2 {
                    let head: Vec<String> = groups[..best_start]
                        .iter()
                        .map(|g| format!("{g:x}"))
                        .collect();
                    let tail: Vec<String> = groups[best_start + best_len..]
                        .iter()
                        .map(|g| format!("{g:x}"))
                        .collect();
                    write!(f, "{}::{}", head.join(":"), tail.join(":"))
                } else {
                    let all: Vec<String> = groups.iter().map(|g| format!("{g:x}")).collect();
                    f.write_str(&all.join(":"))
                }
            }
        }
    }
}

fn longest_zero_run(groups: &[u16]) -> (usize, usize) {
    let (mut best_start, mut best_len) = (0, 0);
    let (mut cur_start, mut cur_len) = (0, 0);
    for (i, &g) in groups.iter().enumerate() {
        if g == 0 {
            if cur_len == 0 {
                cur_start = i;
            }
            cur_len += 1;
            if cur_len > best_len {
                best_start = cur_start;
                best_len = cur_len;
            }
        } else {
            cur_len = 0;
        }
    }
    (best_start, best_len)
}

/// An IP network: an address plus a prefix length.
///
/// The host bits are always stored zeroed (canonical form), so two spellings
/// of the same network compare equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IpNetwork {
    addr: IpAddress,
    prefix_len: u8,
}

impl IpNetwork {
    /// Creates a network from an address and prefix length, zeroing the
    /// host bits.
    ///
    /// Returns `None` when `prefix_len` exceeds the family width.
    pub fn new(addr: IpAddress, prefix_len: u8) -> Option<Self> {
        if prefix_len > addr.family_bits() {
            return None;
        }
        let masked = match addr {
            IpAddress::V4(v) => {
                let mask = if prefix_len == 0 {
                    0
                } else {
                    u32::MAX << (32 - u32::from(prefix_len))
                };
                IpAddress::V4(v & mask)
            }
            IpAddress::V6(v) => {
                let mask = if prefix_len == 0 {
                    0
                } else {
                    u128::MAX << (128 - u32::from(prefix_len))
                };
                IpAddress::V6(v & mask)
            }
        };
        Some(IpNetwork {
            addr: masked,
            prefix_len,
        })
    }

    /// Returns the (canonicalized) network address.
    pub fn addr(&self) -> IpAddress {
        self.addr
    }

    /// Returns the prefix length.
    pub fn prefix_len(&self) -> u8 {
        self.prefix_len
    }

    /// Returns `true` for IPv4 networks.
    pub fn is_v4(&self) -> bool {
        self.addr.is_v4()
    }

    /// Returns the network bits left-aligned in a `u128` (see
    /// [`IpAddress::bits`]).
    pub fn bits(&self) -> u128 {
        self.addr.bits()
    }

    /// Returns `true` if `addr` lies inside this network.
    ///
    /// Addresses of a different family are never contained.
    pub fn contains(&self, addr: IpAddress) -> bool {
        if self.addr.is_v4() != addr.is_v4() {
            return false;
        }
        if self.prefix_len == 0 {
            return true;
        }
        let shift = u32::from(self.addr.family_bits() - self.prefix_len);
        match (self.addr, addr) {
            (IpAddress::V4(net), IpAddress::V4(a)) => (net >> shift) == (a >> shift),
            (IpAddress::V6(net), IpAddress::V6(a)) => (net >> shift) == (a >> shift),
            _ => unreachable!("family checked above"),
        }
    }

    /// Returns `true` if `other` is a subnet of (or equal to) this network.
    pub fn contains_net(&self, other: &IpNetwork) -> bool {
        other.prefix_len >= self.prefix_len && self.contains(other.addr)
    }
}

impl std::str::FromStr for IpNetwork {
    type Err = IpParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || IpParseError {
            input: s.to_string(),
        };
        let (addr_part, len_part) = s.split_once('/').ok_or_else(err)?;
        let addr: IpAddress = addr_part.parse().map_err(|_| err())?;
        if len_part.is_empty()
            || len_part.len() > 3
            || !len_part.bytes().all(|b| b.is_ascii_digit())
        {
            return Err(err());
        }
        let prefix_len: u8 = len_part.parse().map_err(|_| err())?;
        IpNetwork::new(addr, prefix_len).ok_or_else(err)
    }
}

impl fmt::Display for IpNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.prefix_len)
    }
}

/// Error parsing an [`IpAddress`] or [`IpNetwork`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IpParseError {
    /// The rejected input.
    pub input: String,
}

impl fmt::Display for IpParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid IP address or network {:?}", self.input)
    }
}

impl std::error::Error for IpParseError {}

impl ToJson for IpAddress {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl FromJson for IpAddress {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        String::from_json(value)?.parse().map_err(JsonError::custom)
    }
}

impl ToJson for IpNetwork {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl FromJson for IpNetwork {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        String::from_json(value)?.parse().map_err(JsonError::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v4(s: &str) -> IpAddress {
        s.parse().unwrap()
    }

    fn net(s: &str) -> IpNetwork {
        s.parse().unwrap()
    }

    #[test]
    fn parse_v4_roundtrip() {
        for s in ["0.0.0.0", "10.14.14.34", "255.255.255.255", "192.168.1.1"] {
            assert_eq!(v4(s).to_string(), s);
        }
    }

    #[test]
    fn reject_bad_v4() {
        for s in [
            "256.1.1.1",
            "1.2.3",
            "1.2.3.4.5",
            "a.b.c.d",
            "",
            "1..2.3",
            "01x.2.3.4",
        ] {
            assert!(s.parse::<IpAddress>().is_err(), "{s} should fail");
        }
    }

    #[test]
    fn parse_v6_roundtrip() {
        let cases = [
            ("::", "::"),
            ("::1", "::1"),
            ("fe80::1", "fe80::1"),
            ("2001:db8:0:0:0:0:0:1", "2001:db8::1"),
            ("1:2:3:4:5:6:7:8", "1:2:3:4:5:6:7:8"),
        ];
        for (input, canonical) in cases {
            let addr: IpAddress = input.parse().unwrap();
            assert!(!addr.is_v4());
            assert_eq!(addr.to_string(), canonical);
        }
    }

    #[test]
    fn parse_v6_embedded_v4() {
        let mapped: IpAddress = "::ffff:192.0.2.1".parse().unwrap();
        assert!(!mapped.is_v4());
        assert_eq!(mapped.bits() & 0xffff_ffff, 0xc000_0201);
        let full: IpAddress = "64:ff9b::1.2.3.4".parse().unwrap();
        assert_eq!(full.bits() & 0xffff_ffff, 0x0102_0304);
        // The dotted tail must still be a valid quad in a valid position.
        assert!("::ffff:999.0.2.1".parse::<IpAddress>().is_err());
        assert!("1.2.3.4:ffff::".parse::<IpAddress>().is_err());
    }

    #[test]
    fn reject_bad_v6() {
        for s in [
            "1:2:3",
            ":::",
            "1::2::3",
            "12345::",
            "g::1",
            "1:2:3:4:5:6:7:8:9",
        ] {
            assert!(s.parse::<IpAddress>().is_err(), "{s} should fail");
        }
    }

    #[test]
    fn network_contains_address() {
        assert!(net("10.0.0.0/8").contains(v4("10.14.14.34")));
        assert!(!net("10.0.0.0/8").contains(v4("11.0.0.1")));
        assert!(net("0.0.0.0/0").contains(v4("203.0.113.9")));
        assert!(net("10.14.14.34/32").contains(v4("10.14.14.34")));
        assert!(!net("10.14.14.34/32").contains(v4("10.14.14.35")));
    }

    #[test]
    fn network_family_mismatch() {
        assert!(!net("10.0.0.0/8").contains("::1".parse().unwrap()));
        assert!(!net("::/0").contains(v4("1.2.3.4")));
    }

    #[test]
    fn network_canonicalizes_host_bits() {
        assert_eq!(net("10.14.14.34/24"), net("10.14.14.0/24"));
        assert_eq!(net("10.14.14.34/24").to_string(), "10.14.14.0/24");
    }

    #[test]
    fn network_contains_net() {
        assert!(net("10.0.0.0/8").contains_net(&net("10.1.0.0/16")));
        assert!(net("10.0.0.0/8").contains_net(&net("10.0.0.0/8")));
        assert!(!net("10.1.0.0/16").contains_net(&net("10.0.0.0/8")));
        assert!(!net("10.0.0.0/8").contains_net(&net("11.0.0.0/16")));
    }

    #[test]
    fn reject_bad_network() {
        for s in [
            "10.0.0.0",
            "10.0.0.0/33",
            "::/129",
            "10.0.0.0/x",
            "10.0.0.0/",
        ] {
            assert!(s.parse::<IpNetwork>().is_err(), "{s} should fail");
        }
    }

    #[test]
    fn octets() {
        let a = v4("10.14.15.34");
        assert_eq!(a.octet(0), Some(10));
        assert_eq!(a.octet(3), Some(34));
        assert_eq!(a.octet(4), None);
        assert_eq!("::1".parse::<IpAddress>().unwrap().octet(0), None);
    }

    #[test]
    fn bits_alignment() {
        assert_eq!(v4("128.0.0.0").bits() >> 127, 1);
        assert_eq!(v4("0.0.0.1").bits(), 1u128 << 96);
    }

    #[test]
    fn serde_roundtrip() {
        let n = net("10.1.0.0/16");
        let json = concord_json::to_string(&n).unwrap();
        assert_eq!(concord_json::from_str::<IpNetwork>(&json).unwrap(), n);
        let a = v4("10.1.2.3");
        let json = concord_json::to_string(&a).unwrap();
        assert_eq!(concord_json::from_str::<IpAddress>(&json).unwrap(), a);
    }
}
