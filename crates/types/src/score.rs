//! Instance-level informativeness scoring (§3.5).
//!
//! Not every relationship that holds across examples reflects operator
//! intent: `0.0.0.0/0` trivially contains every address, and small numbers
//! like `1` co-occur constantly. Each relation *instance* is therefore
//! scored by how unlikely it is to arise coincidentally; the learner then
//! aggregates scores over unique witness values (diversity-based
//! aggregation) and keeps only contracts whose cumulative score clears a
//! threshold.

use crate::value::Value;

/// Returns the informativeness score of a single value in `[0, 1]`.
///
/// Higher means "less likely to match by coincidence":
///
/// - the default route `0.0.0.0/0` (and `::/0`) scores 0, and prefix scores
///   grow with prefix length,
/// - numbers follow a step function of magnitude (0–10 are common, 3852 is
///   not),
/// - booleans are nearly uninformative,
/// - MAC addresses and long strings are highly informative.
///
/// # Examples
///
/// ```
/// use concord_types::{score, Value, ValueType};
///
/// let default_route = Value::parse_as(&ValueType::Pfx4, "0.0.0.0/0").unwrap();
/// let host_route = Value::parse_as(&ValueType::Pfx4, "10.1.2.3/32").unwrap();
/// assert_eq!(score::value_score(&default_route), 0.0);
/// assert!(score::value_score(&host_route) > 0.9);
/// ```
pub fn value_score(value: &Value) -> f64 {
    match value {
        Value::Num(n) => {
            // Step function of distance from zero (§3.5): common small
            // values are poor evidence; values like 3852 are strong.
            match n.to_u64() {
                Some(0) | Some(1) => 0.05,
                Some(v) if v <= 10 => 0.15,
                Some(v) if v <= 100 => 0.45,
                Some(v) if v <= 1000 => 0.7,
                _ => 1.0,
            }
        }
        Value::Bool(_) => 0.02,
        Value::Ip(a) => {
            // All-zeros addresses are placeholders.
            if a.bits() == 0 {
                0.0
            } else {
                0.85
            }
        }
        Value::Net(n) => {
            // `0.0.0.0/0` contains everything; specificity grows with
            // prefix length.
            if n.prefix_len() == 0 {
                0.0
            } else {
                let family = match n.addr() {
                    crate::ip::IpAddress::V4(_) => 32.0,
                    crate::ip::IpAddress::V6(_) => 128.0,
                };
                f64::from(n.prefix_len()) / family
            }
        }
        Value::Mac(_) => 1.0,
        Value::Str(s) => {
            if s.is_empty() {
                0.0
            } else {
                // Longer, more varied strings are less coincidental.
                let len_part = (s.len() as f64 / 8.0).min(1.0);
                let distinct = s.chars().collect::<std::collections::HashSet<_>>().len() as f64;
                let variety_part = (distinct / 6.0).min(1.0);
                0.9 * len_part.max(0.2) * variety_part.max(0.3)
            }
        }
    }
}

/// Returns the combined informativeness of one relation instance between
/// two values.
///
/// The instance is only as strong as its weaker side: a relation between a
/// rare port and `0.0.0.0/0` is still worthless evidence.
pub fn instance_score(left: &Value, right: &Value) -> f64 {
    value_score(left).min(value_score(right))
}

/// Aggregates instance scores over unique witness values
/// (diversity-based aggregation, §3.5).
///
/// A rule witnessed by values `{5, 6, 9, 11}` is more credible than one
/// witnessed four times by `5`; callers must deduplicate witnesses before
/// summing, which this helper does by rendered form.
pub fn aggregate_scores<'a, I>(witnesses: I) -> f64
where
    I: IntoIterator<Item = (&'a Value, f64)>,
{
    let mut seen = std::collections::HashSet::new();
    let mut total = 0.0;
    for (value, score) in witnesses {
        if seen.insert(value.render()) {
            total += score;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bignum::BigNum;
    use crate::value::ValueType;

    fn val(ty: ValueType, s: &str) -> Value {
        Value::parse_as(&ty, s).unwrap()
    }

    fn num(v: u64) -> Value {
        Value::Num(BigNum::from(v))
    }

    #[test]
    fn default_route_scores_zero() {
        assert_eq!(value_score(&val(ValueType::Pfx4, "0.0.0.0/0")), 0.0);
        assert_eq!(value_score(&val(ValueType::Pfx6, "::/0")), 0.0);
    }

    #[test]
    fn prefix_score_grows_with_length() {
        let p8 = value_score(&val(ValueType::Pfx4, "10.0.0.0/8"));
        let p24 = value_score(&val(ValueType::Pfx4, "10.1.2.0/24"));
        let p32 = value_score(&val(ValueType::Pfx4, "10.1.2.3/32"));
        assert!(p8 < p24);
        assert!(p24 < p32);
        assert_eq!(p32, 1.0);
    }

    #[test]
    fn number_step_function() {
        assert!(value_score(&num(1)) < value_score(&num(7)));
        assert!(value_score(&num(7)) < value_score(&num(64)));
        assert!(value_score(&num(64)) < value_score(&num(251)));
        assert!(value_score(&num(251)) < value_score(&num(3852)));
        assert_eq!(value_score(&num(3852)), 1.0);
        // Huge values saturate.
        assert_eq!(
            value_score(&Value::Num(
                BigNum::from_decimal("999999999999999999999").unwrap()
            )),
            1.0
        );
    }

    #[test]
    fn bool_nearly_uninformative() {
        assert!(value_score(&Value::Bool(true)) < 0.1);
    }

    #[test]
    fn mac_highly_informative() {
        assert_eq!(value_score(&val(ValueType::Mac, "00:00:0c:d3:00:6e")), 1.0);
    }

    #[test]
    fn zero_ip_uninformative() {
        assert_eq!(value_score(&val(ValueType::Ip4, "0.0.0.0")), 0.0);
        assert!(value_score(&val(ValueType::Ip4, "10.14.14.34")) > 0.5);
    }

    #[test]
    fn string_scores() {
        assert_eq!(value_score(&Value::Str(String::new())), 0.0);
        let short = value_score(&Value::Str("a".to_string()));
        let long = value_score(&Value::Str("mgmt-vrf-uplink".to_string()));
        assert!(short < long);
    }

    #[test]
    fn instance_score_is_min() {
        let weak = val(ValueType::Pfx4, "0.0.0.0/0");
        let strong = val(ValueType::Ip4, "10.14.14.117");
        assert_eq!(instance_score(&weak, &strong), 0.0);
        assert_eq!(instance_score(&strong, &strong), value_score(&strong));
    }

    #[test]
    fn aggregation_deduplicates() {
        let a = num(3852);
        let b = num(3852);
        let c = num(4000);
        let total = aggregate_scores(vec![(&a, 1.0), (&b, 1.0), (&c, 1.0)]);
        assert_eq!(total, 2.0);
    }

    #[test]
    fn diverse_witnesses_beat_repetition() {
        // {5, 6, 9, 11} vs {5, 5, 5, 5} per the paper's example.
        let diverse: Vec<Value> = [5u64, 6, 9, 11].iter().map(|&v| num(v)).collect();
        let repeated: Vec<Value> = [5u64, 5, 5, 5].iter().map(|&v| num(v)).collect();
        let score_of = |vs: &[Value]| aggregate_scores(vs.iter().map(|v| (v, value_score(v))));
        assert!(score_of(&diverse) > score_of(&repeated));
    }
}
