#![warn(missing_docs)]

//! Typed configuration values for Concord.
//!
//! The Concord lexer (§3.2 of the paper) extracts data values from
//! configuration lines into native Rust data types so that the learning
//! engine can index and relate them efficiently (§3.5). This crate defines:
//!
//! - [`BigNum`]: arbitrary-precision unsigned integers for `[num]`/`[hex]`
//!   tokens (route targets, VNIs, and serial numbers overflow `u64` in the
//!   wild),
//! - [`IpAddress`] and [`IpNetwork`]: IPv4/IPv6 addresses and prefixes with
//!   containment tests,
//! - [`MacAddress`]: 48-bit MAC addresses with segment access,
//! - [`Value`]: the sum type carried in every extracted parameter,
//! - [`Transform`]: the data transformations enumerated during relational
//!   learning (`hex`, `str`, `segment`, `octet`, ...),
//! - informativeness scoring ([`score`]) used to filter coincidental
//!   relations.

mod bignum;
mod ip;
mod mac;
pub mod score;
mod transform;
mod value;

pub use bignum::BigNum;
pub use ip::{IpAddress, IpNetwork, IpParseError};
pub use mac::{MacAddress, MacParseError};
pub use transform::Transform;
pub use value::{Value, ValueType};
