//! Arbitrary-precision unsigned integers.
//!
//! Configuration numbers are usually small, but route distinguishers,
//! 128-bit serial numbers, and vendor counters can exceed `u64`. The paper
//! stores `[num]` and `[hex]` tokens as `BigInt` (Table 1); this module
//! provides the minimal arbitrary-precision arithmetic the miners need:
//! parsing (decimal and hexadecimal), rendering, ordering, and the
//! difference operation used by sequence contracts.

use std::cmp::Ordering;
use std::fmt;

use concord_json::{Error as JsonError, FromJson, Json, ToJson};

/// An arbitrary-precision unsigned integer.
///
/// Stored as base-1e9 limbs, least significant first, with no trailing zero
/// limbs (zero is the empty limb vector).
///
/// # Examples
///
/// ```
/// use concord_types::BigNum;
///
/// let n: BigNum = "184467440737095516150".parse().unwrap();
/// assert_eq!(n.to_string(), "184467440737095516150");
/// assert!(n > BigNum::from(110u64));
/// assert_eq!(BigNum::from(110u64).to_hex(), "6e");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct BigNum {
    limbs: Vec<u32>,
}

const BASE: u64 = 1_000_000_000;

impl BigNum {
    /// Returns zero.
    pub fn zero() -> Self {
        BigNum { limbs: Vec::new() }
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Parses a decimal string.
    ///
    /// Returns `None` when the string is empty or contains a non-digit.
    pub fn from_decimal(s: &str) -> Option<Self> {
        if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        let mut n = BigNum::zero();
        for b in s.bytes() {
            n.mul_small(10);
            n.add_small(u64::from(b - b'0'));
        }
        Some(n)
    }

    /// Parses a hexadecimal string (without a `0x` prefix).
    ///
    /// Returns `None` when the string is empty or contains a non-hex digit.
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.is_empty() || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let mut n = BigNum::zero();
        for b in s.bytes() {
            let digit = (b as char).to_digit(16).expect("hex digit");
            n.mul_small(16);
            n.add_small(u64::from(digit));
        }
        Some(n)
    }

    /// Renders the value as lowercase hexadecimal (no prefix).
    ///
    /// Zero renders as `"0"`.
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        // Repeated division by 16; numbers are small in practice so the
        // quadratic cost is irrelevant.
        let mut digits = Vec::new();
        let mut n = self.clone();
        while !n.is_zero() {
            let rem = n.div_small(16);
            digits.push(char::from_digit(rem as u32, 16).expect("base-16 digit"));
        }
        digits.iter().rev().collect()
    }

    /// Returns the value as `u64` if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        let mut acc: u64 = 0;
        for &limb in self.limbs.iter().rev() {
            acc = acc.checked_mul(BASE)?.checked_add(u64::from(limb))?;
        }
        Some(acc)
    }

    /// Returns the absolute difference `|self - other|`.
    pub fn abs_diff(&self, other: &BigNum) -> BigNum {
        match self.cmp(other) {
            Ordering::Less => other.sub(self),
            Ordering::Equal => BigNum::zero(),
            Ordering::Greater => self.sub(other),
        }
    }

    /// Returns `self + other`.
    pub fn add(&self, other: &BigNum) -> BigNum {
        let mut limbs = Vec::with_capacity(self.limbs.len().max(other.limbs.len()) + 1);
        let mut carry: u64 = 0;
        for i in 0..self.limbs.len().max(other.limbs.len()) {
            let a = u64::from(self.limbs.get(i).copied().unwrap_or(0));
            let b = u64::from(other.limbs.get(i).copied().unwrap_or(0));
            let sum = a + b + carry;
            limbs.push((sum % BASE) as u32);
            carry = sum / BASE;
        }
        if carry > 0 {
            limbs.push(carry as u32);
        }
        BigNum { limbs }.normalized()
    }

    /// Returns `self - other`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self`; use [`BigNum::abs_diff`] for a total
    /// operation.
    pub fn sub(&self, other: &BigNum) -> BigNum {
        assert!(other <= self, "BigNum::sub underflow");
        let mut limbs = Vec::with_capacity(self.limbs.len());
        let mut borrow: i64 = 0;
        for i in 0..self.limbs.len() {
            let a = i64::from(self.limbs[i]);
            let b = i64::from(other.limbs.get(i).copied().unwrap_or(0));
            let mut diff = a - b - borrow;
            if diff < 0 {
                diff += BASE as i64;
                borrow = 1;
            } else {
                borrow = 0;
            }
            limbs.push(diff as u32);
        }
        BigNum { limbs }.normalized()
    }

    /// Returns the number of decimal digits in the value (1 for zero).
    pub fn decimal_digits(&self) -> usize {
        self.to_string().len()
    }

    fn normalized(mut self) -> Self {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
        self
    }

    fn mul_small(&mut self, factor: u64) {
        let mut carry: u64 = 0;
        for limb in &mut self.limbs {
            let prod = u64::from(*limb) * factor + carry;
            *limb = (prod % BASE) as u32;
            carry = prod / BASE;
        }
        while carry > 0 {
            self.limbs.push((carry % BASE) as u32);
            carry /= BASE;
        }
    }

    fn add_small(&mut self, addend: u64) {
        let mut carry = addend;
        let mut i = 0;
        while carry > 0 {
            if i == self.limbs.len() {
                self.limbs.push(0);
            }
            let sum = u64::from(self.limbs[i]) + carry;
            self.limbs[i] = (sum % BASE) as u32;
            carry = sum / BASE;
            i += 1;
        }
    }

    /// Divides in place by a small divisor and returns the remainder.
    fn div_small(&mut self, divisor: u64) -> u64 {
        let mut rem: u64 = 0;
        for limb in self.limbs.iter_mut().rev() {
            let cur = rem * BASE + u64::from(*limb);
            *limb = (cur / divisor) as u32;
            rem = cur % divisor;
        }
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
        rem
    }
}

impl From<u64> for BigNum {
    fn from(v: u64) -> Self {
        let mut n = BigNum::zero();
        n.add_small(v);
        n
    }
}

impl From<u32> for BigNum {
    fn from(v: u32) -> Self {
        BigNum::from(u64::from(v))
    }
}

impl std::str::FromStr for BigNum {
    type Err = BigNumParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        BigNum::from_decimal(s).ok_or_else(|| BigNumParseError {
            input: s.to_string(),
        })
    }
}

/// Error parsing a [`BigNum`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BigNumParseError {
    /// The rejected input.
    pub input: String,
}

impl fmt::Display for BigNumParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid number {:?}", self.input)
    }
}

impl std::error::Error for BigNumParseError {}

impl Ord for BigNum {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        other => return other,
                    }
                }
                Ordering::Equal
            }
            other => other,
        }
    }
}

impl PartialOrd for BigNum {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for BigNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.limbs.is_empty() {
            return f.write_str("0");
        }
        let mut iter = self.limbs.iter().rev();
        write!(f, "{}", iter.next().expect("non-empty"))?;
        for limb in iter {
            write!(f, "{limb:09}")?;
        }
        Ok(())
    }
}

impl ToJson for BigNum {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl FromJson for BigNum {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let s = String::from_json(value)?;
        BigNum::from_decimal(&s).ok_or_else(|| JsonError::custom(format!("invalid BigNum {s:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        for s in [
            "0",
            "1",
            "42",
            "999999999",
            "1000000000",
            "123456789012345678901234567890",
        ] {
            let n = BigNum::from_decimal(s).unwrap();
            assert_eq!(n.to_string(), s);
        }
    }

    #[test]
    fn rejects_bad_decimal() {
        assert!(BigNum::from_decimal("").is_none());
        assert!(BigNum::from_decimal("12a").is_none());
        assert!(BigNum::from_decimal("-5").is_none());
    }

    #[test]
    fn leading_zeros_normalize() {
        assert_eq!(BigNum::from_decimal("007").unwrap(), BigNum::from(7u64));
    }

    #[test]
    fn hex_roundtrip() {
        assert_eq!(BigNum::from(110u64).to_hex(), "6e");
        assert_eq!(BigNum::from_hex("6e").unwrap(), BigNum::from(110u64));
        assert_eq!(BigNum::from_hex("FF").unwrap(), BigNum::from(255u64));
        assert_eq!(BigNum::zero().to_hex(), "0");
        assert!(BigNum::from_hex("xyz").is_none());
    }

    #[test]
    fn ordering() {
        let small = BigNum::from(5u64);
        let large = BigNum::from_decimal("10000000000000000000000").unwrap();
        assert!(small < large);
        assert!(large > small);
        assert_eq!(small.cmp(&BigNum::from(5u64)), Ordering::Equal);
        assert!(BigNum::from(123u64) < BigNum::from(124u64));
    }

    #[test]
    fn add_sub() {
        let a = BigNum::from_decimal("999999999999999999").unwrap();
        let b = BigNum::from(1u64);
        assert_eq!(a.add(&b).to_string(), "1000000000000000000");
        assert_eq!(a.add(&b).sub(&b), a);
        assert_eq!(a.sub(&a), BigNum::zero());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = BigNum::from(1u64).sub(&BigNum::from(2u64));
    }

    #[test]
    fn abs_diff() {
        let a = BigNum::from(10u64);
        let b = BigNum::from(30u64);
        assert_eq!(a.abs_diff(&b), BigNum::from(20u64));
        assert_eq!(b.abs_diff(&a), BigNum::from(20u64));
        assert_eq!(a.abs_diff(&a), BigNum::zero());
    }

    #[test]
    fn to_u64_bounds() {
        assert_eq!(BigNum::from(u64::MAX).to_u64(), Some(u64::MAX));
        let big = BigNum::from(u64::MAX).add(&BigNum::from(1u64));
        assert_eq!(big.to_u64(), None);
    }

    #[test]
    fn u64_roundtrip() {
        for v in [0u64, 1, 9, 10, 999_999_999, 1_000_000_000, u64::MAX] {
            assert_eq!(BigNum::from(v).to_u64(), Some(v));
            assert_eq!(BigNum::from(v).to_string(), v.to_string());
        }
    }

    #[test]
    fn decimal_digits() {
        assert_eq!(BigNum::zero().decimal_digits(), 1);
        assert_eq!(BigNum::from(9u64).decimal_digits(), 1);
        assert_eq!(BigNum::from(10251u64).decimal_digits(), 5);
    }

    #[test]
    fn serde_roundtrip() {
        let n = BigNum::from_decimal("123456789012345678901234567890").unwrap();
        let json = concord_json::to_string(&n).unwrap();
        assert_eq!(json, "\"123456789012345678901234567890\"");
        let back: BigNum = concord_json::from_str(&json).unwrap();
        assert_eq!(back, n);
    }

    #[test]
    fn from_str_trait() {
        let n: BigNum = "42".parse().unwrap();
        assert_eq!(n, BigNum::from(42u64));
        assert!("4x".parse::<BigNum>().is_err());
    }
}
