//! The [`Value`] sum type carried by every extracted parameter, and the
//! [`ValueType`] vocabulary of lexer token types (Table 1 of the paper).

use std::fmt;

use concord_json::{Error as JsonError, FromJson, Json, ToJson};

use crate::bignum::BigNum;
use crate::ip::{IpAddress, IpNetwork};
use crate::mac::MacAddress;

/// The type of a lexer token / extracted parameter.
///
/// The built-in types mirror Table 1 of the paper; [`ValueType::Custom`]
/// covers user-supplied token definitions such as `[iface]` or `[path]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ValueType {
    /// A decimal number, e.g. `65015`.
    Num,
    /// A hexadecimal number, e.g. `0x1f`.
    Hex,
    /// A boolean, `true` or `false`.
    Bool,
    /// An IPv4 address, e.g. `10.14.14.34`.
    Ip4,
    /// An IPv6 address, e.g. `fe80::1`.
    Ip6,
    /// An IPv4 prefix, e.g. `10.14.14.0/24`.
    Pfx4,
    /// An IPv6 prefix, e.g. `2001:db8::/32`.
    Pfx6,
    /// A MAC address, e.g. `00:00:0c:d3:00:6e`.
    Mac,
    /// A user-defined token type, identified by its name.
    Custom(String),
}

impl ValueType {
    /// Returns the name used inside pattern holes, e.g. `"ip4"` for
    /// `[a:ip4]`.
    pub fn name(&self) -> &str {
        match self {
            ValueType::Num => "num",
            ValueType::Hex => "hex",
            ValueType::Bool => "bool",
            ValueType::Ip4 => "ip4",
            ValueType::Ip6 => "ip6",
            ValueType::Pfx4 => "pfx4",
            ValueType::Pfx6 => "pfx6",
            ValueType::Mac => "mac",
            ValueType::Custom(name) => name,
        }
    }

    /// Looks a type up by its pattern-hole name.
    ///
    /// Unknown names map to [`ValueType::Custom`].
    pub fn from_name(name: &str) -> ValueType {
        match name {
            "num" => ValueType::Num,
            "hex" => ValueType::Hex,
            "bool" => ValueType::Bool,
            "ip4" => ValueType::Ip4,
            "ip6" => ValueType::Ip6,
            "pfx4" => ValueType::Pfx4,
            "pfx6" => ValueType::Pfx6,
            "mac" => ValueType::Mac,
            other => ValueType::Custom(other.to_string()),
        }
    }
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A typed data value extracted from a configuration line.
///
/// Values are hashable and ordered so the relation indexes (§3.5) can use
/// them directly as keys.
///
/// # Examples
///
/// ```
/// use concord_types::Value;
///
/// let v = Value::parse_as(&concord_types::ValueType::Ip4, "10.0.0.1").unwrap();
/// assert_eq!(v.render(), "10.0.0.1");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// A number (from `[num]` or `[hex]` tokens).
    Num(BigNum),
    /// A boolean.
    Bool(bool),
    /// An IP address (v4 or v6).
    Ip(IpAddress),
    /// An IP network / prefix (v4 or v6).
    Net(IpNetwork),
    /// A MAC address.
    Mac(MacAddress),
    /// An uninterpreted string (custom tokens and derived values).
    Str(String),
}

impl Value {
    /// Parses `text` according to the token type `ty`.
    ///
    /// Returns `None` when the text does not inhabit the type; the lexer
    /// uses this as the final validation step after the regex match (e.g.
    /// `999.1.1.1` matches the `[ip4]` regex but fails semantic parsing).
    pub fn parse_as(ty: &ValueType, text: &str) -> Option<Value> {
        match ty {
            ValueType::Num => BigNum::from_decimal(text).map(Value::Num),
            ValueType::Hex => {
                let digits = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X"));
                match digits {
                    Some(d) => BigNum::from_hex(d).map(Value::Num),
                    // A bare `0`-prefixed number per Table 1.
                    None => BigNum::from_decimal(text).map(Value::Num),
                }
            }
            ValueType::Bool => match text {
                "true" => Some(Value::Bool(true)),
                "false" => Some(Value::Bool(false)),
                _ => None,
            },
            ValueType::Ip4 => text
                .parse::<IpAddress>()
                .ok()
                .filter(IpAddress::is_v4)
                .map(Value::Ip),
            ValueType::Ip6 => text
                .parse::<IpAddress>()
                .ok()
                .filter(|a| !a.is_v4())
                .map(Value::Ip),
            ValueType::Pfx4 => text
                .parse::<IpNetwork>()
                .ok()
                .filter(IpNetwork::is_v4)
                .map(Value::Net),
            ValueType::Pfx6 => text
                .parse::<IpNetwork>()
                .ok()
                .filter(|n| !n.is_v4())
                .map(Value::Net),
            ValueType::Mac => text.parse::<MacAddress>().ok().map(Value::Mac),
            ValueType::Custom(_) => Some(Value::Str(text.to_string())),
        }
    }

    /// Renders the value as text (the form used by affix relations).
    pub fn render(&self) -> String {
        match self {
            Value::Str(s) => s.clone(),
            _ => {
                let mut out = String::new();
                self.render_into(&mut out);
                out
            }
        }
    }

    /// Renders the value into `out`, avoiding the intermediate
    /// allocation of [`Value::render`] on hot paths that fill a reused
    /// buffer.
    pub fn render_into(&self, out: &mut String) {
        use fmt::Write;
        match self {
            Value::Str(s) => out.push_str(s),
            Value::Num(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Ip(a) => {
                let _ = write!(out, "{a}");
            }
            Value::Net(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Mac(m) => {
                let _ = write!(out, "{m}");
            }
        }
    }

    /// Returns the contained number, if the value is numeric.
    pub fn as_num(&self) -> Option<&BigNum> {
        match self {
            Value::Num(n) => Some(n),
            _ => None,
        }
    }

    /// Returns the contained IP address, if any.
    pub fn as_ip(&self) -> Option<IpAddress> {
        match self {
            Value::Ip(a) => Some(*a),
            _ => None,
        }
    }

    /// Returns the contained network, if any.
    pub fn as_net(&self) -> Option<IpNetwork> {
        match self {
            Value::Net(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the contained MAC address, if any.
    pub fn as_mac(&self) -> Option<MacAddress> {
        match self {
            Value::Mac(m) => Some(*m),
            _ => None,
        }
    }

    /// Returns the contained string, if the value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => f.write_str(s),
            other => {
                let mut out = String::new();
                other.render_into(&mut out);
                f.write_str(&out)
            }
        }
    }
}

impl ToJson for ValueType {
    fn to_json(&self) -> Json {
        match self {
            ValueType::Custom(name) => Json::tagged("Custom", Json::Str(name.clone())),
            builtin => Json::Str(format!("{builtin:?}")),
        }
    }
}

impl FromJson for ValueType {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Str(s) => match s.as_str() {
                "Num" => Ok(ValueType::Num),
                "Hex" => Ok(ValueType::Hex),
                "Bool" => Ok(ValueType::Bool),
                "Ip4" => Ok(ValueType::Ip4),
                "Ip6" => Ok(ValueType::Ip6),
                "Pfx4" => Ok(ValueType::Pfx4),
                "Pfx6" => Ok(ValueType::Pfx6),
                "Mac" => Ok(ValueType::Mac),
                other => Err(JsonError::custom(format!("unknown ValueType {other:?}"))),
            },
            tagged => match tagged.get("Custom") {
                Some(inner) => String::from_json(inner).map(ValueType::Custom),
                None => Err(JsonError::custom(format!(
                    "expected ValueType, got {value}"
                ))),
            },
        }
    }
}

impl ToJson for Value {
    fn to_json(&self) -> Json {
        match self {
            Value::Num(n) => Json::tagged("Num", n.to_json()),
            Value::Bool(b) => Json::tagged("Bool", Json::Bool(*b)),
            Value::Ip(a) => Json::tagged("Ip", a.to_json()),
            Value::Net(n) => Json::tagged("Net", n.to_json()),
            Value::Mac(m) => Json::tagged("Mac", m.to_json()),
            Value::Str(s) => Json::tagged("Str", Json::Str(s.clone())),
        }
    }
}

impl FromJson for Value {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let [(tag, inner)] = value
            .as_object()
            .ok_or_else(|| JsonError::custom(format!("expected Value object, got {value}")))?
        else {
            return Err(JsonError::custom(format!(
                "expected one-key Value object, got {value}"
            )));
        };
        match tag.as_str() {
            "Num" => BigNum::from_json(inner).map(Value::Num),
            "Bool" => bool::from_json(inner).map(Value::Bool),
            "Ip" => IpAddress::from_json(inner).map(Value::Ip),
            "Net" => IpNetwork::from_json(inner).map(Value::Net),
            "Mac" => MacAddress::from_json(inner).map(Value::Mac),
            "Str" => String::from_json(inner).map(Value::Str),
            other => Err(JsonError::custom(format!(
                "unknown Value variant {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_names_roundtrip() {
        for ty in [
            ValueType::Num,
            ValueType::Hex,
            ValueType::Bool,
            ValueType::Ip4,
            ValueType::Ip6,
            ValueType::Pfx4,
            ValueType::Pfx6,
            ValueType::Mac,
            ValueType::Custom("iface".to_string()),
        ] {
            assert_eq!(ValueType::from_name(ty.name()), ty);
        }
    }

    #[test]
    fn parse_num() {
        assert_eq!(
            Value::parse_as(&ValueType::Num, "65015"),
            Some(Value::Num(BigNum::from(65015u64)))
        );
        assert_eq!(Value::parse_as(&ValueType::Num, "65a"), None);
    }

    #[test]
    fn parse_hex() {
        assert_eq!(
            Value::parse_as(&ValueType::Hex, "0x1f"),
            Some(Value::Num(BigNum::from(31u64)))
        );
        assert_eq!(
            Value::parse_as(&ValueType::Hex, "017"),
            Some(Value::Num(BigNum::from(17u64)))
        );
    }

    #[test]
    fn parse_bool() {
        assert_eq!(
            Value::parse_as(&ValueType::Bool, "true"),
            Some(Value::Bool(true))
        );
        assert_eq!(Value::parse_as(&ValueType::Bool, "False"), None);
    }

    #[test]
    fn parse_ip_families_strict() {
        assert!(Value::parse_as(&ValueType::Ip4, "10.0.0.1").is_some());
        assert!(Value::parse_as(&ValueType::Ip4, "fe80::1").is_none());
        assert!(Value::parse_as(&ValueType::Ip6, "fe80::1").is_some());
        assert!(Value::parse_as(&ValueType::Ip6, "10.0.0.1").is_none());
        // Regex-plausible but semantically invalid.
        assert!(Value::parse_as(&ValueType::Ip4, "999.1.1.1").is_none());
    }

    #[test]
    fn parse_prefixes() {
        assert!(Value::parse_as(&ValueType::Pfx4, "10.0.0.0/8").is_some());
        assert!(Value::parse_as(&ValueType::Pfx4, "10.0.0.0/33").is_none());
        assert!(Value::parse_as(&ValueType::Pfx6, "2001:db8::/32").is_some());
    }

    #[test]
    fn parse_custom_is_string() {
        let ty = ValueType::Custom("iface".to_string());
        assert_eq!(
            Value::parse_as(&ty, "Et1"),
            Some(Value::Str("Et1".to_string()))
        );
    }

    #[test]
    fn render_forms() {
        assert_eq!(
            Value::parse_as(&ValueType::Mac, "0:1:2:3:4:5")
                .unwrap()
                .render(),
            "00:01:02:03:04:05"
        );
        assert_eq!(
            Value::parse_as(&ValueType::Num, "42").unwrap().render(),
            "42"
        );
    }

    #[test]
    fn accessors() {
        let v = Value::parse_as(&ValueType::Pfx4, "10.0.0.0/8").unwrap();
        assert!(v.as_net().is_some());
        assert!(v.as_ip().is_none());
        assert!(v.as_num().is_none());
        let v = Value::Str("x".to_string());
        assert_eq!(v.as_str(), Some("x"));
    }

    #[test]
    fn serde_roundtrip() {
        let values = vec![
            Value::Num(BigNum::from(10251u64)),
            Value::Bool(false),
            Value::parse_as(&ValueType::Ip4, "10.0.0.1").unwrap(),
            Value::parse_as(&ValueType::Pfx6, "2001:db8::/32").unwrap(),
            Value::parse_as(&ValueType::Mac, "00:00:0c:d3:00:6e").unwrap(),
            Value::Str("loopback".to_string()),
        ];
        let json = concord_json::to_string(&values).unwrap();
        let back: Vec<Value> = concord_json::from_str(&json).unwrap();
        assert_eq!(back, values);
    }
}
