//! Data transformations enumerated during relational learning (§3.5).
//!
//! A relational contract may relate *transformed* values: Figure 1's
//! contract 1 is `equals(hex(l1.a), segment(l2.b, 6))`. Before indexing,
//! the learner applies every applicable transformation to every parameter
//! value, so that transformed relations are found by the same lookup
//! machinery as identity relations.

use std::fmt;

use concord_json::{Error as JsonError, FromJson, Json, ToJson};

use crate::value::Value;

/// A transformation from one value to another.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Transform {
    /// The identity function.
    Id,
    /// Renders a number as lowercase hexadecimal, e.g. `hex(110)` = `"6e"`.
    Hex,
    /// Renders any value as its string form, e.g. `str(10251)` = `"10251"`.
    Str,
    /// Extracts the `i`-th (1-based) segment of a MAC address as two hex
    /// digits, e.g. `segment(00:00:0c:d3:00:6e, 6)` = `"6e"`.
    Segment(u8),
    /// Extracts the `i`-th (0-based) octet of an IPv4 address as a number,
    /// e.g. `octet(10.14.14.117, 3)` = `117`.
    Octet(u8),
    /// Extracts the address part of a prefix, e.g.
    /// `addr(10.0.0.0/8)` = `10.0.0.0`.
    PrefixAddr,
    /// Extracts the length of a prefix as a number, e.g.
    /// `len(10.0.0.0/8)` = `8`.
    PrefixLen,
    /// Lowercases a string.
    Lower,
}

impl Transform {
    /// Applies the transformation, returning `None` when the input value is
    /// outside the transformation's domain.
    ///
    /// # Examples
    ///
    /// ```
    /// use concord_types::{BigNum, Transform, Value};
    ///
    /// let hex = Transform::Hex.apply(&Value::Num(BigNum::from(110u64)));
    /// assert_eq!(hex, Some(Value::Str("6e".to_string())));
    /// ```
    pub fn apply(&self, value: &Value) -> Option<Value> {
        match self {
            Transform::Id => Some(value.clone()),
            Transform::Hex => value.as_num().map(|n| Value::Str(n.to_hex())),
            Transform::Str => match value {
                // `str` on a string is the identity and would only duplicate
                // the `Id` node in the relation graph.
                Value::Str(_) => None,
                other => Some(Value::Str(other.render())),
            },
            Transform::Segment(i) => value.as_mac().and_then(|m| m.segment(*i)).map(Value::Str),
            Transform::Octet(i) => value
                .as_ip()
                .and_then(|a| a.octet(*i))
                .map(|o| Value::Num(u64::from(o).into())),
            Transform::PrefixAddr => value.as_net().map(|n| Value::Ip(n.addr())),
            Transform::PrefixLen => value
                .as_net()
                .map(|n| Value::Num(u64::from(n.prefix_len()).into())),
            Transform::Lower => value.as_str().map(|s| Value::Str(s.to_lowercase())),
        }
    }

    /// Returns the transformations worth trying for a value, including
    /// [`Transform::Id`] first.
    ///
    /// This is the enumeration step of §3.5: "Concord has a set of data
    /// transformations for each parameter type and enumerates all such
    /// transformations prior to search". The set is deliberately small.
    pub fn enumerate_for(value: &Value) -> Vec<Transform> {
        let mut out = Vec::new();
        Transform::enumerate_into(value, &mut out);
        out
    }

    /// [`Transform::enumerate_for`] into a caller-owned buffer (cleared
    /// first), so per-line loops reuse one allocation.
    pub fn enumerate_into(value: &Value, out: &mut Vec<Transform>) {
        out.clear();
        out.push(Transform::Id);
        match value {
            Value::Num(_) => {
                out.push(Transform::Hex);
                out.push(Transform::Str);
            }
            Value::Ip(a) => {
                out.push(Transform::Str);
                if a.is_v4() {
                    // The last octet commonly encodes device or unit ids.
                    out.push(Transform::Octet(3));
                }
            }
            Value::Net(_) => {
                out.push(Transform::PrefixAddr);
                out.push(Transform::PrefixLen);
                out.push(Transform::Str);
            }
            Value::Mac(_) => {
                out.push(Transform::Segment(6));
                out.push(Transform::Segment(5));
                out.push(Transform::Str);
            }
            Value::Str(s) => {
                if s.chars().any(|c| c.is_ascii_uppercase()) {
                    out.push(Transform::Lower);
                }
            }
            Value::Bool(_) => {}
        }
    }

    /// Returns the informativeness discount of this transformation in
    /// `(0, 1]`.
    ///
    /// Lossy extractions (a single MAC segment, one IP octet, a prefix
    /// length) produce values with far fewer possible outcomes than their
    /// source, so a relation over them is weaker evidence of intent than a
    /// relation over the full value. Information-preserving renderings
    /// (`id`, `str`, `hex`, `addr`, `lower`) carry full weight.
    pub fn score_discount(&self) -> f64 {
        match self {
            Transform::Id
            | Transform::Hex
            | Transform::Str
            | Transform::PrefixAddr
            | Transform::Lower => 1.0,
            Transform::Segment(_) => 0.8,
            Transform::Octet(_) => 0.5,
            Transform::PrefixLen => 0.4,
        }
    }

    /// Renders an application of this transform to the named variable, e.g.
    /// `hex(l1.a)`.
    pub fn render_call(&self, var: &str) -> String {
        match self {
            Transform::Id => var.to_string(),
            Transform::Hex => format!("hex({var})"),
            Transform::Str => format!("str({var})"),
            Transform::Segment(i) => format!("segment({var}, {i})"),
            Transform::Octet(i) => format!("octet({var}, {i})"),
            Transform::PrefixAddr => format!("addr({var})"),
            Transform::PrefixLen => format!("len({var})"),
            Transform::Lower => format!("lower({var})"),
        }
    }
}

impl fmt::Display for Transform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Transform::Id => f.write_str("id"),
            Transform::Hex => f.write_str("hex"),
            Transform::Str => f.write_str("str"),
            Transform::Segment(i) => write!(f, "segment(_, {i})"),
            Transform::Octet(i) => write!(f, "octet(_, {i})"),
            Transform::PrefixAddr => f.write_str("addr"),
            Transform::PrefixLen => f.write_str("len"),
            Transform::Lower => f.write_str("lower"),
        }
    }
}

impl ToJson for Transform {
    fn to_json(&self) -> Json {
        match self {
            Transform::Segment(i) => Json::tagged("Segment", i.to_json()),
            Transform::Octet(i) => Json::tagged("Octet", i.to_json()),
            unit => Json::Str(format!("{unit:?}")),
        }
    }
}

impl FromJson for Transform {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Str(s) => match s.as_str() {
                "Id" => Ok(Transform::Id),
                "Hex" => Ok(Transform::Hex),
                "Str" => Ok(Transform::Str),
                "PrefixAddr" => Ok(Transform::PrefixAddr),
                "PrefixLen" => Ok(Transform::PrefixLen),
                "Lower" => Ok(Transform::Lower),
                other => Err(JsonError::custom(format!("unknown Transform {other:?}"))),
            },
            tagged => {
                if let Some(inner) = tagged.get("Segment") {
                    u8::from_json(inner).map(Transform::Segment)
                } else if let Some(inner) = tagged.get("Octet") {
                    u8::from_json(inner).map(Transform::Octet)
                } else {
                    Err(JsonError::custom(format!(
                        "expected Transform, got {value}"
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bignum::BigNum;
    use crate::value::ValueType;

    fn val(ty: ValueType, s: &str) -> Value {
        Value::parse_as(&ty, s).unwrap()
    }

    #[test]
    fn identity() {
        let v = Value::Num(BigNum::from(7u64));
        assert_eq!(Transform::Id.apply(&v), Some(v));
    }

    #[test]
    fn hex_of_port_channel_matches_mac_segment() {
        // The Figure 1 contract 1 example: 110 decimal == 6e hex.
        let n = Value::Num(BigNum::from(110u64));
        let mac = val(ValueType::Mac, "00:00:0c:d3:00:6e");
        assert_eq!(Transform::Hex.apply(&n), Transform::Segment(6).apply(&mac));
    }

    #[test]
    fn str_of_rd_suffix_matches_vlan() {
        // Figure 1 contract 3: str(10251) ends with str(251).
        let rd = Transform::Str
            .apply(&Value::Num(BigNum::from(10251u64)))
            .unwrap();
        let vlan = Transform::Str
            .apply(&Value::Num(BigNum::from(251u64)))
            .unwrap();
        assert!(rd.render().ends_with(&vlan.render()));
    }

    #[test]
    fn str_on_string_is_out_of_domain() {
        assert_eq!(Transform::Str.apply(&Value::Str("x".to_string())), None);
    }

    #[test]
    fn octet_extraction() {
        let ip = val(ValueType::Ip4, "10.14.14.117");
        assert_eq!(
            Transform::Octet(3).apply(&ip),
            Some(Value::Num(BigNum::from(117u64)))
        );
        assert_eq!(Transform::Octet(3).apply(&val(ValueType::Ip6, "::1")), None);
    }

    #[test]
    fn prefix_parts() {
        let net = val(ValueType::Pfx4, "10.0.0.0/8");
        assert_eq!(
            Transform::PrefixAddr.apply(&net).unwrap().render(),
            "10.0.0.0"
        );
        assert_eq!(
            Transform::PrefixLen.apply(&net),
            Some(Value::Num(BigNum::from(8u64)))
        );
    }

    #[test]
    fn lower() {
        assert_eq!(
            Transform::Lower.apply(&Value::Str("LoopBack0".to_string())),
            Some(Value::Str("loopback0".to_string()))
        );
        assert_eq!(Transform::Lower.apply(&Value::Bool(true)), None);
    }

    #[test]
    fn out_of_domain_returns_none() {
        assert_eq!(Transform::Hex.apply(&Value::Bool(true)), None);
        assert_eq!(
            Transform::Segment(6).apply(&Value::Num(BigNum::from(1u64))),
            None
        );
        assert_eq!(
            Transform::PrefixLen.apply(&Value::Num(BigNum::from(1u64))),
            None
        );
    }

    #[test]
    fn enumerate_starts_with_id() {
        for v in [
            Value::Num(BigNum::from(5u64)),
            val(ValueType::Ip4, "1.2.3.4"),
            val(ValueType::Mac, "0:0:0:0:0:1"),
            Value::Bool(true),
            Value::Str("abc".to_string()),
        ] {
            let ts = Transform::enumerate_for(&v);
            assert_eq!(ts[0], Transform::Id);
            // Every enumerated transform must apply to the value.
            for t in &ts {
                assert!(t.apply(&v).is_some(), "{t} failed on {v}");
            }
        }
    }

    #[test]
    fn render_call_forms() {
        assert_eq!(Transform::Id.render_call("l1.a"), "l1.a");
        assert_eq!(Transform::Hex.render_call("l1.a"), "hex(l1.a)");
        assert_eq!(
            Transform::Segment(6).render_call("l2.b"),
            "segment(l2.b, 6)"
        );
        assert_eq!(Transform::Octet(3).render_call("l3.b"), "octet(l3.b, 3)");
    }

    #[test]
    fn serde_roundtrip() {
        let ts = vec![Transform::Id, Transform::Segment(6), Transform::Octet(3)];
        let json = concord_json::to_string(&ts).unwrap();
        let back: Vec<Transform> = concord_json::from_str(&json).unwrap();
        assert_eq!(back, ts);
    }
}
