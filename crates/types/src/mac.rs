//! MAC addresses.
//!
//! Contract 1 of Figure 1 relates a port-channel number to the last segment
//! of an EVPN route-target MAC address, so [`MacAddress`] exposes per-segment
//! access in addition to parsing and display.

use std::fmt;

use concord_json::{Error as JsonError, FromJson, Json, ToJson};

/// A 48-bit MAC address (six colon-separated hex segments).
///
/// # Examples
///
/// ```
/// use concord_types::MacAddress;
///
/// let mac: MacAddress = "00:00:0c:d3:00:6e".parse().unwrap();
/// assert_eq!(mac.segment(6), Some("6e".to_string()));
/// assert_eq!(mac.to_string(), "00:00:0c:d3:00:6e");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddress {
    octets: [u8; 6],
}

impl MacAddress {
    /// Creates a MAC address from its six octets.
    pub fn new(octets: [u8; 6]) -> Self {
        MacAddress { octets }
    }

    /// Returns the raw octets.
    pub fn octets(&self) -> [u8; 6] {
        self.octets
    }

    /// Returns the `i`-th segment (1-based, as in the paper's
    /// `segment(l2.b, 6)`) rendered as two lowercase hex digits.
    ///
    /// Returns `None` when `i` is 0 or greater than 6.
    pub fn segment(&self, i: u8) -> Option<String> {
        if i == 0 || i > 6 {
            return None;
        }
        Some(format!("{:02x}", self.octets[usize::from(i - 1)]))
    }
}

impl std::str::FromStr for MacAddress {
    type Err = MacParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || MacParseError {
            input: s.to_string(),
        };
        let mut octets = [0u8; 6];
        let mut parts = s.split(':');
        for octet in &mut octets {
            let part = parts.next().ok_or_else(err)?;
            if part.is_empty() || part.len() > 2 {
                return Err(err());
            }
            *octet = u8::from_str_radix(part, 16).map_err(|_| err())?;
        }
        if parts.next().is_some() {
            return Err(err());
        }
        Ok(MacAddress { octets })
    }
}

impl fmt::Display for MacAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = &self.octets;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            o[0], o[1], o[2], o[3], o[4], o[5]
        )
    }
}

/// Error parsing a [`MacAddress`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MacParseError {
    /// The rejected input.
    pub input: String,
}

impl fmt::Display for MacParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid MAC address {:?}", self.input)
    }
}

impl std::error::Error for MacParseError {}

impl ToJson for MacAddress {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl FromJson for MacAddress {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        String::from_json(value)?.parse().map_err(JsonError::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let mac: MacAddress = "00:00:0c:d3:00:6e".parse().unwrap();
        assert_eq!(mac.to_string(), "00:00:0c:d3:00:6e");
        assert_eq!(mac.octets(), [0x00, 0x00, 0x0c, 0xd3, 0x00, 0x6e]);
    }

    #[test]
    fn single_digit_segments() {
        let mac: MacAddress = "0:1:2:a:b:c".parse().unwrap();
        assert_eq!(mac.to_string(), "00:01:02:0a:0b:0c");
    }

    #[test]
    fn uppercase_accepted() {
        let mac: MacAddress = "AA:BB:CC:DD:EE:FF".parse().unwrap();
        assert_eq!(mac.to_string(), "aa:bb:cc:dd:ee:ff");
    }

    #[test]
    fn rejects_malformed() {
        for s in [
            "",
            "00:00:0c:d3:00",
            "00:00:0c:d3:00:6e:ff",
            "00:00:0c:d3:00:zz",
            "000:00:0c:d3:00:6e",
            "00-00-0c-d3-00-6e",
        ] {
            assert!(s.parse::<MacAddress>().is_err(), "{s} should fail");
        }
    }

    #[test]
    fn segments_one_based() {
        let mac: MacAddress = "01:02:03:04:05:6e".parse().unwrap();
        assert_eq!(mac.segment(1), Some("01".to_string()));
        assert_eq!(mac.segment(6), Some("6e".to_string()));
        assert_eq!(mac.segment(0), None);
        assert_eq!(mac.segment(7), None);
    }

    #[test]
    fn serde_roundtrip() {
        let mac: MacAddress = "00:00:0c:d3:00:6e".parse().unwrap();
        let json = concord_json::to_string(&mac).unwrap();
        assert_eq!(concord_json::from_str::<MacAddress>(&json).unwrap(), mac);
    }
}
