//! Property-based tests for Concord's value types.

// NOTE: the hermetic build has no `proptest`; enable the `proptests`
// feature after vendoring it to run this suite.
#![cfg(feature = "proptests")]

use concord_types::{BigNum, IpAddress, IpNetwork, MacAddress, Transform, Value, ValueType};
use proptest::prelude::*;

proptest! {
    /// Decimal parse/display is a bijection on canonical strings.
    #[test]
    fn bignum_decimal_roundtrip(v in any::<u128>()) {
        let s = v.to_string();
        let n = BigNum::from_decimal(&s).unwrap();
        prop_assert_eq!(n.to_string(), s);
    }

    /// Hex rendering agrees with the standard library for `u64`.
    #[test]
    fn bignum_hex_agrees_with_std(v in any::<u64>()) {
        prop_assert_eq!(BigNum::from(v).to_hex(), format!("{v:x}"));
    }

    /// `add` then `sub` is the identity.
    #[test]
    fn bignum_add_sub_inverse(a in any::<u64>(), b in any::<u64>()) {
        let (a, b) = (BigNum::from(a), BigNum::from(b));
        prop_assert_eq!(a.add(&b).sub(&b), a);
    }

    /// `abs_diff` is symmetric and zero iff equal.
    #[test]
    fn bignum_abs_diff_symmetric(a in any::<u64>(), b in any::<u64>()) {
        let (x, y) = (BigNum::from(a), BigNum::from(b));
        prop_assert_eq!(x.abs_diff(&y), y.abs_diff(&x));
        prop_assert_eq!(x.abs_diff(&y).is_zero(), a == b);
    }

    /// Ordering on BigNum agrees with ordering on u128.
    #[test]
    fn bignum_order_agrees(a in any::<u64>(), b in any::<u64>()) {
        let (x, y) = (BigNum::from(a), BigNum::from(b));
        prop_assert_eq!(x.cmp(&y), a.cmp(&b));
    }

    /// IPv4 parse/display roundtrip.
    #[test]
    fn ipv4_roundtrip(bits in any::<u32>()) {
        let addr = IpAddress::V4(bits);
        let back: IpAddress = addr.to_string().parse().unwrap();
        prop_assert_eq!(back, addr);
    }

    /// IPv6 parse/display roundtrip (display is canonical, reparse equal).
    #[test]
    fn ipv6_roundtrip(bits in any::<u128>()) {
        let addr = IpAddress::V6(bits);
        let back: IpAddress = addr.to_string().parse().unwrap();
        prop_assert_eq!(back, addr);
    }

    /// A network always contains its own (canonicalized) address, and a
    /// /32 contains exactly one address.
    #[test]
    fn network_contains_self(bits in any::<u32>(), len in 0u8..=32) {
        let net = IpNetwork::new(IpAddress::V4(bits), len).unwrap();
        prop_assert!(net.contains(net.addr()));
        prop_assert!(net.contains(IpAddress::V4(bits)));
    }

    /// Containment is transitive through subnet relations.
    #[test]
    fn network_subnet_transitive(bits in any::<u32>(), l1 in 0u8..=30, extra in 1u8..=2) {
        let outer = IpNetwork::new(IpAddress::V4(bits), l1).unwrap();
        let inner = IpNetwork::new(IpAddress::V4(bits), l1 + extra).unwrap();
        prop_assert!(outer.contains_net(&inner));
    }

    /// MAC parse/display roundtrip.
    #[test]
    fn mac_roundtrip(octets in any::<[u8; 6]>()) {
        let mac = MacAddress::new(octets);
        let back: MacAddress = mac.to_string().parse().unwrap();
        prop_assert_eq!(back, mac);
    }

    /// `segment(i)` equals the hex rendering of the corresponding octet.
    #[test]
    fn mac_segments_match_octets(octets in any::<[u8; 6]>(), i in 1u8..=6) {
        let mac = MacAddress::new(octets);
        prop_assert_eq!(
            mac.segment(i).unwrap(),
            format!("{:02x}", octets[usize::from(i - 1)])
        );
    }

    /// Every enumerated transformation applies to the value it was
    /// enumerated for.
    #[test]
    fn enumerated_transforms_apply(v in any::<u64>(), bits in any::<u32>(), len in 0u8..=32) {
        let values = vec![
            Value::Num(BigNum::from(v)),
            Value::Ip(IpAddress::V4(bits)),
            Value::Net(IpNetwork::new(IpAddress::V4(bits), len).unwrap()),
        ];
        for value in &values {
            for t in Transform::enumerate_for(value) {
                prop_assert!(t.apply(value).is_some());
            }
        }
    }

    /// The hex transform of a number reparses as the same number via
    /// hexadecimal.
    #[test]
    fn hex_transform_roundtrip(v in any::<u64>()) {
        let value = Value::Num(BigNum::from(v));
        let hex = Transform::Hex.apply(&value).unwrap();
        let back = BigNum::from_hex(hex.as_str().unwrap()).unwrap();
        prop_assert_eq!(back, BigNum::from(v));
    }

    /// Value serde JSON roundtrip for all constructors.
    #[test]
    fn value_serde_roundtrip(v in any::<u64>(), bits in any::<u32>(), octets in any::<[u8; 6]>(), s in "[a-zA-Z0-9_-]{0,16}") {
        let values = vec![
            Value::Num(BigNum::from(v)),
            Value::Bool(v % 2 == 0),
            Value::Ip(IpAddress::V4(bits)),
            Value::Mac(MacAddress::new(octets)),
            Value::Str(s),
        ];
        let json = serde_json::to_string(&values).unwrap();
        let back: Vec<Value> = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, values);
    }

    /// Scores stay within `[0, 1]` for arbitrary values.
    #[test]
    fn scores_in_unit_interval(v in any::<u64>(), bits in any::<u32>(), len in 0u8..=32, s in "\\PC{0,24}") {
        let values = vec![
            Value::Num(BigNum::from(v)),
            Value::Bool(true),
            Value::Ip(IpAddress::V4(bits)),
            Value::Net(IpNetwork::new(IpAddress::V4(bits), len).unwrap()),
            Value::Str(s),
        ];
        for value in &values {
            let score = concord_types::score::value_score(value);
            prop_assert!((0.0..=1.0).contains(&score), "{value:?} scored {score}");
        }
    }

    /// `parse_as` accepts exactly what each family's renderer produces.
    #[test]
    fn parse_as_accepts_rendered(bits in any::<u32>()) {
        let addr = IpAddress::V4(bits);
        let v = Value::parse_as(&ValueType::Ip4, &addr.to_string()).unwrap();
        prop_assert_eq!(v.as_ip(), Some(addr));
    }
}
