//! Edge-case tests for value parsing, transformation, and scoring beyond
//! the unit suites.

use concord_types::{score, BigNum, IpAddress, IpNetwork, Transform, Value, ValueType};

#[test]
fn bignum_handles_huge_route_targets() {
    // 128-bit style serials overflow u64 but must parse, order, and
    // render exactly.
    let a = BigNum::from_decimal("340282366920938463463374607431768211455").unwrap();
    let b = BigNum::from_decimal("340282366920938463463374607431768211456").unwrap();
    assert!(a < b);
    assert_eq!(b.sub(&a), BigNum::from(1u64));
    assert_eq!(a.to_string(), "340282366920938463463374607431768211455");
    assert_eq!(a.to_u64(), None);
}

#[test]
fn bignum_hex_of_huge_values() {
    let v = BigNum::from_decimal("340282366920938463463374607431768211455").unwrap();
    assert_eq!(v.to_hex(), "f".repeat(32));
    assert_eq!(BigNum::from_hex(&"f".repeat(32)).unwrap(), v);
}

#[test]
fn network_edge_lengths() {
    let whole_v4: IpNetwork = "0.0.0.0/0".parse().unwrap();
    let host: IpNetwork = "255.255.255.255/32".parse().unwrap();
    assert!(whole_v4.contains_net(&host));
    assert!(!host.contains_net(&whole_v4));
    let whole_v6: IpNetwork = "::/0".parse().unwrap();
    let v6_host: IpNetwork = "ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff/128"
        .parse()
        .unwrap();
    assert!(whole_v6.contains_net(&v6_host));
}

#[test]
fn ip_ordering_is_total_and_family_stable() {
    let mut addrs: Vec<IpAddress> = vec![
        "10.0.0.2".parse().unwrap(),
        "::1".parse().unwrap(),
        "10.0.0.1".parse().unwrap(),
        "fe80::1".parse().unwrap(),
    ];
    addrs.sort();
    // V4 sorts before V6 (enum variant order), and within a family by
    // numeric value.
    assert_eq!(addrs[0].to_string(), "10.0.0.1");
    assert_eq!(addrs[1].to_string(), "10.0.0.2");
    assert!(!addrs[2].is_v4() && !addrs[3].is_v4());
}

#[test]
fn transform_chains_match_paper_examples() {
    // octet(10.14.14.117, 3) = 117 (Figure 5's p3 node).
    let ip = Value::parse_as(&ValueType::Ip4, "10.14.14.117").unwrap();
    assert_eq!(
        Transform::Octet(3).apply(&ip),
        Some(Value::Num(BigNum::from(117u64)))
    );
    // addr(10.14.14.0/24) then octet: transforms are single-step by
    // design; composing requires two nodes in the relation graph.
    let net = Value::parse_as(&ValueType::Pfx4, "10.14.14.0/24").unwrap();
    let addr = Transform::PrefixAddr.apply(&net).unwrap();
    assert_eq!(
        Transform::Octet(2).apply(&addr),
        Some(Value::Num(BigNum::from(14u64)))
    );
}

#[test]
fn score_monotone_in_prefix_specificity_v6() {
    let lens = [0u8, 16, 48, 64, 128];
    let mut last = -1.0f64;
    for len in lens {
        let net = Value::parse_as(&ValueType::Pfx6, &format!("2001:db8::/{len}"))
            .or_else(|| Value::parse_as(&ValueType::Pfx6, &format!("::/{len}")))
            .unwrap();
        let s = score::value_score(&net);
        assert!(s >= last, "len {len}: {s} < {last}");
        last = s;
    }
}

#[test]
fn aggregate_scores_cap_is_callers_problem() {
    // aggregate_scores itself deduplicates but does not cap: 1000 unique
    // values accumulate.
    let values: Vec<Value> = (0..1000u64)
        .map(|v| Value::Num(BigNum::from(v + 10_000)))
        .collect();
    let total = score::aggregate_scores(values.iter().map(|v| (v, 1.0)));
    assert_eq!(total, 1000.0);
}

#[test]
fn value_type_custom_roundtrips_serde() {
    let ty = ValueType::Custom("iface".to_string());
    let json = concord_json::to_string(&ty).unwrap();
    let back: ValueType = concord_json::from_str(&json).unwrap();
    assert_eq!(back, ty);
    assert_eq!(back.name(), "iface");
}

#[test]
fn parse_as_rejects_cross_type_text() {
    // Every built-in type rejects text from every other family.
    let samples = [
        (ValueType::Num, "10.0.0.1"),
        (ValueType::Ip4, "65015"),
        (ValueType::Pfx4, "10.0.0.1"),
        (ValueType::Mac, "10.0.0.1"),
        (ValueType::Bool, "1"),
        (ValueType::Ip6, "00:00:0c:d3:00:6e"),
    ];
    for (ty, text) in samples {
        assert!(
            Value::parse_as(&ty, text).is_none(),
            "{ty} accepted {text:?}"
        );
    }
}

#[test]
fn mac_segments_cover_whole_address() {
    let mac = Value::parse_as(&ValueType::Mac, "01:23:45:67:89:ab").unwrap();
    let rendered: Vec<String> = (1..=6)
        .map(|i| Transform::Segment(i).apply(&mac).unwrap().render())
        .collect();
    assert_eq!(rendered.join(":"), "01:23:45:67:89:ab");
}
