//! The contract model (§3.4, Table 2).
//!
//! Contracts are serializable, self-contained statements over pattern
//! *text* (not dense ids), so a contract file learned from one dataset can
//! be checked against any other. [`Contract::describe`] renders the
//! `forall/exists` notation used throughout the paper.

use concord_json::{Error as JsonError, FromJson, Json, ToJson};

use concord_types::{Transform, ValueType};

/// The relation of a relational contract.
///
/// All relations are evaluated as `F(v1, v2)` where `v1` is the transformed
/// antecedent value and `v2` the transformed consequent value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RelationKind {
    /// `v1 == v2`.
    Equals,
    /// `v2` (an IP network) contains `v1` (an address or subnet).
    Contains,
    /// `v2` starts with `v1` (string form).
    StartsWith,
    /// `v2` ends with `v1` (string form).
    EndsWith,
}

impl RelationKind {
    /// Returns the lowercase name used in rendered contracts.
    pub fn name(&self) -> &'static str {
        match self {
            RelationKind::Equals => "equals",
            RelationKind::Contains => "contains",
            RelationKind::StartsWith => "startswith",
            RelationKind::EndsWith => "endswith",
        }
    }

    /// Returns `true` for relations that are transitive and therefore
    /// subject to contract minimization (§3.6).
    pub fn is_transitive(&self) -> bool {
        // `contains` is transitive as well, but relates values of
        // different shapes (address vs network); the paper minimizes the
        // string-like relations.
        matches!(
            self,
            RelationKind::Equals | RelationKind::StartsWith | RelationKind::EndsWith
        )
    }

    /// All relation kinds.
    pub fn all() -> [RelationKind; 4] {
        [
            RelationKind::Equals,
            RelationKind::Contains,
            RelationKind::StartsWith,
            RelationKind::EndsWith,
        ]
    }
}

impl std::fmt::Display for RelationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One side of a relational contract: a pattern, a parameter position, and
/// the transformation applied to the parameter's value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PatternRef {
    /// The full (embedded) pattern text.
    pub pattern: String,
    /// Zero-based index into the pattern's bound parameters.
    pub param: u16,
    /// The transformation applied to the parameter value.
    pub transform: Transform,
}

impl PatternRef {
    /// Renders the transformed parameter access, e.g. `hex(l1.a)`.
    pub fn render_access(&self, line_var: &str, param_name: &str) -> String {
        self.transform
            .render_call(&format!("{line_var}.{param_name}"))
    }
}

/// A relational contract (§3.5):
/// `forall l1 ~ p1, exists l2 ~ p2 such that F(t1(l1.x), t2(l2.y))`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelationalContract {
    /// The universally quantified side.
    pub antecedent: PatternRef,
    /// The existentially quantified side.
    pub consequent: PatternRef,
    /// The relation between the transformed values.
    pub relation: RelationKind,
}

/// A learned (or manually authored) configuration contract.
#[derive(Debug, Clone, PartialEq)]
pub enum Contract {
    /// `exists l ~ p`: the configuration must contain at least one line
    /// matching `pattern`.
    Present {
        /// The required pattern.
        pattern: String,
    },
    /// Constant-learning variant of `Present`: the configuration must
    /// contain this exact (embedded) line text.
    PresentExact {
        /// The required embedded line text.
        line: String,
    },
    /// Whenever a line matches `first`, the immediately following line
    /// must match `second`.
    Ordering {
        /// The pattern of the leading line.
        first: String,
        /// The pattern the next line must match.
        second: String,
    },
    /// Only the listed types may appear at hole `hole` of the
    /// type-agnostic pattern (e.g. `!(exists l ~ ip address [pfx4])`).
    Type {
        /// The type-agnostic pattern, holes rendered as `[?]`.
        pattern: String,
        /// Zero-based hole index the restriction applies to.
        hole: u16,
        /// The allowed types at that hole.
        valid: Vec<ValueType>,
    },
    /// Values of the parameter form an equidistant (arithmetic) sequence
    /// within each configuration, e.g. `seq 10`, `seq 20`, `seq 30`.
    Sequence {
        /// The pattern whose instances form the sequence.
        pattern: String,
        /// Zero-based parameter index.
        param: u16,
    },
    /// Values of the parameter are globally unique across all
    /// configurations.
    Unique {
        /// The pattern carrying the unique values.
        pattern: String,
        /// Zero-based parameter index.
        param: u16,
        /// `true` when training additionally showed exactly one instance
        /// per configuration (e.g. `hostname`), in which case a missing
        /// line is also a violation.
        once_per_config: bool,
    },
    /// Values of a numeric parameter stay within the interval observed
    /// during training (extension category, disabled by default).
    Range {
        /// The pattern carrying the bounded values.
        pattern: String,
        /// Zero-based parameter index.
        param: u16,
        /// Smallest observed value.
        min: concord_types::BigNum,
        /// Largest observed value.
        max: concord_types::BigNum,
    },
    /// A relational contract.
    Relational(RelationalContract),
}

impl Contract {
    /// Returns the contract's category name (the column headings of
    /// Tables 4–7).
    pub fn category(&self) -> &'static str {
        match self {
            Contract::Present { .. } | Contract::PresentExact { .. } => "present",
            Contract::Ordering { .. } => "ordering",
            Contract::Type { .. } => "type",
            Contract::Sequence { .. } => "sequence",
            Contract::Unique { .. } => "unique",
            Contract::Range { .. } => "range",
            Contract::Relational(r) => match r.relation {
                RelationKind::Equals => "equality",
                RelationKind::Contains => "contains",
                RelationKind::StartsWith | RelationKind::EndsWith => "affix",
            },
        }
    }

    /// Renders the contract in the paper's `forall/exists` notation.
    pub fn describe(&self) -> String {
        match self {
            Contract::Present { pattern } => format!("exists l ~ {pattern}"),
            Contract::PresentExact { line } => format!("exists l = {line:?}"),
            Contract::Ordering { first, second } => format!(
                "forall l1 ~ {first}\nexists l2 ~ {second}\nequals(index(l1) + 1, index(l2))"
            ),
            Contract::Type {
                pattern,
                hole,
                valid,
            } => {
                let names: Vec<&str> = valid.iter().map(ValueType::name).collect();
                format!("type(hole {hole} of {pattern}) in {{{}}}", names.join(", "))
            }
            Contract::Sequence { pattern, param } => {
                format!("sequence(param {param} of {pattern})")
            }
            Contract::Unique {
                pattern,
                param,
                once_per_config,
            } => {
                if *once_per_config {
                    format!("unique(param {param} of {pattern}), exactly once per config")
                } else {
                    format!("unique(param {param} of {pattern})")
                }
            }
            Contract::Range {
                pattern,
                param,
                min,
                max,
            } => {
                format!("range(param {param} of {pattern}) in [{min}, {max}]")
            }
            Contract::Relational(r) => {
                let a_name = param_name(&r.antecedent.pattern, r.antecedent.param);
                let c_name = param_name(&r.consequent.pattern, r.consequent.param);
                let a_access = r.antecedent.render_access("l1", &a_name);
                let c_access = r.consequent.render_access("l2", &c_name);
                // Argument order follows the paper's convention: the
                // container / longer string comes first (`contains(l2.b,
                // l1.a)`, `endswith(str(l2.b), str(l1.a))`), while
                // symmetric equality lists the antecedent first.
                let formula = match r.relation {
                    RelationKind::Equals => {
                        format!("{}({a_access}, {c_access})", r.relation.name())
                    }
                    RelationKind::Contains | RelationKind::StartsWith | RelationKind::EndsWith => {
                        format!("{}({c_access}, {a_access})", r.relation.name())
                    }
                };
                format!(
                    "forall l1 ~ {}\nexists l2 ~ {}\n{formula}",
                    r.antecedent.pattern, r.consequent.pattern,
                )
            }
        }
    }
}

impl std::fmt::Display for Contract {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.describe())
    }
}

/// Looks up the `i`-th bound variable name of a pattern (falls back to a
/// positional name for patterns without named holes).
fn param_name(pattern: &str, index: u16) -> String {
    let holes = concord_lexer::pattern_holes(pattern);
    holes
        .iter()
        .filter(|(name, _)| !name.is_empty())
        .nth(usize::from(index))
        .map(|(name, _)| name.clone())
        .unwrap_or_else(|| format!("p{index}"))
}

/// A set of learned contracts plus learning statistics.
#[derive(Debug, Clone, Default)]
pub struct ContractSet {
    /// The contracts, in a stable order.
    pub contracts: Vec<Contract>,
    /// Number of relational contracts before minimization (§3.6); used to
    /// compute the reduction factor of Figure 8.
    pub relational_before_minimization: usize,
}

impl ContractSet {
    /// Returns the number of contracts.
    pub fn len(&self) -> usize {
        self.contracts.len()
    }

    /// Returns `true` when no contracts were learned.
    pub fn is_empty(&self) -> bool {
        self.contracts.is_empty()
    }

    /// Counts contracts per category name.
    pub fn count_by_category(&self) -> std::collections::BTreeMap<&'static str, usize> {
        let mut out = std::collections::BTreeMap::new();
        for c in &self.contracts {
            *out.entry(c.category()).or_insert(0) += 1;
        }
        out
    }

    /// Serializes the set to pretty JSON (the `concord learn` output
    /// format, §4).
    pub fn to_json(&self) -> String {
        concord_json::to_string_pretty(self).expect("contract serialization cannot fail")
    }

    /// Deserializes a set from JSON.
    pub fn from_json(json: &str) -> Result<ContractSet, JsonError> {
        concord_json::from_str(json)
    }
}

impl ToJson for RelationKind {
    fn to_json(&self) -> Json {
        Json::Str(format!("{self:?}"))
    }
}

impl FromJson for RelationKind {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        match value.as_str() {
            Some("Equals") => Ok(RelationKind::Equals),
            Some("Contains") => Ok(RelationKind::Contains),
            Some("StartsWith") => Ok(RelationKind::StartsWith),
            Some("EndsWith") => Ok(RelationKind::EndsWith),
            _ => Err(JsonError::custom(format!("unknown RelationKind {value}"))),
        }
    }
}

impl ToJson for PatternRef {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("pattern".to_string(), self.pattern.to_json()),
            ("param".to_string(), self.param.to_json()),
            ("transform".to_string(), self.transform.to_json()),
        ])
    }
}

impl FromJson for PatternRef {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(PatternRef {
            pattern: field(value, "pattern")?,
            param: field(value, "param")?,
            transform: field(value, "transform")?,
        })
    }
}

impl ToJson for RelationalContract {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("antecedent".to_string(), self.antecedent.to_json()),
            ("consequent".to_string(), self.consequent.to_json()),
            ("relation".to_string(), self.relation.to_json()),
        ])
    }
}

impl FromJson for RelationalContract {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(RelationalContract {
            antecedent: field(value, "antecedent")?,
            consequent: field(value, "consequent")?,
            relation: field(value, "relation")?,
        })
    }
}

impl ToJson for Contract {
    fn to_json(&self) -> Json {
        let obj = |pairs: Vec<(&str, Json)>| {
            Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
        };
        match self {
            Contract::Present { pattern } => {
                Json::tagged("Present", obj(vec![("pattern", pattern.to_json())]))
            }
            Contract::PresentExact { line } => {
                Json::tagged("PresentExact", obj(vec![("line", line.to_json())]))
            }
            Contract::Ordering { first, second } => Json::tagged(
                "Ordering",
                obj(vec![
                    ("first", first.to_json()),
                    ("second", second.to_json()),
                ]),
            ),
            Contract::Type {
                pattern,
                hole,
                valid,
            } => Json::tagged(
                "Type",
                obj(vec![
                    ("pattern", pattern.to_json()),
                    ("hole", hole.to_json()),
                    ("valid", valid.to_json()),
                ]),
            ),
            Contract::Sequence { pattern, param } => Json::tagged(
                "Sequence",
                obj(vec![
                    ("pattern", pattern.to_json()),
                    ("param", param.to_json()),
                ]),
            ),
            Contract::Unique {
                pattern,
                param,
                once_per_config,
            } => Json::tagged(
                "Unique",
                obj(vec![
                    ("pattern", pattern.to_json()),
                    ("param", param.to_json()),
                    ("once_per_config", once_per_config.to_json()),
                ]),
            ),
            Contract::Range {
                pattern,
                param,
                min,
                max,
            } => Json::tagged(
                "Range",
                obj(vec![
                    ("pattern", pattern.to_json()),
                    ("param", param.to_json()),
                    ("min", min.to_json()),
                    ("max", max.to_json()),
                ]),
            ),
            Contract::Relational(r) => Json::tagged("Relational", r.to_json()),
        }
    }
}

impl FromJson for Contract {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let [(tag, inner)] = value
            .as_object()
            .ok_or_else(|| JsonError::custom(format!("expected Contract object, got {value}")))?
        else {
            return Err(JsonError::custom(
                "expected one-key Contract object".to_string(),
            ));
        };
        match tag.as_str() {
            "Present" => Ok(Contract::Present {
                pattern: field(inner, "pattern")?,
            }),
            "PresentExact" => Ok(Contract::PresentExact {
                line: field(inner, "line")?,
            }),
            "Ordering" => Ok(Contract::Ordering {
                first: field(inner, "first")?,
                second: field(inner, "second")?,
            }),
            "Type" => Ok(Contract::Type {
                pattern: field(inner, "pattern")?,
                hole: field(inner, "hole")?,
                valid: field(inner, "valid")?,
            }),
            "Sequence" => Ok(Contract::Sequence {
                pattern: field(inner, "pattern")?,
                param: field(inner, "param")?,
            }),
            "Unique" => Ok(Contract::Unique {
                pattern: field(inner, "pattern")?,
                param: field(inner, "param")?,
                once_per_config: field(inner, "once_per_config")?,
            }),
            "Range" => Ok(Contract::Range {
                pattern: field(inner, "pattern")?,
                param: field(inner, "param")?,
                min: field(inner, "min")?,
                max: field(inner, "max")?,
            }),
            "Relational" => RelationalContract::from_json(inner).map(Contract::Relational),
            other => Err(JsonError::custom(format!(
                "unknown Contract variant {other:?}"
            ))),
        }
    }
}

impl ToJson for ContractSet {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("contracts".to_string(), self.contracts.to_json()),
            (
                "relational_before_minimization".to_string(),
                self.relational_before_minimization.to_json(),
            ),
        ])
    }
}

impl FromJson for ContractSet {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(ContractSet {
            contracts: field(value, "contracts")?,
            relational_before_minimization: field(value, "relational_before_minimization")?,
        })
    }
}

/// Decodes a required object field.
fn field<T: FromJson>(value: &Json, key: &str) -> Result<T, JsonError> {
    let inner = value
        .get(key)
        .ok_or_else(|| JsonError::custom(format!("missing field {key:?}")))?;
    T::from_json(inner).map_err(|e| JsonError::custom(format!("field {key:?}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_relational() -> Contract {
        Contract::Relational(RelationalContract {
            antecedent: PatternRef {
                pattern: "/interface Port-Channel[a:num]".to_string(),
                param: 0,
                transform: Transform::Hex,
            },
            consequent: PatternRef {
                pattern: "/route-target import [a:mac]".to_string(),
                param: 0,
                transform: Transform::Segment(6),
            },
            relation: RelationKind::Equals,
        })
    }

    #[test]
    fn categories() {
        assert_eq!(
            Contract::Present {
                pattern: "x".into()
            }
            .category(),
            "present"
        );
        assert_eq!(example_relational().category(), "equality");
        let affix = Contract::Relational(RelationalContract {
            antecedent: PatternRef {
                pattern: "a".into(),
                param: 0,
                transform: Transform::Id,
            },
            consequent: PatternRef {
                pattern: "b".into(),
                param: 0,
                transform: Transform::Id,
            },
            relation: RelationKind::EndsWith,
        });
        assert_eq!(affix.category(), "affix");
    }

    #[test]
    fn describe_figure_1_contract_1() {
        // Figure 1 contract 1:
        //   forall l1 ~ interface Port-Channel[a:num]
        //   exists l2 ~ route-target import [b:mac]
        //   equals(hex(l1.a), segment(l2.b, 6))
        let text = example_relational().describe();
        assert!(text.contains("forall l1 ~ /interface Port-Channel[a:num]"));
        assert!(text.contains("exists l2 ~ /route-target import [a:mac]"));
        assert!(text.contains("equals(hex(l1.a), segment(l2.a, 6))"));
    }

    #[test]
    fn describe_present_and_ordering() {
        assert_eq!(
            Contract::Present {
                pattern: "/router bgp [a:num]".into()
            }
            .describe(),
            "exists l ~ /router bgp [a:num]"
        );
        let ordering = Contract::Ordering {
            first: "/evpn".into(),
            second: "/route-target".into(),
        };
        assert!(ordering.describe().contains("index(l1) + 1"));
    }

    #[test]
    fn relation_kind_properties() {
        assert!(RelationKind::Equals.is_transitive());
        assert!(RelationKind::StartsWith.is_transitive());
        assert!(RelationKind::EndsWith.is_transitive());
        assert!(!RelationKind::Contains.is_transitive());
        assert_eq!(RelationKind::all().len(), 4);
    }

    #[test]
    fn json_roundtrip() {
        let set = ContractSet {
            contracts: vec![
                Contract::Present {
                    pattern: "/x".into(),
                },
                Contract::Type {
                    pattern: "/ip address [?]".into(),
                    hole: 0,
                    valid: vec![ValueType::Ip4, ValueType::Ip6],
                },
                Contract::Unique {
                    pattern: "/hostname DEV[a:num]".into(),
                    param: 0,
                    once_per_config: true,
                },
                Contract::Sequence {
                    pattern: "/seq [a:num] permit [b:pfx4]".into(),
                    param: 0,
                },
                example_relational(),
            ],
            relational_before_minimization: 12,
        };
        let json = set.to_json();
        let back = ContractSet::from_json(&json).unwrap();
        assert_eq!(back.contracts, set.contracts);
        assert_eq!(back.relational_before_minimization, 12);
    }

    #[test]
    fn count_by_category() {
        let set = ContractSet {
            contracts: vec![
                Contract::Present {
                    pattern: "/a".into(),
                },
                Contract::Present {
                    pattern: "/b".into(),
                },
                example_relational(),
            ],
            relational_before_minimization: 1,
        };
        let counts = set.count_by_category();
        assert_eq!(counts["present"], 2);
        assert_eq!(counts["equality"], 1);
    }
}
