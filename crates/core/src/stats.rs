//! Per-stage pipeline instrumentation.
//!
//! [`PipelineStats`] aggregates the observable cost of one pipeline run:
//! dataset construction ([`BuildStats`] — embedding + lexing with cache
//! hit/miss counters, then pattern interning), learning
//! ([`LearnStats`](crate::LearnStats) — view construction, each miner,
//! minimization), and checking ([`CheckStats`]). The CLI serializes it
//! with [`PipelineStats::to_json`] under `--stats json`; the schema is
//! documented in DESIGN.md ("Performance & instrumentation").

use std::time::Duration;

use concord_json::{Json, ToJson};

use crate::learn::LearnStats;

/// Schema identifier emitted in the JSON form, bumped on breaking
/// changes to the layout. v2 added the compiled-check fields
/// (`compile_secs`, `witness`, `categories`) to the `check` stage; v3
/// added the parallel-learn fields (`miner_parallelism`,
/// `relational_merge_secs`, `fanout_truncations`) to the `learn` stage;
/// v4 added the `engine` stage (incremental-engine counters: edits
/// absorbed, dirty vs reused configurations, reused lex entries, patched
/// vs rebuilt witness indexes); v5 added the robustness counters
/// (`engine.robustness`: requests rejected, deadlines hit, panics
/// recovered, WAL replays, degraded checks), per-configuration edit
/// generations (`engine.generations`), and lex-cache evictions; v6 added
/// the incremental-learning counters (`engine.learn_delta`: sketch cache
/// occupancy, configs re-sketched vs reused by the last relearn, and the
/// edit counter the current contracts were learned at); v7 added the
/// serve transport counters (`engine.serve`: connections, requests,
/// batches and batched sub-requests, binary frames, and reads served
/// under the shared lock vs exclusive engine operations); v8 added the
/// fleet object (`engine.fleet`: per-shard counters with applied WAL
/// sequence and robustness, replica lag entries, the router's hash
/// distribution, and one-pass summed totals — `null` when serving a
/// single unsharded engine); v9 added the memory object
/// (`engine.memory`: arena-interner heap accounting for the
/// structure-of-arrays dataset — string/param/pattern-table/column
/// bytes and interned-entry counts — plus the segmented-checkpoint
/// scorecard of segments written vs skipped); v10 added the storage
/// object (`engine.storage`: injected storage faults, bounded-retry
/// attempts, degraded-mode transitions and recoveries, and GC removal
/// errors that were previously swallowed — plus the live degraded
/// flag surfaced by the serve `HEALTH` verb).
pub const STATS_SCHEMA: &str = "concord-pipeline-stats/v10";

/// Statistics from one [`Dataset::build_with_stats`](crate::Dataset::build_with_stats) run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BuildStats {
    /// Number of configurations built.
    pub configs: usize,
    /// Total line records across all configurations (including appended
    /// metadata lines).
    pub lines: usize,
    /// Distinct patterns interned.
    pub patterns: usize,
    /// Wall-clock time embedding and lexing all files.
    pub lex_time: Duration,
    /// Wall-clock time interning patterns and assembling records.
    pub intern_time: Duration,
    /// Whether a lex cache was in use.
    pub cache_enabled: bool,
    /// Lex-cache hits contributed by this build.
    pub cache_hits: u64,
    /// Lex-cache misses contributed by this build (distinct line shapes
    /// actually scanned).
    pub cache_misses: u64,
}

impl BuildStats {
    /// Lex-cache hit rate in `[0, 1]` for this build; `0` when the cache
    /// was disabled or unused.
    pub fn cache_hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64
        }
    }
}

impl ToJson for BuildStats {
    fn to_json(&self) -> Json {
        concord_json::json!({
            "configs": self.configs,
            "lines": self.lines,
            "patterns": self.patterns,
            "lex_secs": self.lex_time.as_secs_f64(),
            "intern_secs": self.intern_time.as_secs_f64(),
            "cache": concord_json::json!({
                "enabled": self.cache_enabled,
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "hit_rate": self.cache_hit_rate(),
            }),
        })
    }
}

/// Statistics from one checking run on the compiled engine.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckStats {
    /// Contracts checked.
    pub contracts: usize,
    /// Violations reported.
    pub violations: usize,
    /// Worker threads used.
    pub parallelism: usize,
    /// Wall-clock checking time (compile + execute + coverage).
    pub check_time: Duration,
    /// Time compiling the [`CheckProgram`](crate::CheckProgram).
    pub compile_time: Duration,
    /// Witness indexes built across all configurations (lazy — only
    /// probed consequent nodes are indexed).
    pub witness_indexes: u64,
    /// Total consequent occurrences indexed.
    pub witness_entries: u64,
    /// Relational antecedent probes issued.
    pub witness_probes: u64,
    /// Probes that found a witness (non-violations).
    pub witness_probe_hits: u64,
    /// Per-phase check time, in execution order (present, pattern,
    /// sequence, relational, unique, coverage). Summed across workers,
    /// so CPU time when `parallelism > 1`.
    pub category_times: Vec<(String, Duration)>,
}

impl CheckStats {
    /// Fraction of witness probes that found a witness (0 when no probes
    /// were issued).
    pub fn probe_hit_rate(&self) -> f64 {
        if self.witness_probes == 0 {
            0.0
        } else {
            self.witness_probe_hits as f64 / self.witness_probes as f64
        }
    }
}

impl ToJson for CheckStats {
    fn to_json(&self) -> Json {
        let categories = Json::Array(
            self.category_times
                .iter()
                .map(|(name, time)| {
                    concord_json::json!({
                        "name": name.as_str(),
                        "secs": time.as_secs_f64(),
                    })
                })
                .collect(),
        );
        concord_json::json!({
            "contracts": self.contracts,
            "violations": self.violations,
            "parallelism": self.parallelism,
            "check_secs": self.check_time.as_secs_f64(),
            "compile_secs": self.compile_time.as_secs_f64(),
            "witness": concord_json::json!({
                "indexes": self.witness_indexes,
                "entries": self.witness_entries,
                "probes": self.witness_probes,
                "probe_hits": self.witness_probe_hits,
                "hit_rate": self.probe_hit_rate(),
            }),
            "categories": categories,
        })
    }
}

impl ToJson for LearnStats {
    fn to_json(&self) -> Json {
        let miners = Json::Array(
            self.miner_times
                .iter()
                .map(|(name, time)| {
                    concord_json::json!({
                        "name": name.as_str(),
                        "secs": time.as_secs_f64(),
                    })
                })
                .collect(),
        );
        concord_json::json!({
            "view_secs": self.view_time.as_secs_f64(),
            "miner_parallelism": self.miner_parallelism,
            "miners": miners,
            "simple_miners_secs": self.simple_miners_time.as_secs_f64(),
            "relational_secs": self.relational_time.as_secs_f64(),
            "relational_merge_secs": self.relational_merge_time.as_secs_f64(),
            "fanout_truncations": self.fanout_truncations,
            "minimize_secs": self.minimize_time.as_secs_f64(),
            "relational_before_minimization": self.relational_before_minimization,
            "relational_after_minimization": self.relational_after_minimization,
        })
    }
}

/// Incremental counters of one `Engine::check_dirty` call: how much of
/// the check was patched from the cache versus recomputed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineCheckStats {
    /// Configurations re-checked this call (dirty or invalidated).
    pub dirty_configs: usize,
    /// Configurations whose cached outcome was reused untouched.
    pub reused_configs: usize,
    /// Whether a resolution change (contracts swapped, or an edit that
    /// re-resolved a contract pattern) forced a full cache invalidation.
    pub resolution_invalidated: bool,
    /// Witness indexes rebuilt while re-checking dirty configurations.
    pub witness_indexes_rebuilt: u64,
    /// Witness indexes patched in place — carried over inside reused
    /// per-configuration outcomes instead of being rebuilt.
    pub witness_indexes_patched: u64,
}

impl ToJson for EngineCheckStats {
    fn to_json(&self) -> Json {
        concord_json::json!({
            "dirty_configs": self.dirty_configs,
            "reused_configs": self.reused_configs,
            "resolution_invalidated": self.resolution_invalidated,
            "witness_indexes_rebuilt": self.witness_indexes_rebuilt,
            "witness_indexes_patched": self.witness_indexes_patched,
        })
    }
}

/// Robustness counters of a fault-tolerant resident engine
/// (`ResilientEngine` in `concord-engine` plus the `concord serve`
/// transport layer): how often the hardening machinery actually fired.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RobustnessStats {
    /// Requests refused before touching the engine: load shedding
    /// (`err busy`), oversized lines/bodies, malformed or non-UTF-8
    /// input.
    pub requests_rejected: u64,
    /// Requests that hit their deadline (slow reads or engine-lock
    /// waits) and were answered with `err deadline`.
    pub deadlines_hit: u64,
    /// Worker panics caught, after which the engine was rebuilt from its
    /// last-known-good image.
    pub panics_recovered: u64,
    /// Startup recoveries that replayed a write-ahead log.
    pub wal_replays: u64,
    /// Individual WAL records applied across all replays.
    pub wal_records_replayed: u64,
    /// Snapshot checkpoints written (atomic rename + WAL rotation).
    pub checkpoints: u64,
    /// Checks served from a freshly rebuilt (post-recovery) engine — a
    /// full recompute instead of the incremental path.
    pub degraded_checks: u64,
    /// Persistence failures swallowed without losing in-memory state
    /// (WAL append or checkpoint I/O errors).
    pub persist_errors: u64,
}

impl RobustnessStats {
    /// Adds another counter set into this one — the fleet rollup sums
    /// every shard's robustness object in one pass with this.
    pub fn accumulate(&mut self, other: &RobustnessStats) {
        self.requests_rejected += other.requests_rejected;
        self.deadlines_hit += other.deadlines_hit;
        self.panics_recovered += other.panics_recovered;
        self.wal_replays += other.wal_replays;
        self.wal_records_replayed += other.wal_records_replayed;
        self.checkpoints += other.checkpoints;
        self.degraded_checks += other.degraded_checks;
        self.persist_errors += other.persist_errors;
    }
}

impl ToJson for RobustnessStats {
    fn to_json(&self) -> Json {
        concord_json::json!({
            "requests_rejected": self.requests_rejected,
            "deadlines_hit": self.deadlines_hit,
            "panics_recovered": self.panics_recovered,
            "wal_replays": self.wal_replays,
            "wal_records_replayed": self.wal_records_replayed,
            "checkpoints": self.checkpoints,
            "degraded_checks": self.degraded_checks,
            "persist_errors": self.persist_errors,
        })
    }
}

/// Incremental-learning counters of a resident engine: the state of its
/// per-configuration sketch cache and what the most recent relearn
/// actually recomputed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LearnDeltaStats {
    /// Whether the engine relearns by folding cached sketches (the delta
    /// path) or always re-mines the full corpus (the oracle path).
    pub enabled: bool,
    /// Configurations with a cached sketch.
    pub sketches: usize,
    /// Configurations whose sketch is missing (edited since it was
    /// mined, or never mined).
    pub dirty: usize,
    /// Configurations re-sketched by the most recent relearn.
    pub mined_last_learn: u64,
    /// Configurations whose cached sketch the most recent relearn reused.
    pub reused_last_learn: u64,
    /// Value of the `edits` counter when the current contracts were
    /// learned or loaded — `edits - contracts_edits` edits have happened
    /// since, so `0` distance means the contracts describe the current
    /// snapshot.
    pub contracts_edits: u64,
}

impl ToJson for LearnDeltaStats {
    fn to_json(&self) -> Json {
        concord_json::json!({
            "enabled": self.enabled,
            "sketches": self.sketches,
            "dirty": self.dirty,
            "mined_last_learn": self.mined_last_learn,
            "reused_last_learn": self.reused_last_learn,
            "contracts_edits": self.contracts_edits,
        })
    }
}

/// Memory accounting for the arena-interned structure-of-arrays
/// dataset, plus the segmented-checkpoint scorecard (the v9 `memory`
/// stats object). Byte figures are exact heap-allocation sums from the
/// arenas themselves, not RSS estimates, so they are stable across
/// allocators and platforms.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// Bytes held by the interned-string arena (originals and names).
    pub string_arena_bytes: u64,
    /// Bytes held by the interned parameter-slice arena.
    pub param_arena_bytes: u64,
    /// Bytes held by the pattern table.
    pub pattern_table_bytes: u64,
    /// Bytes held by the per-config SoA line columns.
    pub column_bytes: u64,
    /// Distinct strings interned (deduplicated across the corpus).
    pub interned_strings: u64,
    /// Distinct parameter slices interned.
    pub interned_param_slices: u64,
    /// Segment files written across all checkpoints of this process.
    pub segments_written: u64,
    /// Clean segments skipped (already durable) across all checkpoints.
    pub segments_skipped: u64,
}

impl ToJson for MemoryStats {
    fn to_json(&self) -> Json {
        concord_json::json!({
            "string_arena_bytes": self.string_arena_bytes,
            "param_arena_bytes": self.param_arena_bytes,
            "pattern_table_bytes": self.pattern_table_bytes,
            "column_bytes": self.column_bytes,
            "interned_strings": self.interned_strings,
            "interned_param_slices": self.interned_param_slices,
            "segments_written": self.segments_written,
            "segments_skipped": self.segments_skipped,
        })
    }
}

/// Storage-fault counters of a durable resident engine (the v10
/// `storage` stats object): what the fault-injecting VFS actually
/// threw at the durability layer and how the engine absorbed it —
/// bounded retries, degraded read-only transitions, and automatic
/// recoveries once writes succeed again. Also surfaced by the serve
/// `HEALTH` verb.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageStats {
    /// Whether the engine is currently in degraded read-only mode
    /// (writes answer `err storage-degraded`; reads keep serving from
    /// the resident snapshot).
    pub degraded: bool,
    /// Faults injected by the VFS layer (0 on a passthrough `RealVfs`).
    pub faults_injected: u64,
    /// WAL-append / checkpoint attempts retried after a storage error
    /// (each backoff step counts once).
    pub retries: u64,
    /// Transitions into degraded read-only mode after the bounded
    /// retry budget was exhausted.
    pub degraded_transitions: u64,
    /// Automatic recoveries out of degraded mode once a write probe
    /// succeeded again.
    pub recoveries: u64,
    /// Segment-GC / WAL-rotation removals that failed — previously
    /// swallowed with `let _ =`, now counted and logged once.
    pub gc_remove_errors: u64,
}

impl StorageStats {
    /// Adds another counter set into this one — the fleet rollup sums
    /// every shard's storage object in one pass with this. A fleet is
    /// degraded if any shard is.
    pub fn accumulate(&mut self, other: &StorageStats) {
        self.degraded |= other.degraded;
        self.faults_injected += other.faults_injected;
        self.retries += other.retries;
        self.degraded_transitions += other.degraded_transitions;
        self.recoveries += other.recoveries;
        self.gc_remove_errors += other.gc_remove_errors;
    }
}

impl ToJson for StorageStats {
    fn to_json(&self) -> Json {
        concord_json::json!({
            "degraded": self.degraded,
            "faults_injected": self.faults_injected,
            "retries": self.retries,
            "degraded_transitions": self.degraded_transitions,
            "recoveries": self.recoveries,
            "gc_remove_errors": self.gc_remove_errors,
        })
    }
}

/// Transport-layer counters of one `concord serve` process: how traffic
/// actually reached the engine (connections, pipelined requests, BATCH
/// amortization, binary frames) and how often the read/write engine
/// split let a request run under the shared lock instead of serializing
/// behind writers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeTransportStats {
    /// Connections accepted (stdin counts as one).
    pub connections: u64,
    /// Requests answered, across all connections and framings
    /// (BATCH counts as one request; its sub-commands are counted in
    /// `batched_requests`).
    pub requests: u64,
    /// BATCH requests executed.
    pub batches: u64,
    /// Sub-commands executed inside BATCH requests.
    pub batched_requests: u64,
    /// Requests that arrived as length-prefixed binary frames.
    pub binary_frames: u64,
    /// Read-only requests (CHECK/GEN/STATS/CONTRACTS) served under the
    /// shared read lock, concurrently with other readers.
    pub shared_reads: u64,
    /// Requests that took the exclusive write lock (mutations, fault
    /// verbs, and reads that missed the shared-path cache).
    pub exclusive_ops: u64,
}

impl ToJson for ServeTransportStats {
    fn to_json(&self) -> Json {
        concord_json::json!({
            "connections": self.connections,
            "requests": self.requests,
            "batches": self.batches,
            "batched_requests": self.batched_requests,
            "binary_frames": self.binary_frames,
            "shared_reads": self.shared_reads,
            "exclusive_ops": self.exclusive_ops,
        })
    }
}

/// One read replica's position inside a [`FleetShardStats`] entry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetReplicaStats {
    /// Highest WAL sequence the replica has replayed.
    pub applied_seq: u64,
    /// Leader sequence minus replica sequence at snapshot time — 0 means
    /// the replica has replayed every acknowledged write.
    pub lag: u64,
    /// Full resynchronizations (snapshot reload after a WAL rotation or
    /// sequence gap).
    pub resyncs: u64,
    /// Reads this replica served (GEN answered from the replica image).
    pub reads: u64,
}

impl ToJson for FleetReplicaStats {
    fn to_json(&self) -> Json {
        concord_json::json!({
            "applied_seq": self.applied_seq,
            "lag": self.lag,
            "resyncs": self.resyncs,
            "reads": self.reads,
        })
    }
}

/// One shard's slice of a [`FleetStats`] snapshot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FleetShardStats {
    /// Shard index in router order.
    pub shard: usize,
    /// Configurations currently routed to this shard.
    pub configs: usize,
    /// Highest WAL sequence the shard leader has applied.
    pub applied_seq: u64,
    /// Read verbs (CHECK parts / GEN / CONTRACTS) executed on this shard.
    pub reads: u64,
    /// Write verbs (UPSERT / REMOVE / contract swaps) executed on this
    /// shard leader.
    pub writes: u64,
    /// The shard leader's robustness counters.
    pub robustness: RobustnessStats,
    /// Read replicas tailing this shard's WAL.
    pub replicas: Vec<FleetReplicaStats>,
}

impl ToJson for FleetShardStats {
    fn to_json(&self) -> Json {
        concord_json::json!({
            "shard": self.shard,
            "configs": self.configs,
            "applied_seq": self.applied_seq,
            "reads": self.reads,
            "writes": self.writes,
            "robustness": self.robustness,
            "replicas": Json::Array(self.replicas.iter().map(ToJson::to_json).collect()),
        })
    }
}

/// One-pass sums over every shard in a [`FleetStats`] snapshot. Built by
/// a single fold over the shard entries, so the totals and the per-shard
/// objects come from the same snapshot and always agree (the v7 layout
/// overlaid serve counters read-side, which could drift from the
/// engine-held copies).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FleetTotals {
    /// Σ shard configs.
    pub configs: usize,
    /// Σ shard reads.
    pub reads: u64,
    /// Σ shard writes.
    pub writes: u64,
    /// Σ replica reads across all shards.
    pub replica_reads: u64,
    /// Maximum replica lag across all shards at snapshot time.
    pub max_replica_lag: u64,
    /// Σ shard robustness counters, field by field.
    pub robustness: RobustnessStats,
}

impl ToJson for FleetTotals {
    fn to_json(&self) -> Json {
        concord_json::json!({
            "configs": self.configs,
            "reads": self.reads,
            "writes": self.writes,
            "replica_reads": self.replica_reads,
            "max_replica_lag": self.max_replica_lag,
            "robustness": self.robustness,
        })
    }
}

/// Fleet-level statistics of a sharded `concord serve` process: the
/// consistent-hash router's device distribution, per-shard counters with
/// replica lag, and one-pass summed totals. `None` in `EngineStats` when
/// serving a single unsharded engine.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FleetStats {
    /// Per-shard entries, in shard (router) order.
    pub shards: Vec<FleetShardStats>,
    /// Devices the router currently maps to each shard, in shard order —
    /// the observed hash distribution.
    pub router: Vec<usize>,
    /// One-pass sums over `shards` (see [`FleetStats::rollup`]).
    pub totals: FleetTotals,
}

impl FleetStats {
    /// Folds the per-shard entries into [`FleetTotals`] in one pass.
    pub fn rollup(shards: &[FleetShardStats]) -> FleetTotals {
        let mut totals = FleetTotals::default();
        for shard in shards {
            totals.configs += shard.configs;
            totals.reads += shard.reads;
            totals.writes += shard.writes;
            totals.robustness.accumulate(&shard.robustness);
            for replica in &shard.replicas {
                totals.replica_reads += replica.reads;
                totals.max_replica_lag = totals.max_replica_lag.max(replica.lag);
            }
        }
        totals
    }
}

impl ToJson for FleetStats {
    fn to_json(&self) -> Json {
        concord_json::json!({
            "shards": Json::Array(self.shards.iter().map(ToJson::to_json).collect()),
            "router": Json::Array(self.router.iter().map(|n| n.to_json()).collect()),
            "totals": self.totals,
        })
    }
}

/// A snapshot of a resident incremental engine (`Engine::snapshot_stats`
/// in `concord-engine`): the versioned dataset, the edit/relearn history,
/// and the lex-cache reuse across all edits absorbed so far.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EngineStats {
    /// Configurations in the snapshot.
    pub configs: usize,
    /// Total line records (including appended metadata lines).
    pub lines: usize,
    /// Distinct interned patterns (append-only across edits).
    pub patterns: usize,
    /// Contracts currently loaded (`None` before the first learn/load).
    pub contracts: Option<usize>,
    /// Upserts + removes absorbed since the engine was built.
    pub edits: u64,
    /// Full relearns performed.
    pub relearns: u64,
    /// Configurations currently awaiting re-check.
    pub dirty_configs: usize,
    /// Fraction of lines changed since the last learn (the
    /// `relearn_if_stale` signal).
    pub staleness: f64,
    /// Lex-cache hits across the engine's lifetime (lines reused from the
    /// persistent cache instead of re-scanned).
    pub lex_cache_hits: u64,
    /// Lex-cache misses across the engine's lifetime.
    pub lex_cache_misses: u64,
    /// Lex-cache evictions (0 for an unbounded cache).
    pub lex_cache_evictions: u64,
    /// Per-configuration edit generations in dataset order: `(name,
    /// generation)`. Survives crash recovery, so a restarted engine
    /// reports the same generations as an uninterrupted one.
    pub generations: Vec<(String, u64)>,
    /// Counters of the most recent `check_dirty` call.
    pub last_check: Option<EngineCheckStats>,
    /// Fault-tolerance counters, when the engine runs behind the
    /// hardened serve layer (`None` for a bare `Engine`).
    pub robustness: Option<RobustnessStats>,
    /// Incremental-learning counters (sketch cache and last relearn).
    pub learn_delta: LearnDeltaStats,
    /// Arena/interner memory accounting and segmented-checkpoint
    /// counters.
    pub memory: MemoryStats,
    /// Storage-fault and degraded-mode counters, when the engine runs
    /// behind the hardened durability layer (`None` for a bare
    /// `Engine`).
    pub storage: Option<StorageStats>,
    /// Serve transport counters, when the stats were produced by a
    /// `concord serve` process (`None` for a bare engine).
    pub serve: Option<ServeTransportStats>,
    /// Fleet rollup, when the stats were produced by a sharded serve
    /// process (`None` for a single unsharded engine).
    pub fleet: Option<FleetStats>,
}

impl ToJson for EngineStats {
    fn to_json(&self) -> Json {
        let generations = Json::Object(
            self.generations
                .iter()
                .map(|(name, gen)| (name.clone(), gen.to_json()))
                .collect(),
        );
        concord_json::json!({
            "configs": self.configs,
            "lines": self.lines,
            "patterns": self.patterns,
            "contracts": self.contracts,
            "edits": self.edits,
            "relearns": self.relearns,
            "dirty_configs": self.dirty_configs,
            "staleness": self.staleness,
            "lex_cache": concord_json::json!({
                "hits": self.lex_cache_hits,
                "misses": self.lex_cache_misses,
                "evictions": self.lex_cache_evictions,
            }),
            "generations": generations,
            "last_check": self.last_check,
            "robustness": self.robustness,
            "learn_delta": self.learn_delta,
            "memory": self.memory,
            "storage": self.storage,
            "serve": self.serve,
            "fleet": self.fleet,
        })
    }
}

/// Aggregated per-stage statistics for one CLI or harness invocation.
///
/// Stages that did not run (e.g. no checking in `learn`) stay `None` and
/// serialize as `null`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PipelineStats {
    /// Dataset construction (embed + lex + intern).
    pub build: Option<BuildStats>,
    /// Contract learning.
    pub learn: Option<LearnStats>,
    /// Contract checking.
    pub check: Option<CheckStats>,
    /// Incremental-engine state, when the run went through a resident
    /// engine (`concord-cli serve`) instead of the batch pipeline.
    pub engine: Option<EngineStats>,
    /// End-to-end wall-clock time of the instrumented run.
    pub total_time: Duration,
}

impl PipelineStats {
    /// Serializes to the documented [`STATS_SCHEMA`] object.
    pub fn to_json(&self) -> Json {
        concord_json::json!({
            "schema": STATS_SCHEMA,
            "total_secs": self.total_time.as_secs_f64(),
            "build": self.build,
            "learn": self.learn,
            "check": self.check,
            "engine": self.engine,
        })
    }

    /// Renders a human-readable multi-line summary (the `--stats text`
    /// form).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if let Some(b) = &self.build {
            out.push_str(&format!(
                "build: {} configs, {} lines, {} patterns in {:.3}s lex + {:.3}s intern\n",
                b.configs,
                b.lines,
                b.patterns,
                b.lex_time.as_secs_f64(),
                b.intern_time.as_secs_f64(),
            ));
            if b.cache_enabled {
                out.push_str(&format!(
                    "  lex cache: {} hits / {} misses ({:.1}% hit rate)\n",
                    b.cache_hits,
                    b.cache_misses,
                    100.0 * b.cache_hit_rate(),
                ));
            } else {
                out.push_str("  lex cache: disabled\n");
            }
        }
        if let Some(l) = &self.learn {
            out.push_str(&format!("learn: view {:.3}s", l.view_time.as_secs_f64()));
            for (name, time) in &l.miner_times {
                out.push_str(&format!(", {name} {:.3}s", time.as_secs_f64()));
            }
            out.push_str(&format!(
                ", minimize {:.3}s ({} -> {} relational)\n",
                l.minimize_time.as_secs_f64(),
                l.relational_before_minimization,
                l.relational_after_minimization,
            ));
            out.push_str(&format!(
                "  miner parallelism {}; relational merge {:.3}s; fan-out truncations {}\n",
                l.miner_parallelism,
                l.relational_merge_time.as_secs_f64(),
                l.fanout_truncations,
            ));
        }
        if let Some(c) = &self.check {
            out.push_str(&format!(
                "check: {} contracts, {} violations in {:.3}s (parallelism {})\n",
                c.contracts,
                c.violations,
                c.check_time.as_secs_f64(),
                c.parallelism,
            ));
            out.push_str(&format!(
                "  compile {:.3}s; witness indexes: {} ({} entries); probes: {} ({:.1}% hit)\n",
                c.compile_time.as_secs_f64(),
                c.witness_indexes,
                c.witness_entries,
                c.witness_probes,
                100.0 * c.probe_hit_rate(),
            ));
            if !c.category_times.is_empty() {
                let parts: Vec<String> = c
                    .category_times
                    .iter()
                    .map(|(name, time)| format!("{name} {:.3}s", time.as_secs_f64()))
                    .collect();
                out.push_str(&format!("  phases: {}\n", parts.join(", ")));
            }
        }
        if let Some(e) = &self.engine {
            out.push_str(&format!(
                "engine: {} configs, {} lines, {} patterns; {} edits, {} relearns, {} dirty\n",
                e.configs, e.lines, e.patterns, e.edits, e.relearns, e.dirty_configs,
            ));
            out.push_str(&format!(
                "  staleness {:.3}; lex cache {} hits / {} misses / {} evictions\n",
                e.staleness, e.lex_cache_hits, e.lex_cache_misses, e.lex_cache_evictions,
            ));
            let d = &e.learn_delta;
            out.push_str(&format!(
                "  learn delta: {}; {} sketches / {} dirty; last learn mined {} / reused {}; contracts at edit {}\n",
                if d.enabled { "enabled" } else { "disabled" },
                d.sketches,
                d.dirty,
                d.mined_last_learn,
                d.reused_last_learn,
                d.contracts_edits,
            ));
            let m = &e.memory;
            out.push_str(&format!(
                "  memory: {} KiB strings + {} KiB params + {} KiB patterns + {} KiB columns; {} strings / {} param slices interned; segments {} written / {} skipped\n",
                m.string_arena_bytes / 1024,
                m.param_arena_bytes / 1024,
                m.pattern_table_bytes / 1024,
                m.column_bytes / 1024,
                m.interned_strings,
                m.interned_param_slices,
                m.segments_written,
                m.segments_skipped,
            ));
            if let Some(r) = &e.robustness {
                out.push_str(&format!(
                    "  robustness: {} rejected, {} deadlines, {} panics recovered, {} WAL replays ({} records), {} checkpoints, {} degraded checks\n",
                    r.requests_rejected,
                    r.deadlines_hit,
                    r.panics_recovered,
                    r.wal_replays,
                    r.wal_records_replayed,
                    r.checkpoints,
                    r.degraded_checks,
                ));
            }
            if let Some(s) = &e.storage {
                out.push_str(&format!(
                    "  storage: {}; {} faults injected, {} retries, {} degraded transitions / {} recoveries, {} GC remove errors\n",
                    if s.degraded { "DEGRADED (read-only)" } else { "healthy" },
                    s.faults_injected,
                    s.retries,
                    s.degraded_transitions,
                    s.recoveries,
                    s.gc_remove_errors,
                ));
            }
            if let Some(s) = &e.serve {
                out.push_str(&format!(
                    "  serve: {} connections, {} requests ({} batches / {} batched, {} binary); {} shared reads / {} exclusive ops\n",
                    s.connections,
                    s.requests,
                    s.batches,
                    s.batched_requests,
                    s.binary_frames,
                    s.shared_reads,
                    s.exclusive_ops,
                ));
            }
            if let Some(f) = &e.fleet {
                out.push_str(&format!(
                    "  fleet: {} shards; router {:?}; {} reads / {} writes; {} replica reads (max lag {})\n",
                    f.shards.len(),
                    f.router,
                    f.totals.reads,
                    f.totals.writes,
                    f.totals.replica_reads,
                    f.totals.max_replica_lag,
                ));
            }
            if let Some(c) = &e.last_check {
                out.push_str(&format!(
                    "  last check: {} dirty / {} reused configs; witness indexes {} rebuilt / {} patched{}\n",
                    c.dirty_configs,
                    c.reused_configs,
                    c.witness_indexes_rebuilt,
                    c.witness_indexes_patched,
                    if c.resolution_invalidated {
                        "; resolution invalidated"
                    } else {
                        ""
                    },
                ));
            }
        }
        out.push_str(&format!("total: {:.3}s", self.total_time.as_secs_f64()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_fleet() -> FleetStats {
        let shards = vec![
            FleetShardStats {
                shard: 0,
                configs: 3,
                applied_seq: 7,
                reads: 20,
                writes: 5,
                robustness: RobustnessStats {
                    requests_rejected: 2,
                    deadlines_hit: 1,
                    checkpoints: 2,
                    ..RobustnessStats::default()
                },
                replicas: vec![FleetReplicaStats {
                    applied_seq: 6,
                    lag: 1,
                    resyncs: 1,
                    reads: 11,
                }],
            },
            FleetShardStats {
                shard: 1,
                configs: 1,
                applied_seq: 4,
                reads: 10,
                writes: 4,
                robustness: RobustnessStats {
                    requests_rejected: 3,
                    panics_recovered: 1,
                    ..RobustnessStats::default()
                },
                replicas: vec![FleetReplicaStats {
                    applied_seq: 4,
                    lag: 0,
                    resyncs: 0,
                    reads: 6,
                }],
            },
        ];
        let totals = FleetStats::rollup(&shards);
        FleetStats {
            shards,
            router: vec![3, 1],
            totals,
        }
    }

    fn sample() -> PipelineStats {
        PipelineStats {
            build: Some(BuildStats {
                configs: 4,
                lines: 100,
                patterns: 12,
                lex_time: Duration::from_millis(50),
                intern_time: Duration::from_millis(5),
                cache_enabled: true,
                cache_hits: 75,
                cache_misses: 25,
            }),
            learn: Some(LearnStats {
                miner_times: vec![
                    ("present".to_string(), Duration::from_millis(3)),
                    ("relational".to_string(), Duration::from_millis(9)),
                ],
                miner_parallelism: 6,
                relational_merge_time: Duration::from_millis(2),
                fanout_truncations: 17,
                relational_before_minimization: 10,
                relational_after_minimization: 4,
                ..LearnStats::default()
            }),
            check: Some(CheckStats {
                contracts: 20,
                violations: 1,
                parallelism: 8,
                check_time: Duration::from_millis(7),
                compile_time: Duration::from_micros(120),
                witness_indexes: 3,
                witness_entries: 450,
                witness_probes: 200,
                witness_probe_hits: 198,
                category_times: vec![
                    ("present".to_string(), Duration::from_millis(1)),
                    ("relational".to_string(), Duration::from_millis(4)),
                ],
            }),
            engine: Some(EngineStats {
                configs: 4,
                lines: 120,
                patterns: 12,
                contracts: Some(20),
                edits: 3,
                relearns: 1,
                dirty_configs: 1,
                staleness: 0.125,
                lex_cache_hits: 90,
                lex_cache_misses: 30,
                lex_cache_evictions: 4,
                generations: vec![("dev0".to_string(), 2), ("dev1".to_string(), 0)],
                last_check: Some(EngineCheckStats {
                    dirty_configs: 1,
                    reused_configs: 3,
                    resolution_invalidated: false,
                    witness_indexes_rebuilt: 2,
                    witness_indexes_patched: 6,
                }),
                robustness: Some(RobustnessStats {
                    requests_rejected: 5,
                    deadlines_hit: 2,
                    panics_recovered: 1,
                    wal_replays: 1,
                    wal_records_replayed: 12,
                    checkpoints: 3,
                    degraded_checks: 1,
                    persist_errors: 0,
                }),
                learn_delta: LearnDeltaStats {
                    enabled: true,
                    sketches: 3,
                    dirty: 1,
                    mined_last_learn: 2,
                    reused_last_learn: 2,
                    contracts_edits: 3,
                },
                memory: MemoryStats {
                    string_arena_bytes: 4096,
                    param_arena_bytes: 1024,
                    pattern_table_bytes: 512,
                    column_bytes: 2048,
                    interned_strings: 100,
                    interned_param_slices: 40,
                    segments_written: 7,
                    segments_skipped: 21,
                },
                storage: Some(StorageStats {
                    degraded: true,
                    faults_injected: 14,
                    retries: 6,
                    degraded_transitions: 2,
                    recoveries: 1,
                    gc_remove_errors: 3,
                }),
                serve: Some(ServeTransportStats {
                    connections: 9,
                    requests: 40,
                    batches: 2,
                    batched_requests: 16,
                    binary_frames: 8,
                    shared_reads: 30,
                    exclusive_ops: 10,
                }),
                fleet: Some(sample_fleet()),
            }),
            total_time: Duration::from_millis(80),
        }
    }

    #[test]
    fn json_shape_matches_schema() {
        let json = sample().to_json();
        assert_eq!(json["schema"].as_str(), Some(STATS_SCHEMA));
        assert!(json["total_secs"].as_f64().unwrap() > 0.0);
        assert_eq!(json["build"]["configs"].as_u64(), Some(4));
        assert_eq!(json["build"]["cache"]["hits"].as_u64(), Some(75));
        assert!((json["build"]["cache"]["hit_rate"].as_f64().unwrap() - 0.75).abs() < 1e-12);
        assert_eq!(json["learn"]["miners"][0]["name"].as_str(), Some("present"));
        assert_eq!(json["learn"]["miner_parallelism"].as_u64(), Some(6));
        assert!(json["learn"]["relational_merge_secs"].as_f64().unwrap() > 0.0);
        assert_eq!(json["learn"]["fanout_truncations"].as_u64(), Some(17));
        assert_eq!(json["check"]["violations"].as_u64(), Some(1));
        assert!(json["check"]["compile_secs"].as_f64().unwrap() > 0.0);
        assert_eq!(json["check"]["witness"]["indexes"].as_u64(), Some(3));
        assert_eq!(json["check"]["witness"]["probes"].as_u64(), Some(200));
        assert!((json["check"]["witness"]["hit_rate"].as_f64().unwrap() - 0.99).abs() < 1e-12);
        assert_eq!(
            json["check"]["categories"][1]["name"].as_str(),
            Some("relational")
        );
        assert_eq!(json["engine"]["edits"].as_u64(), Some(3));
        assert_eq!(json["engine"]["dirty_configs"].as_u64(), Some(1));
        assert_eq!(json["engine"]["lex_cache"]["hits"].as_u64(), Some(90));
        assert_eq!(json["engine"]["lex_cache"]["evictions"].as_u64(), Some(4));
        assert_eq!(json["engine"]["generations"]["dev0"].as_u64(), Some(2));
        assert_eq!(json["engine"]["generations"]["dev1"].as_u64(), Some(0));
        assert_eq!(
            json["engine"]["robustness"]["panics_recovered"].as_u64(),
            Some(1)
        );
        assert_eq!(
            json["engine"]["robustness"]["requests_rejected"].as_u64(),
            Some(5)
        );
        assert_eq!(
            json["engine"]["robustness"]["wal_records_replayed"].as_u64(),
            Some(12)
        );
        assert_eq!(
            json["engine"]["robustness"]["degraded_checks"].as_u64(),
            Some(1)
        );
        assert_eq!(
            json["engine"]["last_check"]["reused_configs"].as_u64(),
            Some(3)
        );
        assert_eq!(
            json["engine"]["last_check"]["witness_indexes_patched"].as_u64(),
            Some(6)
        );
        assert_eq!(
            json["engine"]["last_check"]["resolution_invalidated"].as_bool(),
            Some(false)
        );
        assert_eq!(
            json["engine"]["learn_delta"]["enabled"].as_bool(),
            Some(true)
        );
        assert_eq!(json["engine"]["learn_delta"]["sketches"].as_u64(), Some(3));
        assert_eq!(json["engine"]["learn_delta"]["dirty"].as_u64(), Some(1));
        assert_eq!(
            json["engine"]["learn_delta"]["mined_last_learn"].as_u64(),
            Some(2)
        );
        assert_eq!(
            json["engine"]["learn_delta"]["reused_last_learn"].as_u64(),
            Some(2)
        );
        assert_eq!(
            json["engine"]["learn_delta"]["contracts_edits"].as_u64(),
            Some(3)
        );
        assert_eq!(
            json["engine"]["memory"]["string_arena_bytes"].as_u64(),
            Some(4096)
        );
        assert_eq!(
            json["engine"]["memory"]["column_bytes"].as_u64(),
            Some(2048)
        );
        assert_eq!(
            json["engine"]["memory"]["interned_strings"].as_u64(),
            Some(100)
        );
        assert_eq!(
            json["engine"]["memory"]["segments_written"].as_u64(),
            Some(7)
        );
        assert_eq!(
            json["engine"]["memory"]["segments_skipped"].as_u64(),
            Some(21)
        );
        assert_eq!(json["engine"]["storage"]["degraded"].as_bool(), Some(true));
        assert_eq!(
            json["engine"]["storage"]["faults_injected"].as_u64(),
            Some(14)
        );
        assert_eq!(json["engine"]["storage"]["retries"].as_u64(), Some(6));
        assert_eq!(
            json["engine"]["storage"]["degraded_transitions"].as_u64(),
            Some(2)
        );
        assert_eq!(json["engine"]["storage"]["recoveries"].as_u64(), Some(1));
        assert_eq!(
            json["engine"]["storage"]["gc_remove_errors"].as_u64(),
            Some(3)
        );
        assert_eq!(json["engine"]["serve"]["connections"].as_u64(), Some(9));
        assert_eq!(json["engine"]["serve"]["batches"].as_u64(), Some(2));
        assert_eq!(
            json["engine"]["serve"]["batched_requests"].as_u64(),
            Some(16)
        );
        assert_eq!(json["engine"]["serve"]["binary_frames"].as_u64(), Some(8));
        assert_eq!(json["engine"]["serve"]["shared_reads"].as_u64(), Some(30));
        assert_eq!(json["engine"]["serve"]["exclusive_ops"].as_u64(), Some(10));
        assert_eq!(
            json["engine"]["fleet"]["shards"][0]["shard"].as_u64(),
            Some(0)
        );
        assert_eq!(
            json["engine"]["fleet"]["shards"][0]["applied_seq"].as_u64(),
            Some(7)
        );
        assert_eq!(
            json["engine"]["fleet"]["shards"][0]["replicas"][0]["lag"].as_u64(),
            Some(1)
        );
        assert_eq!(json["engine"]["fleet"]["router"][0].as_u64(), Some(3));
        assert_eq!(
            json["engine"]["fleet"]["totals"]["configs"].as_u64(),
            Some(4)
        );
        assert_eq!(
            json["engine"]["fleet"]["totals"]["robustness"]["requests_rejected"].as_u64(),
            Some(5)
        );
    }

    #[test]
    fn fleet_rollup_totals_equal_sum_of_shards() {
        let fleet = sample_fleet();
        let mut configs = 0;
        let mut reads = 0;
        let mut writes = 0;
        let mut replica_reads = 0;
        let mut max_lag = 0;
        let mut robustness = RobustnessStats::default();
        for shard in &fleet.shards {
            configs += shard.configs;
            reads += shard.reads;
            writes += shard.writes;
            robustness.accumulate(&shard.robustness);
            for replica in &shard.replicas {
                replica_reads += replica.reads;
                max_lag = max_lag.max(replica.lag);
            }
        }
        assert_eq!(fleet.totals.configs, configs);
        assert_eq!(fleet.totals.reads, reads);
        assert_eq!(fleet.totals.writes, writes);
        assert_eq!(fleet.totals.replica_reads, replica_reads);
        assert_eq!(fleet.totals.max_replica_lag, max_lag);
        assert_eq!(fleet.totals.robustness, robustness);
        assert_eq!(fleet.totals.robustness.requests_rejected, 5);
        assert_eq!(fleet.totals.robustness.deadlines_hit, 1);
        assert_eq!(fleet.totals.robustness.panics_recovered, 1);
        assert_eq!(fleet.totals.robustness.checkpoints, 2);
    }

    #[test]
    fn missing_stages_serialize_as_null() {
        let stats = PipelineStats::default();
        let json = stats.to_json();
        assert!(json["build"].is_null());
        assert!(json["learn"].is_null());
        assert!(json["check"].is_null());
        assert!(json["engine"].is_null());
    }

    #[test]
    fn text_rendering_mentions_cache() {
        let text = sample().render_text();
        assert!(text.contains("lex cache: 75 hits / 25 misses"));
        assert!(text.contains("present 0.003s"));
        assert!(text.contains("miner parallelism 6"));
        assert!(text.contains("relational merge 0.002s"));
        assert!(text.contains("fan-out truncations 17"));
        assert!(text.contains("witness indexes: 3 (450 entries)"));
        assert!(text.contains("probes: 200 (99.0% hit)"));
        assert!(text.contains("phases: present 0.001s, relational 0.004s"));
        assert!(text
            .contains("engine: 4 configs, 120 lines, 12 patterns; 3 edits, 1 relearns, 1 dirty"));
        assert!(text.contains("lex cache 90 hits / 30 misses / 4 evictions"));
        assert!(text.contains(
            "robustness: 5 rejected, 2 deadlines, 1 panics recovered, 1 WAL replays (12 records), 3 checkpoints, 1 degraded checks"
        ));
        assert!(text.contains(
            "last check: 1 dirty / 3 reused configs; witness indexes 2 rebuilt / 6 patched"
        ));
        assert!(text.contains(
            "learn delta: enabled; 3 sketches / 1 dirty; last learn mined 2 / reused 2; contracts at edit 3"
        ));
        assert!(text.contains(
            "storage: DEGRADED (read-only); 14 faults injected, 6 retries, 2 degraded transitions / 1 recoveries, 3 GC remove errors"
        ));
        assert!(text.contains(
            "serve: 9 connections, 40 requests (2 batches / 16 batched, 8 binary); 30 shared reads / 10 exclusive ops"
        ));
        assert!(
            text.contains("fleet: 2 shards; router [3, 1]; 30 reads / 9 writes"),
            "{text}"
        );
        assert!(text.contains("total:"));
    }

    #[test]
    fn hit_rate_handles_zero_lookups() {
        assert_eq!(BuildStats::default().cache_hit_rate(), 0.0);
        assert_eq!(CheckStats::default().probe_hit_rate(), 0.0);
    }
}
