//! Sequence-contract mining (§3.4).
//!
//! Sequence contracts apply to numeric parameters whose values within each
//! configuration form an equidistant, strictly increasing progression
//! (e.g. `seq 10`, `seq 20`, `seq 30`). They catch missing or reordered
//! sequence elements.

use concord_types::BigNum;

use crate::contract::Contract;
use crate::fxhash::FxHashMap;
use crate::ir::PatternId;
use crate::learn::DatasetView;
use crate::params::LearnParams;

/// Returns `true` when `values` (in order of appearance) are strictly
/// increasing and equidistant with a positive common difference.
pub(crate) fn is_sequential(values: &[&BigNum]) -> bool {
    if values.len() < 2 {
        return false;
    }
    let mut step: Option<BigNum> = None;
    for pair in values.windows(2) {
        if pair[1] <= pair[0] {
            return false;
        }
        let diff = pair[1].sub(pair[0]);
        match &step {
            None => step = Some(diff),
            Some(s) if *s == diff => {}
            Some(_) => return false,
        }
    }
    true
}

/// Per-config sequence sketch: for each eligible `(pattern, param)` (at
/// least two numeric instances), whether the config's values form a
/// sequence.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct Sketch {
    /// `(pattern, param, is_sequential)` for each eligible pair.
    pub(crate) entries: Vec<(PatternId, u16, bool)>,
}

/// Accumulates one config's sequence evidence. `lines_by_pattern` maps
/// pattern id → indices of the config's lines with that pattern.
pub(crate) fn sketch_config(
    dataset: &crate::ir::Dataset,
    ci: usize,
    lines_by_pattern: &FxHashMap<PatternId, Vec<usize>>,
) -> Sketch {
    let config = &dataset.configs[ci];
    let arenas = &dataset.arenas;
    let mut entries = Vec::new();
    for (&pattern, line_idxs) in lines_by_pattern {
        if line_idxs.len() < 2 {
            continue;
        }
        let first = config.line(arenas, line_idxs[0]);
        for (pi, param) in first.params.iter().enumerate() {
            if param.value.as_num().is_none() {
                continue;
            }
            let values: Vec<&BigNum> = line_idxs
                .iter()
                .filter_map(|&li| config.line(arenas, li).params.get(pi))
                .filter_map(|p| p.value.as_num())
                .collect();
            if values.len() != line_idxs.len() {
                continue;
            }
            entries.push((pattern, pi as u16, is_sequential(&values)));
        }
    }
    Sketch { entries }
}

/// Global accumulation folded from per-config sketches.
#[derive(Debug, Default)]
pub(crate) struct Acc {
    /// (pattern, param) -> (configs with >= 2 instances, sequential
    /// configs).
    stats: FxHashMap<(PatternId, u16), (u32, u32)>,
}

/// Folds one config's sketch into the accumulation.
pub(crate) fn fold(acc: &mut Acc, sketch: &Sketch) {
    for &(pattern, param, sequential) in &sketch.entries {
        let entry = acc.stats.entry((pattern, param)).or_insert((0, 0));
        entry.0 += 1;
        if sequential {
            entry.1 += 1;
        }
    }
}

/// Applies the support/confidence bars and renders contracts.
pub(crate) fn emit(acc: Acc, dataset: &crate::ir::Dataset, params: &LearnParams) -> Vec<Contract> {
    let mut out = Vec::new();
    for (&(pattern, param), &(support, sequential)) in &acc.stats {
        if params.accept(sequential as usize, support as usize) {
            out.push(Contract::Sequence {
                pattern: dataset.table.text(pattern).to_string(),
                param,
            });
        }
    }
    out
}

pub(crate) fn mine(view: &DatasetView<'_>, params: &LearnParams) -> Vec<Contract> {
    let mut acc = Acc::default();
    for ci in 0..view.num_configs() {
        let sketch = sketch_config(view.dataset, ci, &view.lines_by_pattern[ci]);
        fold(&mut acc, &sketch);
    }
    emit(acc, view.dataset, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Dataset;

    fn num(v: u64) -> BigNum {
        BigNum::from(v)
    }

    #[test]
    fn sequential_detection() {
        let vals = [num(10), num(20), num(30)];
        let refs: Vec<&BigNum> = vals.iter().collect();
        assert!(is_sequential(&refs));

        let vals = [num(10), num(20), num(35)];
        let refs: Vec<&BigNum> = vals.iter().collect();
        assert!(!is_sequential(&refs));

        let vals = [num(10), num(10)];
        let refs: Vec<&BigNum> = vals.iter().collect();
        assert!(!is_sequential(&refs), "zero step is not a sequence");

        let vals = [num(30), num(20), num(10)];
        let refs: Vec<&BigNum> = vals.iter().collect();
        assert!(!is_sequential(&refs), "must be increasing");

        let vals = [num(5)];
        let refs: Vec<&BigNum> = vals.iter().collect();
        assert!(!is_sequential(&refs), "singletons carry no evidence");
    }

    fn dataset(texts: &[String]) -> Dataset {
        let configs: Vec<(String, String)> = texts
            .iter()
            .enumerate()
            .map(|(i, t)| (format!("dev{i}"), t.clone()))
            .collect();
        Dataset::from_named_texts(&configs, &[]).unwrap()
    }

    #[test]
    fn learns_prefix_list_sequence() {
        let texts: Vec<String> = (0..6)
            .map(|i| {
                format!(
                    "ip prefix-list lo\n seq 10 permit 10.0.{i}.0/24\n seq 20 permit 10.1.{i}.0/24\n seq 30 permit 10.2.{i}.0/24\n"
                )
            })
            .collect();
        let ds = dataset(&texts);
        let view = DatasetView::new(&ds);
        let contracts = mine(&view, &LearnParams::default());
        assert!(contracts.iter().any(|c| matches!(
            c,
            Contract::Sequence { pattern, param: 0 } if pattern.contains("seq [a:num] permit")
        )));
    }

    #[test]
    fn non_sequential_values_not_learned() {
        let texts: Vec<String> = (0..6)
            .map(|i| {
                format!(
                    "lst\n seq {} permit 10.0.0.0/8\n seq {} permit 10.1.0.0/16\n",
                    i * 7 + 3,
                    i * 31 + 1
                )
            })
            .collect();
        let ds = dataset(&texts);
        let view = DatasetView::new(&ds);
        let contracts = mine(&view, &LearnParams::default());
        assert!(!contracts
            .iter()
            .any(|c| matches!(c, Contract::Sequence { param: 0, .. })));
    }

    #[test]
    fn single_instance_configs_carry_no_support() {
        let texts: Vec<String> = (0..8)
            .map(|i| format!("seq {} permit 10.0.0.0/8\n", 10 * (i + 1)))
            .collect();
        let ds = dataset(&texts);
        let view = DatasetView::new(&ds);
        assert!(mine(&view, &LearnParams::default()).is_empty());
    }

    #[test]
    fn different_steps_per_config_are_fine() {
        // One config steps by 10, another by 5: both are sequences.
        let mut texts: Vec<String> = (0..3)
            .map(|_| "l\n seq 10 permit 1.0.0.0/8\n seq 20 permit 2.0.0.0/8\n".to_string())
            .collect();
        texts.extend(
            (0..3).map(|_| "l\n seq 5 permit 1.0.0.0/8\n seq 10 permit 2.0.0.0/8\n".to_string()),
        );
        let ds = dataset(&texts);
        let view = DatasetView::new(&ds);
        let contracts = mine(&view, &LearnParams::default());
        assert!(contracts
            .iter()
            .any(|c| matches!(c, Contract::Sequence { param: 0, .. })));
    }
}
