//! Relational contract minimization (§3.6, Figure 5).
//!
//! Transitive relations (equality, affixes) make the learned set
//! quadratic: `n` mutually equal parameters yield `n²` valid contracts.
//! Minimization maps contracts onto a directed graph over
//! `(pattern, parameter, transformation)` nodes and keeps only a
//! reachability-preserving subset: strongly connected components are
//! rewritten as simple cycles, and the condensation DAG is transitively
//! reduced. Bug-finding power is preserved — any line removal that
//! violated an original contract still violates some kept contract.

use concord_graph::DiGraph;

use crate::contract::{PatternRef, RelationKind, RelationalContract};
use crate::fxhash::FxHashMap;
use crate::parallel;

/// Minimizes a set of relational contracts.
///
/// Each transitive relation kind forms an independent graph problem
/// (SCC + condensation + transitive reduction), so the groups run
/// concurrently on the work-stealing pool; the output keeps the
/// deterministic order (non-transitive contracts first, then groups in
/// relation-kind order) at every parallelism level.
pub(crate) fn minimize(
    contracts: Vec<RelationalContract>,
    parallelism: usize,
) -> Vec<RelationalContract> {
    let mut by_relation: FxHashMap<RelationKind, Vec<RelationalContract>> = FxHashMap::default();
    let mut out = Vec::new();
    for contract in contracts {
        if contract.relation.is_transitive() {
            by_relation
                .entry(contract.relation)
                .or_default()
                .push(contract);
        } else {
            out.push(contract);
        }
    }
    let mut relations: Vec<_> = by_relation.into_iter().collect();
    relations.sort_by_key(|(k, _)| *k);
    let minimized = parallel::map(
        &relations,
        |(relation, group)| minimize_group(*relation, group),
        parallelism,
    );
    for group in minimized {
        out.extend(group);
    }
    out
}

fn minimize_group(
    relation: RelationKind,
    contracts: &[RelationalContract],
) -> Vec<RelationalContract> {
    // Intern nodes.
    let mut node_ids: FxHashMap<&PatternRef, usize> = FxHashMap::default();
    let mut nodes: Vec<&PatternRef> = Vec::new();
    for c in contracts {
        for side in [&c.antecedent, &c.consequent] {
            if !node_ids.contains_key(side) {
                node_ids.insert(side, nodes.len());
                nodes.push(side);
            }
        }
    }

    let mut graph = DiGraph::new(nodes.len());
    for c in contracts {
        graph.add_edge(node_ids[&c.antecedent], node_ids[&c.consequent]);
    }

    let comps = graph.scc();
    let (dag, comp_of) = graph.condensation();
    let reduced = dag.transitive_reduction();

    let mut out = Vec::new();

    // Within each non-trivial SCC: a simple cycle in a deterministic
    // order. Synthesized cycle edges are sound because the relation is
    // transitive and the SCC is mutually related.
    for comp in &comps {
        if comp.len() < 2 {
            continue;
        }
        let mut ordered = comp.clone();
        ordered.sort_unstable();
        for i in 0..ordered.len() {
            let u = ordered[i];
            let v = ordered[(i + 1) % ordered.len()];
            out.push(RelationalContract {
                antecedent: nodes[u].clone(),
                consequent: nodes[v].clone(),
                relation,
            });
        }
    }

    // Between SCCs: one original contract per reduced condensation edge.
    let mut crossing: FxHashMap<(usize, usize), &RelationalContract> = FxHashMap::default();
    for c in contracts {
        let cu = comp_of[node_ids[&c.antecedent]];
        let cv = comp_of[node_ids[&c.consequent]];
        if cu != cv {
            crossing.entry((cu, cv)).or_insert(c);
        }
    }
    for (cu, cv) in reduced.edges() {
        let original = crossing
            .get(&(cu, cv))
            .expect("reduced edge must come from an original contract");
        out.push((*original).clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use concord_types::Transform;

    fn node(name: &str) -> PatternRef {
        PatternRef {
            pattern: name.to_string(),
            param: 0,
            transform: Transform::Id,
        }
    }

    fn eq(a: &str, b: &str) -> RelationalContract {
        RelationalContract {
            antecedent: node(a),
            consequent: node(b),
            relation: RelationKind::Equals,
        }
    }

    /// Returns `true` if `target` is reachable from `source` through the
    /// contract edges.
    fn reaches(contracts: &[RelationalContract], source: &str, target: &str) -> bool {
        let mut frontier = vec![source.to_string()];
        let mut seen = std::collections::HashSet::new();
        while let Some(cur) = frontier.pop() {
            if cur == target {
                return true;
            }
            if !seen.insert(cur.clone()) {
                continue;
            }
            for c in contracts {
                if c.antecedent.pattern == cur {
                    frontier.push(c.consequent.pattern.clone());
                }
            }
        }
        false
    }

    #[test]
    fn complete_equality_clique_becomes_cycle() {
        // Figure 5's p4/p5/p6: all six directed contracts collapse to a
        // 3-cycle.
        let mut contracts = Vec::new();
        for a in ["p4", "p5", "p6"] {
            for b in ["p4", "p5", "p6"] {
                if a != b {
                    contracts.push(eq(a, b));
                }
            }
        }
        let minimized = minimize(contracts.clone(), 4);
        assert_eq!(minimized.len(), 3);
        // Reachability (bug-finding) is preserved in both directions.
        for a in ["p4", "p5", "p6"] {
            for b in ["p4", "p5", "p6"] {
                if a != b {
                    assert!(reaches(&minimized, a, b), "{a} no longer reaches {b}");
                }
            }
        }
    }

    #[test]
    fn transitive_chain_loses_shortcut() {
        let contracts = vec![eq("a", "b"), eq("b", "c"), eq("a", "c")];
        let minimized = minimize(contracts, 4);
        assert_eq!(minimized.len(), 2);
        assert!(reaches(&minimized, "a", "c"));
    }

    #[test]
    fn contains_is_untouched() {
        let contains = RelationalContract {
            antecedent: node("ip"),
            consequent: node("pfx"),
            relation: RelationKind::Contains,
        };
        let minimized = minimize(vec![contains.clone()], 1);
        assert_eq!(minimized, vec![contains]);
    }

    #[test]
    fn distinct_relations_minimized_separately() {
        // An equals chain and an endswith chain over the same nodes must
        // not interfere.
        let mut contracts = vec![eq("a", "b"), eq("b", "c"), eq("a", "c")];
        contracts.push(RelationalContract {
            antecedent: node("a"),
            consequent: node("c"),
            relation: RelationKind::EndsWith,
        });
        let minimized = minimize(contracts, 4);
        let equals: Vec<_> = minimized
            .iter()
            .filter(|c| c.relation == RelationKind::Equals)
            .collect();
        let ends: Vec<_> = minimized
            .iter()
            .filter(|c| c.relation == RelationKind::EndsWith)
            .collect();
        assert_eq!(equals.len(), 2);
        assert_eq!(ends.len(), 1);
    }

    #[test]
    fn figure_5_shape() {
        // p1 <-> p2 <-> p3 all mutually equal (SCC of 3), p3 also relates
        // to an external node chain p3 -> x -> y plus shortcut p3 -> y.
        let mut contracts = Vec::new();
        for a in ["p1", "p2", "p3"] {
            for b in ["p1", "p2", "p3"] {
                if a != b {
                    contracts.push(eq(a, b));
                }
            }
        }
        contracts.push(eq("p3", "x"));
        contracts.push(eq("x", "y"));
        contracts.push(eq("p3", "y"));
        let before = contracts.len();
        let minimized = minimize(contracts, 4);
        assert!(minimized.len() < before);
        // 3-cycle + p3->x + x->y = 5.
        assert_eq!(minimized.len(), 5);
        assert!(reaches(&minimized, "p1", "y"));
    }

    #[test]
    fn empty_and_single() {
        assert!(minimize(Vec::new(), 1).is_empty());
        let single = vec![eq("a", "b")];
        assert_eq!(minimize(single.clone(), 2), single);
    }

    #[test]
    fn deterministic_output() {
        let contracts = vec![eq("a", "b"), eq("b", "a"), eq("b", "c"), eq("c", "b")];
        let a = minimize(contracts.clone(), 4);
        let b = minimize(contracts, 4);
        assert_eq!(a, b);
    }
}
