//! Range-contract mining (an extension category).
//!
//! §3.4 notes that Concord "is easy to extend ... to incorporate new
//! categories"; range contracts demonstrate the extension point. A range
//! contract asserts that a numeric parameter stays within the interval
//! observed during training (e.g. `mtu` between 1500 and 9214) — the rule
//! family that key–value learners like ConfigV center on.
//!
//! Ranges generalize poorly for identifier-like parameters (VLAN ids,
//! sequence numbers), so they are **disabled by default**
//! ([`crate::LearnParams::enable_range`]) and only learned for parameters
//! whose observed values repeat across configurations (set-like usage,
//! not identifier-like usage).

use concord_types::BigNum;

use crate::contract::Contract;
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::ir::PatternId;
use crate::learn::DatasetView;
use crate::params::LearnParams;

/// One `(pattern, param)` pair's numeric evidence within a single
/// config.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ParamSketch {
    /// Smallest value in this config.
    pub(crate) min: BigNum,
    /// Largest value in this config.
    pub(crate) max: BigNum,
    /// Total numeric instances in this config.
    pub(crate) instances: u64,
    /// Distinct values in first-occurrence order (uncapped per config;
    /// the global 64-value cap is applied at fold time, replaying the
    /// reference accumulation's insertion sequence).
    pub(crate) distinct: Vec<BigNum>,
}

/// Per-config range sketch.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct Sketch {
    /// `((pattern, param), evidence)` for each numeric pair present in
    /// the config.
    pub(crate) entries: Vec<((PatternId, u16), ParamSketch)>,
}

/// Accumulates one config's numeric evidence.
pub(crate) fn sketch_config(
    dataset: &crate::ir::Dataset,
    ci: usize,
    lines_by_pattern: &FxHashMap<PatternId, Vec<usize>>,
) -> Sketch {
    let config = &dataset.configs[ci];
    let arenas = &dataset.arenas;
    let mut entries = Vec::new();
    for (&pattern, line_idxs) in lines_by_pattern {
        let first = config.line(arenas, line_idxs[0]);
        for (pi, param) in first.params.iter().enumerate() {
            if param.value.as_num().is_none() {
                continue;
            }
            let values: Vec<&BigNum> = line_idxs
                .iter()
                .filter_map(|&li| config.line(arenas, li).params.get(pi))
                .filter_map(|p| p.value.as_num())
                .collect();
            if values.is_empty() {
                continue;
            }
            let mut ps = ParamSketch {
                min: values[0].clone(),
                max: values[0].clone(),
                instances: 0,
                distinct: Vec::new(),
            };
            let mut seen: FxHashSet<&BigNum> = FxHashSet::default();
            for v in values {
                ps.instances += 1;
                if *v < ps.min {
                    ps.min = v.clone();
                }
                if *v > ps.max {
                    ps.max = v.clone();
                }
                if seen.insert(v) {
                    ps.distinct.push(v.clone());
                }
            }
            entries.push(((pattern, pi as u16), ps));
        }
    }
    Sketch { entries }
}

/// One `(pattern, param)` pair's folded accumulation.
#[derive(Debug)]
struct AccEntry {
    min: BigNum,
    max: BigNum,
    instances: u64,
    distinct: FxHashSet<BigNum>,
    configs: u32,
}

/// Global accumulation folded from per-config sketches in config order.
#[derive(Debug, Default)]
pub(crate) struct Acc {
    stats: FxHashMap<(PatternId, u16), AccEntry>,
}

/// Folds one config's sketch into the accumulation.
pub(crate) fn fold(acc: &mut Acc, sketch: &Sketch) {
    for ((pattern, param), ps) in &sketch.entries {
        let entry = acc
            .stats
            .entry((*pattern, *param))
            .or_insert_with(|| AccEntry {
                min: ps.min.clone(),
                max: ps.max.clone(),
                instances: 0,
                distinct: FxHashSet::default(),
                configs: 0,
            });
        entry.configs += 1;
        entry.instances += ps.instances;
        if ps.min < entry.min {
            entry.min = ps.min.clone();
        }
        if ps.max > entry.max {
            entry.max = ps.max.clone();
        }
        for v in &ps.distinct {
            if entry.distinct.len() < 64 {
                entry.distinct.insert(v.clone());
            }
        }
    }
}

/// Applies the support and set-likeness bars and renders contracts.
pub(crate) fn emit(acc: Acc, dataset: &crate::ir::Dataset, params: &LearnParams) -> Vec<Contract> {
    let mut out = Vec::new();
    for (&(pattern, param), entry) in &acc.stats {
        if (entry.configs as usize) < params.support || entry.instances < 4 {
            continue;
        }
        // Identifier-like parameters have nearly as many distinct values
        // as instances; set-like parameters repeat. Only the latter form
        // meaningful ranges.
        if (entry.distinct.len() as u64) * 2 > entry.instances {
            continue;
        }
        out.push(Contract::Range {
            pattern: dataset.table.text(pattern).to_string(),
            param,
            min: entry.min.clone(),
            max: entry.max.clone(),
        });
    }
    out
}

pub(crate) fn mine(view: &DatasetView<'_>, params: &LearnParams) -> Vec<Contract> {
    let mut acc = Acc::default();
    for ci in 0..view.num_configs() {
        let sketch = sketch_config(view.dataset, ci, &view.lines_by_pattern[ci]);
        fold(&mut acc, &sketch);
    }
    emit(acc, view.dataset, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Dataset;

    fn dataset(texts: &[String]) -> Dataset {
        let configs: Vec<(String, String)> = texts
            .iter()
            .enumerate()
            .map(|(i, t)| (format!("dev{i}"), t.clone()))
            .collect();
        Dataset::from_named_texts(&configs, &[]).unwrap()
    }

    fn params() -> LearnParams {
        LearnParams {
            enable_range: true,
            ..LearnParams::default()
        }
    }

    #[test]
    fn learns_mtu_range() {
        // MTU takes one of two values across devices: a set-like range.
        let texts: Vec<String> = (0..8)
            .map(|i| format!("mtu {}\n", if i % 2 == 0 { 1500 } else { 9214 }))
            .collect();
        let ds = dataset(&texts);
        let view = DatasetView::new(&ds);
        let contracts = mine(&view, &params());
        assert_eq!(contracts.len(), 1);
        match &contracts[0] {
            Contract::Range { min, max, .. } => {
                assert_eq!(min, &BigNum::from(1500u64));
                assert_eq!(max, &BigNum::from(9214u64));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn identifier_like_values_skipped() {
        // Every device has a distinct id: a range over it is meaningless.
        let texts: Vec<String> = (0..8).map(|i| format!("vlan {}\n", 100 + i)).collect();
        let ds = dataset(&texts);
        let view = DatasetView::new(&ds);
        assert!(mine(&view, &params()).is_empty());
    }

    #[test]
    fn support_threshold_applies() {
        let texts: Vec<String> = (0..3).map(|_| "mtu 1500\n".to_string()).collect();
        let ds = dataset(&texts);
        let view = DatasetView::new(&ds);
        assert!(mine(&view, &params()).is_empty());
    }
}
