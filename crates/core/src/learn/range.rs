//! Range-contract mining (an extension category).
//!
//! §3.4 notes that Concord "is easy to extend ... to incorporate new
//! categories"; range contracts demonstrate the extension point. A range
//! contract asserts that a numeric parameter stays within the interval
//! observed during training (e.g. `mtu` between 1500 and 9214) — the rule
//! family that key–value learners like ConfigV center on.
//!
//! Ranges generalize poorly for identifier-like parameters (VLAN ids,
//! sequence numbers), so they are **disabled by default**
//! ([`crate::LearnParams::enable_range`]) and only learned for parameters
//! whose observed values repeat across configurations (set-like usage,
//! not identifier-like usage).

use concord_types::BigNum;

use crate::contract::Contract;
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::ir::PatternId;
use crate::learn::DatasetView;
use crate::params::LearnParams;

pub(crate) fn mine(view: &DatasetView<'_>, params: &LearnParams) -> Vec<Contract> {
    struct Acc {
        min: BigNum,
        max: BigNum,
        instances: u64,
        distinct: FxHashSet<BigNum>,
        configs: u32,
    }
    let mut stats: FxHashMap<(PatternId, u16), Acc> = FxHashMap::default();

    for (ci, config) in view.dataset.configs.iter().enumerate() {
        for (&pattern, line_idxs) in &view.lines_by_pattern[ci] {
            let first = &config.lines[line_idxs[0]];
            for (pi, param) in first.params.iter().enumerate() {
                if param.value.as_num().is_none() {
                    continue;
                }
                let values: Vec<&BigNum> = line_idxs
                    .iter()
                    .filter_map(|&li| config.lines[li].params.get(pi))
                    .filter_map(|p| p.value.as_num())
                    .collect();
                if values.is_empty() {
                    continue;
                }
                let acc = stats.entry((pattern, pi as u16)).or_insert_with(|| Acc {
                    min: values[0].clone(),
                    max: values[0].clone(),
                    instances: 0,
                    distinct: FxHashSet::default(),
                    configs: 0,
                });
                acc.configs += 1;
                for v in values {
                    acc.instances += 1;
                    if *v < acc.min {
                        acc.min = v.clone();
                    }
                    if *v > acc.max {
                        acc.max = v.clone();
                    }
                    if acc.distinct.len() < 64 {
                        acc.distinct.insert(v.clone());
                    }
                }
            }
        }
    }

    let mut out = Vec::new();
    for (&(pattern, param), acc) in &stats {
        if (acc.configs as usize) < params.support || acc.instances < 4 {
            continue;
        }
        // Identifier-like parameters have nearly as many distinct values
        // as instances; set-like parameters repeat. Only the latter form
        // meaningful ranges.
        if (acc.distinct.len() as u64) * 2 > acc.instances {
            continue;
        }
        out.push(Contract::Range {
            pattern: view.dataset.table.text(pattern).to_string(),
            param,
            min: acc.min.clone(),
            max: acc.max.clone(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Dataset;

    fn dataset(texts: &[String]) -> Dataset {
        let configs: Vec<(String, String)> = texts
            .iter()
            .enumerate()
            .map(|(i, t)| (format!("dev{i}"), t.clone()))
            .collect();
        Dataset::from_named_texts(&configs, &[]).unwrap()
    }

    fn params() -> LearnParams {
        LearnParams {
            enable_range: true,
            ..LearnParams::default()
        }
    }

    #[test]
    fn learns_mtu_range() {
        // MTU takes one of two values across devices: a set-like range.
        let texts: Vec<String> = (0..8)
            .map(|i| format!("mtu {}\n", if i % 2 == 0 { 1500 } else { 9214 }))
            .collect();
        let ds = dataset(&texts);
        let view = DatasetView::new(&ds);
        let contracts = mine(&view, &params());
        assert_eq!(contracts.len(), 1);
        match &contracts[0] {
            Contract::Range { min, max, .. } => {
                assert_eq!(min, &BigNum::from(1500u64));
                assert_eq!(max, &BigNum::from(9214u64));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn identifier_like_values_skipped() {
        // Every device has a distinct id: a range over it is meaningless.
        let texts: Vec<String> = (0..8).map(|i| format!("vlan {}\n", 100 + i)).collect();
        let ds = dataset(&texts);
        let view = DatasetView::new(&ds);
        assert!(mine(&view, &params()).is_empty());
    }

    #[test]
    fn support_threshold_applies() {
        let texts: Vec<String> = (0..3).map(|_| "mtu 1500\n".to_string()).collect();
        let ds = dataset(&texts);
        let view = DatasetView::new(&ds);
        assert!(mine(&view, &params()).is_empty());
    }
}
