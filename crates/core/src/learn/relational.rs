//! Relational-contract mining (§3.5).
//!
//! For every pair of patterns `p1`, `p2`, parameter positions, and
//! transformations, the candidate contract
//!
//! ```text
//! forall l1 ~ p1, exists l2 ~ p2 such that F(t1(l1.x), t2(l2.y))
//! ```
//!
//! is *never enumerated directly*. Instead each configuration is indexed
//! once ([`super::indexes::ValueIndex`]) and each antecedent value queries
//! only the entries it actually relates to, so candidates materialize
//! exactly when witnessed. Per-candidate accounting then applies the
//! support/confidence bars and the informativeness/diversity score filter.

use std::time::{Duration, Instant};

use concord_types::score::value_score;
use concord_types::Transform;

use crate::contract::{PatternRef, RelationKind, RelationalContract};
use crate::fxhash::{fx_hash_one, FxHashMap, FxHashSet};
use crate::learn::indexes::{Entry, NodeKey, TransformTag, ValueIndex};
use crate::learn::DatasetView;
use crate::parallel;
use crate::params::LearnParams;

/// A candidate relational contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct CandKey {
    pub antecedent: NodeKey,
    pub relation: RelationKind,
    pub consequent: NodeKey,
}

/// Per-candidate accumulation: valid-config count plus the first
/// [`LearnParams::max_score_witnesses`] distinct witnesses in config
/// order. The witness list invariant (distinct hashes, first-seen order,
/// capped) makes [`merge_partials`] associative over adjacent config
/// runs, so a left fold and a binary tree merge produce bit-identical
/// results — including the floating-point diversity score, which is
/// summed over the list in its (stable) order at finalization.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Partial {
    pub(crate) valid: u32,
    pub(crate) witnesses: Vec<(u64, f64)>,
    /// Hash-membership mirror of `witnesses`, materialized lazily once
    /// the list outgrows [`SEEN_THRESHOLD`]: per-config leaves hold a
    /// handful of witnesses and a linear dedup scan is faster than any
    /// set, but an accumulated run approaching the witness cap would
    /// make the scan quadratic per candidate across merge levels.
    pub(crate) seen: Option<Box<crate::fxhash::FxHashSet<u64>>>,
}

/// Witness-list length at which [`Partial::seen`] is materialized.
const SEEN_THRESHOLD: usize = 32;

/// Candidate → partial accumulation, for one config or a merged run:
/// a run sorted by packed [`cand_code`]. Sorted runs turn every tree
/// merge into a linear two-pointer join — no per-entry hashing or
/// probing while 5k-candidate maps shuffle up the tree — and the full
/// [`CandKey`] is only reconstructed once per surviving candidate at
/// finalization.
pub(crate) type PartialRun = Vec<(u128, Partial)>;

/// Per-configuration mining result, already folded into mergeable form.
pub(crate) struct LocalOutcome {
    pub(crate) partial: PartialRun,
    /// Witness records dropped by the pathological fan-out guard.
    pub(crate) truncations: u64,
}

/// The result of relational mining, with merge-phase instrumentation.
pub(crate) struct MineOutcome {
    /// The mined contracts, sorted.
    pub contracts: Vec<RelationalContract>,
    /// Wall-clock time of the global merge (tree or fold).
    pub merge_time: Duration,
    /// Witness records dropped by the per-instance fan-out guard, summed
    /// over all configurations.
    pub fanout_truncations: u64,
}

pub(crate) fn mine(view: &DatasetView<'_>, params: &LearnParams) -> MineOutcome {
    // Mine a chunk of configs concurrently, tree-merge the chunk, fold
    // it into the running accumulation, repeat. The association stays
    // pairwise-adjacent throughout — ((c0·c1)·(c2·c3))·… — so the result
    // is byte-identical at every parallelism level and to a flat fold,
    // while only one chunk of per-config partials (instead of the whole
    // fleet's) is ever resident: on large fleets the partials dwarf the
    // dataset, and keeping them all alive for one global reduce slows
    // every downstream allocation.
    let chunk_len = params.parallelism.max(1) * 2;
    let mut global: Option<PartialRun> = None;
    let mut fanout_truncations = 0u64;
    let mut merge_time = Duration::ZERO;
    let config_indices: Vec<usize> = (0..view.num_configs()).collect();
    for chunk in config_indices.chunks(chunk_len) {
        let locals = parallel::map(
            chunk,
            |&ci| mine_config(view.dataset, ci, params),
            params.parallelism,
        );
        fanout_truncations += locals.iter().map(|l| l.truncations).sum::<u64>();

        // Merge the chunk's partials up a binary tree: pairwise merges
        // of adjacent runs preserve config-order witness accounting
        // while the pairs of each level run concurrently.
        let t = Instant::now();
        let run = parallel::reduce(
            locals.into_iter().map(|l| l.partial).collect(),
            |a, b| merge_partials(a, b, params.max_score_witnesses),
            params.parallelism,
        )
        .unwrap_or_default();
        global = Some(match global {
            Some(acc) => merge_partials(acc, run, params.max_score_witnesses),
            None => run,
        });
        merge_time += t.elapsed();
    }

    MineOutcome {
        contracts: finalize(
            global.unwrap_or_default(),
            view.dataset,
            &view.config_count,
            params,
        ),
        merge_time,
        fanout_truncations,
    }
}

/// Merges two key-sorted runs, `left` holding earlier configs.
///
/// A two-pointer join: distinct keys pass through, equal keys combine —
/// valid counts add; witness lists concatenate with first-seen
/// deduplication, truncated at `cap`. Truncating eagerly is lossless: a
/// witness past position `cap` in its own run's distinct order can never
/// be among the first `cap` distinct of any longer run it is a suffix of.
pub(crate) fn merge_partials(left: PartialRun, right: PartialRun, cap: usize) -> PartialRun {
    let mut out: PartialRun = Vec::with_capacity(left.len().max(right.len()));
    let mut l = left.into_iter();
    let mut r = right.into_iter();
    let (mut lv, mut rv) = (l.next(), r.next());
    loop {
        match (lv, rv) {
            (Some(lp), Some(rp)) => match lp.0.cmp(&rp.0) {
                std::cmp::Ordering::Less => {
                    out.push(lp);
                    (lv, rv) = (l.next(), Some(rp));
                }
                std::cmp::Ordering::Greater => {
                    out.push(rp);
                    (lv, rv) = (Some(lp), r.next());
                }
                std::cmp::Ordering::Equal => {
                    out.push((lp.0, merge_one(lp.1, rp.1, cap)));
                    (lv, rv) = (l.next(), r.next());
                }
            },
            (Some(lp), None) => {
                out.push(lp);
                out.extend(l);
                break;
            }
            (None, Some(rp)) => {
                out.push(rp);
                out.extend(r);
                break;
            }
            (None, None) => break,
        }
    }
    out
}

/// Combines one candidate's accumulations; `held` precedes `incoming`
/// in config order.
fn merge_one(mut held: Partial, incoming: Partial, cap: usize) -> Partial {
    held.valid += incoming.valid;
    for (hash, score) in incoming.witnesses {
        if held.witnesses.len() >= cap {
            break;
        }
        let duplicate = match &held.seen {
            Some(set) => set.contains(&hash),
            None => held.witnesses.iter().any(|&(h, _)| h == hash),
        };
        if !duplicate {
            held.witnesses.push((hash, score));
            match &mut held.seen {
                Some(set) => {
                    set.insert(hash);
                }
                None if held.witnesses.len() >= SEEN_THRESHOLD => {
                    held.seen = Some(Box::new(held.witnesses.iter().map(|&(h, _)| h).collect()));
                }
                None => {}
            }
        }
    }
    held
}

/// Applies the support/confidence/score bars and renders contracts.
///
/// The diversity score is summed over each witness list in its stable
/// (config-order) sequence, reproducing the reference fold's running sum
/// bit-for-bit.
pub(crate) fn finalize(
    global: PartialRun,
    dataset: &crate::ir::Dataset,
    config_count: &[u32],
    params: &LearnParams,
) -> Vec<RelationalContract> {
    let scored = global.into_iter().map(|(code, stats)| {
        let score: f64 = stats.witnesses.iter().map(|&(_, s)| s).sum();
        (decode_cand(code), stats.valid, score)
    });
    finalize_scored(scored, dataset, config_count, params)
}

/// The shared tail of finalization: support/confidence/score bars, the
/// injective-transform subsumption filter, and the deterministic sort.
pub(crate) fn finalize_scored(
    scored: impl IntoIterator<Item = (CandKey, u32, f64)>,
    dataset: &crate::ir::Dataset,
    config_count: &[u32],
    params: &LearnParams,
) -> Vec<RelationalContract> {
    let mut out = Vec::new();
    for (key, valid, score) in scored {
        let support = config_count[key.antecedent.pattern.0 as usize] as usize;
        if (config_count[key.consequent.pattern.0 as usize] as usize) < params.support {
            continue;
        }
        if !params.accept(valid as usize, support) {
            continue;
        }
        if score < params.score_threshold {
            continue;
        }
        out.push(RelationalContract {
            antecedent: PatternRef {
                pattern: dataset.table.text(key.antecedent.pattern).to_string(),
                param: key.antecedent.param,
                transform: key.antecedent.transform_tag.to_transform(),
            },
            consequent: PatternRef {
                pattern: dataset.table.text(key.consequent.pattern).to_string(),
                param: key.consequent.param,
                transform: key.consequent.transform_tag.to_transform(),
            },
            relation: key.relation,
        });
    }
    // Drop equality contracts whose two sides apply the same *injective*
    // rendering transform: `equals(hex(l1.a), hex(l2.b))` holds exactly
    // when `equals(l1.a, l2.b)` does (hex is a bijection on numbers), so
    // the identity form subsumes it. `str` is injective per value type
    // but can bridge types (an address equals a string render), so it is
    // only dropped when its identity twin was also learned.
    let id_pairs: FxHashSet<(String, u16, String, u16)> = out
        .iter()
        .filter(|c| {
            c.relation == RelationKind::Equals
                && c.antecedent.transform == Transform::Id
                && c.consequent.transform == Transform::Id
        })
        .map(|c| {
            (
                c.antecedent.pattern.clone(),
                c.antecedent.param,
                c.consequent.pattern.clone(),
                c.consequent.param,
            )
        })
        .collect();
    out.retain(|c| {
        if c.relation != RelationKind::Equals || c.antecedent.transform != c.consequent.transform {
            return true;
        }
        match c.antecedent.transform {
            Transform::Hex => false,
            Transform::Str => !id_pairs.contains(&(
                c.antecedent.pattern.clone(),
                c.antecedent.param,
                c.consequent.pattern.clone(),
                c.consequent.param,
            )),
            _ => true,
        }
    });

    // The candidate map iterates in arbitrary order; sort so downstream
    // minimization (which picks representative contracts) and the final
    // contract set are deterministic across runs and parallelism levels.
    out.sort();
    out
}

/// Builds the per-configuration index and runs the query pass. Only the
/// configuration itself is consulted — no cross-config state — which is
/// what makes the result a per-config *sketch* the incremental engine
/// can persist and re-merge.
pub(crate) fn mine_config(
    dataset: &crate::ir::Dataset,
    ci: usize,
    params: &LearnParams,
) -> LocalOutcome {
    let config = &dataset.configs[ci];
    let mut index = ValueIndex::new(params.max_affix_fanout);
    let mut node_instances: FxHashMap<u64, u32> = FxHashMap::default();

    let mut transforms: Vec<Transform> = Vec::new();
    for line in config.lines(&dataset.arenas) {
        for (pi, param) in line.params.iter().enumerate() {
            let base_score = value_score(&param.value);
            Transform::enumerate_into(&param.value, &mut transforms);
            for transform in &transforms {
                let Some(value) = transform.apply(&param.value) else {
                    continue;
                };
                let node = NodeKey {
                    pattern: line.pattern,
                    param: pi as u16,
                    transform_tag: TransformTag::from_transform(transform),
                };
                *node_instances.entry(node_code(node)).or_insert(0) += 1;
                index.insert(Entry {
                    node,
                    value,
                    score: base_score * transform.score_discount(),
                });
            }
        }
    }

    // Group entries by (node, value). Entries sharing both produce an
    // identical query pass — same witnesses, same score, same fingerprint
    // — so a value repeated across a config's blocks (a constant mask on
    // every interface, say) would re-run it once per occurrence for zero
    // new information. One representative entry per group runs the
    // queries and the per-instance counters scale by the group's
    // multiplicity; groups are visited in first-occurrence entry order,
    // so the deduplicated witness stream is unchanged.
    let mut group_of: FxHashMap<(NodeKey, &concord_types::Value), u32> = FxHashMap::default();
    group_of.reserve(index.entries.len());
    let mut reps: Vec<(usize, u32)> = Vec::new();
    for (a_idx, entry) in index.entries.iter().enumerate() {
        match group_of.entry((entry.node, &entry.value)) {
            std::collections::hash_map::Entry::Occupied(slot) => {
                reps[*slot.get() as usize].1 += 1;
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(reps.len() as u32);
                reps.push((a_idx, 1));
            }
        }
    }

    // Candidate accumulation, already in mergeable form: instance count
    // plus the first `max_score_witnesses` distinct witnesses in rep
    // (= entry) order. Deduplication is a linear scan of the kept list —
    // the set of seen hashes IS the kept list's hashes (a hash is
    // recorded exactly when it is kept), and the list is capped small,
    // so a per-candidate hash set would be pure allocator churn.
    let mut candidates: FxHashMap<u128, (u32, Vec<(u64, f64)>)> = FxHashMap::default();
    let mut scratch: Vec<u32> = Vec::new();
    // Per-rep dedup keyed by the packed (relation, consequent) code — the
    // antecedent is fixed within a rep, so the 61-bit code identifies the
    // candidate. A rep satisfies ~10 candidates in practice, so a
    // linear-scanned list beats a hash map: no hashing on insert, and the
    // flush below walks it contiguously. The fan-out guard bounds the
    // scan at `fanout_cap` entries even on pathological values.
    let mut satisfied: Vec<(u64, f64)> = Vec::new();
    let mut truncations = 0u64;
    let fanout_cap = params.max_witnesses_per_instance * 8;
    // Query results depend only on the probed *value* — never on the
    // probing node — and EDGE/WAN-style fleets repeat each value across
    // several nodes (~3-4 reps per distinct value in practice). Cache
    // each value's witnesses so trie walks run once per value, and
    // pre-merge them by packed (relation, consequent) code with the max
    // consequent score: `min(a, max_c) == max_c min(a, c)`, so a rep
    // recovers its exact per-candidate score from the merged entry, and
    // the merged codes are unique, so the per-rep satisfied list needs
    // no dedup scan. The one behavior the merged form cannot replay is
    // the fan-out guard (it drops raw witnesses in scan order once the
    // satisfied list hits the cap), so a value whose merged fan-out
    // could trip it falls back to replaying the raw lists. Reps are
    // still visited in first-occurrence order, so the witness stream
    // (and hence every downstream byte) is unchanged.
    enum CachedQueries {
        /// Distinct (relation, consequent) codes with max consequent
        /// score; proven unable to trip the fan-out guard.
        Merged(Vec<(u64, f64)>),
        /// Raw per-structure witness lists, replayed with the guard.
        Raw(Vec<(RelationKind, Vec<u32>)>),
    }
    let mut query_cache: FxHashMap<&concord_types::Value, u32> = FxHashMap::default();
    let mut cached_queries: Vec<CachedQueries> = Vec::new();

    for &(a_idx, mult) in &reps {
        satisfied.clear();
        let a = &index.entries[a_idx];
        let a_node = a.node;
        let a_code = node_code(a_node);
        let a_score = a.score;

        // Ask every registered relation structure for this value's
        // witnesses (§3.5; structures are pluggable via the
        // `RelationStructure` trait) — through the by-value cache.
        let qi = match query_cache.entry(&a.value) {
            std::collections::hash_map::Entry::Occupied(slot) => *slot.get(),
            std::collections::hash_map::Entry::Vacant(slot) => {
                let mut lists = Vec::new();
                for structure in &index.structures {
                    scratch.clear();
                    if structure.query(&a.value, &mut scratch) && !scratch.is_empty() {
                        lists.push((structure.relation(), scratch.clone()));
                    }
                }
                let mut merged: Vec<(u64, f64)> = Vec::new();
                for (relation, list) in &lists {
                    for &c_idx in list {
                        let c = &index.entries[c_idx as usize];
                        let code = consequent_code(*relation, c.node);
                        match merged.iter_mut().find(|(k, _)| *k == code) {
                            Some((_, best)) => *best = best.max(c.score),
                            None => merged.push((code, c.score)),
                        }
                    }
                }
                // With fewer than `fanout_cap` distinct codes the
                // satisfied list can never reach the cap mid-scan, so
                // the guard provably never fires for ANY rep of this
                // value and the merged form is exact.
                let qi = cached_queries.len() as u32;
                cached_queries.push(if merged.len() < fanout_cap {
                    CachedQueries::Merged(merged)
                } else {
                    CachedQueries::Raw(lists)
                });
                slot.insert(qi);
                qi
            }
        };
        match &cached_queries[qi as usize] {
            CachedQueries::Merged(merged) => {
                for &(ccode, cscore) in merged {
                    // `ccode >> 2` recovers the consequent's node code;
                    // node_code is injective, so this is the same-node
                    // skip without touching `entries`.
                    if ccode >> 2 == a_code {
                        continue;
                    }
                    satisfied.push((ccode, a_score.min(cscore)));
                }
            }
            CachedQueries::Raw(lists) => {
                for (relation, list) in lists {
                    for &c_idx in list {
                        let c = &index.entries[c_idx as usize];
                        if a_node == c.node {
                            continue;
                        }
                        if satisfied.len() >= fanout_cap {
                            // Pathological fan-out guard; candidates
                            // beyond this are noise — but the drop is
                            // counted, not silent (LearnStats surfaces
                            // it).
                            truncations += u64::from(mult);
                            continue;
                        }
                        let code = consequent_code(*relation, c.node);
                        let score = a_score.min(c.score);
                        match satisfied.iter_mut().find(|(k, _)| *k == code) {
                            Some((_, best)) => *best = best.max(score),
                            None => satisfied.push((code, score)),
                        }
                    }
                }
            }
        }

        let a_hash = fx_hash_one(&a.value);
        for &(ccode, score) in &satisfied {
            let slot = candidates
                .entry(cand_code(a_code, ccode))
                .or_insert_with(|| (0, Vec::new()));
            slot.0 += mult;
            if slot.1.len() < params.max_score_witnesses
                && !slot.1.iter().any(|&(h, _)| h == a_hash)
            {
                slot.1.push((a_hash, score));
            }
        }
    }

    // Resolve each candidate's valid bit (every antecedent instance in
    // this config satisfied); the witness lists are already deduplicated
    // and capped.
    let mut partial: PartialRun = Vec::with_capacity(candidates.len());
    for (code, (count, witnesses)) in candidates {
        let antecedent = (code >> 61) as u64;
        let instances = node_instances.get(&antecedent).copied().unwrap_or(0);
        let valid = u32::from(count == instances && instances > 0);
        partial.push((
            code,
            Partial {
                valid,
                witnesses,
                seen: None,
            },
        ));
    }
    partial.sort_unstable_by_key(|&(code, _)| code);

    LocalOutcome {
        partial,
        truncations,
    }
}

/// Packs a [`NodeKey`] into an injective 59-bit code: transform tag
/// (11 bits: 3-bit discriminant + 8-bit payload), parameter index
/// (16 bits), pattern id (32 bits).
pub(crate) fn node_code(node: NodeKey) -> u64 {
    let (d, payload) = match node.transform_tag {
        TransformTag::Id => (0u64, 0u64),
        TransformTag::Hex => (1, 0),
        TransformTag::Str => (2, 0),
        TransformTag::Segment(n) => (3, u64::from(n)),
        TransformTag::Octet(n) => (4, u64::from(n)),
        TransformTag::PrefixAddr => (5, 0),
        TransformTag::PrefixLen => (6, 0),
        TransformTag::Lower => (7, 0),
    };
    (d | (payload << 3)) | (u64::from(node.param) << 11) | (u64::from(node.pattern.0) << 27)
}

/// Inverts [`node_code`].
pub(crate) fn decode_node(code: u64) -> NodeKey {
    let payload = ((code >> 3) & 0xff) as u8;
    let transform_tag = match code & 0b111 {
        0 => TransformTag::Id,
        1 => TransformTag::Hex,
        2 => TransformTag::Str,
        3 => TransformTag::Segment(payload),
        4 => TransformTag::Octet(payload),
        5 => TransformTag::PrefixAddr,
        6 => TransformTag::PrefixLen,
        _ => TransformTag::Lower,
    };
    NodeKey {
        pattern: crate::ir::PatternId((code >> 27) as u32),
        param: ((code >> 11) & 0xffff) as u16,
        transform_tag,
    }
}

/// Packs a candidate's varying half — the relation plus the consequent
/// node — into an injective 61-bit code. Within one antecedent rep this
/// code identifies the candidate, so the per-rep dedup map hashes one
/// `u64` instead of a multi-field `CandKey`.
pub(crate) fn consequent_code(relation: RelationKind, node: NodeKey) -> u64 {
    (relation as u64) | (node_code(node) << 2)
}

/// Packs a full candidate — antecedent node (59 bits) over the
/// relation + consequent code (61 bits) — into an injective 120-bit
/// code, the key of every map on the accumulate/merge path.
pub(crate) fn cand_code(antecedent: u64, consequent: u64) -> u128 {
    (u128::from(antecedent) << 61) | u128::from(consequent)
}

/// Inverts [`cand_code`] back into the full [`CandKey`].
pub(crate) fn decode_cand(code: u128) -> CandKey {
    let ccode = (code as u64) & ((1 << 61) - 1);
    let relation = match ccode & 0b11 {
        0 => RelationKind::Equals,
        1 => RelationKind::Contains,
        2 => RelationKind::StartsWith,
        _ => RelationKind::EndsWith,
    };
    CandKey {
        antecedent: decode_node((code >> 61) as u64),
        relation,
        consequent: decode_node(ccode >> 2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Dataset;

    fn dataset(texts: &[String]) -> Dataset {
        let configs: Vec<(String, String)> = texts
            .iter()
            .enumerate()
            .map(|(i, t)| (format!("dev{i}"), t.clone()))
            .collect();
        Dataset::from_named_texts(&configs, &[]).unwrap()
    }

    fn mine_texts(texts: &[String], params: &LearnParams) -> Vec<RelationalContract> {
        let ds = dataset(texts);
        let view = DatasetView::new(&ds);
        mine(&view, params).contracts
    }

    fn has_contract(
        contracts: &[RelationalContract],
        relation: RelationKind,
        antecedent_contains: &str,
        consequent_contains: &str,
    ) -> bool {
        contracts.iter().any(|c| {
            c.relation == relation
                && c.antecedent.pattern.contains(antecedent_contains)
                && c.consequent.pattern.contains(consequent_contains)
        })
    }

    #[test]
    fn learns_loopback_prefix_contains() {
        // Figure 1 contract 2: every interface address is permitted by a
        // prefix-list entry.
        let texts: Vec<String> = (0..8)
            .map(|i| {
                format!(
                    "interface Loopback0\n ip address 10.14.14.{i}\nip prefix-list loopback\n seq 10 permit 10.14.14.{i}/32\n"
                )
            })
            .collect();
        let contracts = mine_texts(&texts, &LearnParams::default());
        assert!(
            has_contract(&contracts, RelationKind::Contains, "ip address", "permit"),
            "missing contains contract in {contracts:#?}"
        );
    }

    #[test]
    fn learns_port_channel_mac_segment_equality() {
        // Figure 1 contract 1: hex(port channel number) equals the last
        // MAC segment.
        let texts: Vec<String> = (0..8)
            .map(|i| {
                let n = 100 + i * 7;
                format!(
                    "interface Port-Channel{n}\n evpn ether-segment\n  route-target import 00:00:0c:d3:00:{:02x}\n",
                    n
                )
            })
            .collect();
        let contracts = mine_texts(&texts, &LearnParams::default());
        let found = contracts.iter().any(|c| {
            c.relation == RelationKind::Equals
                && c.antecedent.pattern.contains("Port-Channel[a:num]")
                && c.antecedent.transform == Transform::Hex
                && c.consequent.pattern.contains("route-target import")
                && c.consequent.transform == Transform::Segment(6)
        });
        assert!(found, "missing hex/segment equality in {contracts:#?}");
    }

    #[test]
    fn learns_vlan_rd_endswith() {
        // Figure 1 contract 3: the route distinguisher's number ends with
        // the VLAN id.
        let texts: Vec<String> = (0..8)
            .map(|i| {
                let vlan = 251 + i;
                format!("router bgp 65015\n vlan {vlan}\n  rd 10.14.14.117:10{vlan}\n")
            })
            .collect();
        let contracts = mine_texts(&texts, &LearnParams::default());
        assert!(
            has_contract(&contracts, RelationKind::EndsWith, "vlan [a:num]", "rd "),
            "missing endswith contract in {contracts:#?}"
        );
    }

    #[test]
    fn spurious_default_route_relation_rejected() {
        // The default route 0.0.0.0/0 "contains" the RD address in every
        // config, but its informativeness is zero, so no contract should
        // relate the RD address to the catch-all prefix entry.
        let texts: Vec<String> = (0..8)
            .map(|i| {
                format!(
                    "plist\n seq 20 permit 0.0.0.0/0\nrouter bgp 65015\n vlan 251\n  rd 10.14.14.{i}:10251\n"
                )
            })
            .collect();
        let contracts = mine_texts(&texts, &LearnParams::default());
        assert!(
            !has_contract(&contracts, RelationKind::Contains, "rd ", "permit"),
            "spurious contains contract learned: {contracts:#?}"
        );
    }

    #[test]
    fn confidence_tolerates_minority_violation() {
        let mut texts: Vec<String> = (0..30).map(|i| format!("vlan {i}\nvni {i}\n")).collect();
        // One config violates the equality.
        texts.push("vlan 77\nvni 99\n".to_string());
        let contracts = mine_texts(&texts, &LearnParams::default());
        assert!(
            has_contract(&contracts, RelationKind::Equals, "vlan", "vni"),
            "equality should survive 1/31 noise: {contracts:#?}"
        );
    }

    #[test]
    fn below_confidence_rejected() {
        let texts: Vec<String> = (0..10)
            .map(|i| {
                if i % 2 == 0 {
                    format!("vlan {i}\nvni {i}\n")
                } else {
                    format!("vlan {i}\nvni {}\n", i + 100)
                }
            })
            .collect();
        let contracts = mine_texts(&texts, &LearnParams::default());
        assert!(!has_contract(
            &contracts,
            RelationKind::Equals,
            "vlan",
            "vni"
        ));
    }

    #[test]
    fn forall_requires_every_instance() {
        // Each config has two vlans but only one matching vni: the forall
        // fails in every config.
        let texts: Vec<String> = (0..8)
            .map(|i| format!("vlan {}\nvlan {}\nvni {}\n", 100 + i, 200 + i, 100 + i))
            .collect();
        let contracts = mine_texts(&texts, &LearnParams::default());
        assert!(!has_contract(
            &contracts,
            RelationKind::Equals,
            "vlan",
            "vni"
        ));
        // The reverse direction (every vni has a vlan) does hold.
        assert!(has_contract(
            &contracts,
            RelationKind::Equals,
            "vni",
            "vlan"
        ));
    }

    #[test]
    fn parallel_matches_sequential() {
        let texts: Vec<String> = (0..12)
            .map(|i| {
                format!(
                    "vlan {}\n rd 10.0.0.1:10{}\nvni {}\n",
                    250 + i,
                    250 + i,
                    250 + i
                )
            })
            .collect();
        let seq = mine_texts(&texts, &LearnParams::default());
        let par = mine_texts(
            &texts,
            &LearnParams {
                parallelism: 4,
                ..LearnParams::default()
            },
        );
        let norm = |mut v: Vec<RelationalContract>| {
            v.sort_by_key(|c| format!("{c:?}"));
            v
        };
        assert_eq!(norm(seq), norm(par));
    }

    #[test]
    fn tree_merge_matches_reference_fold() {
        // An awkward (odd, > one tree level) config count with witness
        // overlap across configs: tree-merged output must be identical to
        // the sequential left fold, at several parallelism levels —
        // including a tight witness cap where merge order could bite.
        let texts: Vec<String> = (0..13)
            .map(|i| {
                format!(
                    "vlan {}\n rd 10.0.0.1:10{}\nvni {}\nvlan 999\nvni 999\n",
                    250 + (i % 7),
                    250 + (i % 7),
                    250 + (i % 7)
                )
            })
            .collect();
        let ds = dataset(&texts);
        let view = DatasetView::new(&ds);
        for max_score_witnesses in [2, 128] {
            for parallelism in [1, 4, 8] {
                let params = LearnParams {
                    parallelism,
                    max_score_witnesses,
                    ..LearnParams::default()
                };
                let tree = mine(&view, &params);
                let ref_view = crate::learn::reference::DatasetView::new(&ds);
                let fold = crate::learn::reference::mine_relational(&ref_view, &params);
                assert_eq!(
                    tree.contracts, fold.contracts,
                    "tree merge diverges from fold at p={parallelism}, cap={max_score_witnesses}"
                );
                assert_eq!(tree.fanout_truncations, fold.fanout_truncations);
            }
        }
    }

    #[test]
    fn guard_replay_matches_reference_fold() {
        // One value shared by 14 keyword patterns: every instance
        // satisfies ~13 equality candidates, so `max_witnesses_per_instance: 1`
        // (fan-out guard = 8) trips mid-scan. That forces the by-value
        // query cache off its pre-merged fast path into the raw replay,
        // which must reproduce the guard's scan-order drops — counted
        // and witnessed — exactly as the reference fold does.
        const KEYWORDS: [&str; 14] = [
            "alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel", "india",
            "juliet", "kilo", "lima", "mike", "november",
        ];
        let texts: Vec<String> = (0..5)
            .map(|i| {
                KEYWORDS
                    .iter()
                    .map(|k| format!("{k} {}\n", 300 + i))
                    .collect::<String>()
            })
            .collect();
        let ds = dataset(&texts);
        let view = DatasetView::new(&ds);
        let mut guard_tripped = false;
        for parallelism in [1, 8] {
            let params = LearnParams {
                parallelism,
                max_witnesses_per_instance: 1,
                ..LearnParams::default()
            };
            let tree = mine(&view, &params);
            let ref_view = crate::learn::reference::DatasetView::new(&ds);
            let fold = crate::learn::reference::mine_relational(&ref_view, &params);
            assert_eq!(
                tree.contracts, fold.contracts,
                "guard replay diverges from fold at p={parallelism}"
            );
            assert_eq!(tree.fanout_truncations, fold.fanout_truncations);
            guard_tripped |= tree.fanout_truncations > 0;
        }
        assert!(
            guard_tripped,
            "the tight guard must actually truncate, or the raw replay path is untested"
        );
    }

    #[test]
    fn fanout_guard_truncations_are_counted() {
        let texts: Vec<String> = (0..8)
            .map(|i| format!("vlan {}\nvni {}\n", 100 + i, 100 + i))
            .collect();
        let ds = dataset(&texts);
        let view = DatasetView::new(&ds);
        // Default guard: nothing pathological here, nothing truncated.
        let relaxed = mine(&view, &LearnParams::default());
        assert_eq!(relaxed.fanout_truncations, 0);
        assert!(!relaxed.contracts.is_empty());
        // A zero-width guard drops every witness record — and says so.
        let strangled = mine(
            &view,
            &LearnParams {
                max_witnesses_per_instance: 0,
                ..LearnParams::default()
            },
        );
        assert!(strangled.contracts.is_empty());
        assert!(strangled.fanout_truncations > 0);
    }
}
