//! Relational-contract mining (§3.5).
//!
//! For every pair of patterns `p1`, `p2`, parameter positions, and
//! transformations, the candidate contract
//!
//! ```text
//! forall l1 ~ p1, exists l2 ~ p2 such that F(t1(l1.x), t2(l2.y))
//! ```
//!
//! is *never enumerated directly*. Instead each configuration is indexed
//! once ([`super::indexes::ValueIndex`]) and each antecedent value queries
//! only the entries it actually relates to, so candidates materialize
//! exactly when witnessed. Per-candidate accounting then applies the
//! support/confidence bars and the informativeness/diversity score filter.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};

use concord_types::score::value_score;
use concord_types::Transform;

use crate::contract::{PatternRef, RelationKind, RelationalContract};
use crate::learn::indexes::{Entry, NodeKey, TransformTag, ValueIndex};
use crate::learn::DatasetView;
use crate::parallel;
use crate::params::LearnParams;

/// A candidate relational contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CandKey {
    antecedent: NodeKey,
    relation: RelationKind,
    consequent: NodeKey,
}

/// Per-configuration mining result.
struct LocalResult {
    /// Candidate → (satisfied instance count, witness (hash, score) per
    /// instance).
    candidates: HashMap<CandKey, (u32, Vec<(u64, f64)>)>,
    /// Node → number of instances (entries) in this configuration.
    node_instances: HashMap<NodeKey, u32>,
}

pub(crate) fn mine(view: &DatasetView<'_>, params: &LearnParams) -> Vec<RelationalContract> {
    let config_indices: Vec<usize> = (0..view.num_configs()).collect();
    let locals: Vec<LocalResult> = parallel::map(
        &config_indices,
        |&ci| mine_config(view, ci, params),
        params.parallelism,
    );

    // Merge: valid-config counts and diversity-aggregated scores.
    struct Global {
        valid: u32,
        score: f64,
        seen: HashSet<u64>,
    }
    let mut global: HashMap<CandKey, Global> = HashMap::new();
    for local in locals {
        for (key, (count, witnesses)) in local.candidates {
            let instances = local
                .node_instances
                .get(&key.antecedent)
                .copied()
                .unwrap_or(0);
            let entry = global.entry(key).or_insert_with(|| Global {
                valid: 0,
                score: 0.0,
                seen: HashSet::new(),
            });
            if count == instances && instances > 0 {
                entry.valid += 1;
            }
            for (hash, score) in witnesses {
                if entry.seen.len() < params.max_score_witnesses && entry.seen.insert(hash) {
                    entry.score += score;
                }
            }
        }
    }

    let mut out = Vec::new();
    for (key, stats) in global {
        let support = view.configs_with(key.antecedent.pattern);
        if view.configs_with(key.consequent.pattern) < params.support {
            continue;
        }
        if !params.accept(stats.valid as usize, support) {
            continue;
        }
        if stats.score < params.score_threshold {
            continue;
        }
        out.push(RelationalContract {
            antecedent: PatternRef {
                pattern: view.dataset.table.text(key.antecedent.pattern).to_string(),
                param: key.antecedent.param,
                transform: key.antecedent.transform_tag.to_transform(),
            },
            consequent: PatternRef {
                pattern: view.dataset.table.text(key.consequent.pattern).to_string(),
                param: key.consequent.param,
                transform: key.consequent.transform_tag.to_transform(),
            },
            relation: key.relation,
        });
    }
    // Drop equality contracts whose two sides apply the same *injective*
    // rendering transform: `equals(hex(l1.a), hex(l2.b))` holds exactly
    // when `equals(l1.a, l2.b)` does (hex is a bijection on numbers), so
    // the identity form subsumes it. `str` is injective per value type
    // but can bridge types (an address equals a string render), so it is
    // only dropped when its identity twin was also learned.
    let id_pairs: HashSet<(String, u16, String, u16)> = out
        .iter()
        .filter(|c| {
            c.relation == RelationKind::Equals
                && c.antecedent.transform == Transform::Id
                && c.consequent.transform == Transform::Id
        })
        .map(|c| {
            (
                c.antecedent.pattern.clone(),
                c.antecedent.param,
                c.consequent.pattern.clone(),
                c.consequent.param,
            )
        })
        .collect();
    out.retain(|c| {
        if c.relation != RelationKind::Equals || c.antecedent.transform != c.consequent.transform {
            return true;
        }
        match c.antecedent.transform {
            Transform::Hex => false,
            Transform::Str => !id_pairs.contains(&(
                c.antecedent.pattern.clone(),
                c.antecedent.param,
                c.consequent.pattern.clone(),
                c.consequent.param,
            )),
            _ => true,
        }
    });

    // The candidate map iterates in arbitrary order; sort so downstream
    // minimization (which picks representative contracts) and the final
    // contract set are deterministic across runs and parallelism levels.
    out.sort();
    out
}

/// Builds the per-configuration index and runs the query pass.
fn mine_config(view: &DatasetView<'_>, ci: usize, params: &LearnParams) -> LocalResult {
    let config = &view.dataset.configs[ci];
    let mut index = ValueIndex::new(params.max_affix_fanout);
    let mut node_instances: HashMap<NodeKey, u32> = HashMap::new();

    for line in &config.lines {
        for (pi, param) in line.params.iter().enumerate() {
            let base_score = value_score(&param.value);
            for transform in Transform::enumerate_for(&param.value) {
                let Some(value) = transform.apply(&param.value) else {
                    continue;
                };
                let node = NodeKey {
                    pattern: line.pattern,
                    param: pi as u16,
                    transform_tag: TransformTag::from_transform(&transform),
                };
                *node_instances.entry(node).or_insert(0) += 1;
                index.insert(Entry {
                    node,
                    value,
                    score: base_score * transform.score_discount(),
                });
            }
        }
    }

    let mut candidates: HashMap<CandKey, (u32, Vec<(u64, f64)>)> = HashMap::new();
    let mut scratch: Vec<u32> = Vec::new();
    let mut satisfied: HashMap<CandKey, f64> = HashMap::new();

    for a_idx in 0..index.entries.len() {
        satisfied.clear();

        // Ask every registered relation structure for this value's
        // witnesses (§3.5; structures are pluggable via the
        // `RelationStructure` trait).
        for structure in &index.structures {
            scratch.clear();
            if structure.query(&index.entries[a_idx].value, &mut scratch) {
                let relation = structure.relation();
                for &c_idx in &scratch {
                    record(&index, a_idx, c_idx, relation, &mut satisfied, params);
                }
            }
        }

        let a_hash = {
            let mut h = DefaultHasher::new();
            index.entries[a_idx].value.hash(&mut h);
            h.finish()
        };
        for (&key, &score) in &satisfied {
            let slot = candidates.entry(key).or_insert_with(|| (0, Vec::new()));
            slot.0 += 1;
            slot.1.push((a_hash, score));
        }
    }

    LocalResult {
        candidates,
        node_instances,
    }
}

/// Records one witnessed relation instance, deduplicating per candidate
/// and keeping the best witness score.
fn record(
    index: &ValueIndex,
    a_idx: usize,
    c_idx: u32,
    relation: RelationKind,
    satisfied: &mut HashMap<CandKey, f64>,
    params: &LearnParams,
) {
    let a = &index.entries[a_idx];
    let c = &index.entries[c_idx as usize];
    if a.node == c.node {
        return;
    }
    if satisfied.len() >= params.max_witnesses_per_instance * 8 {
        // Pathological fan-out guard; candidates beyond this are noise.
        return;
    }
    let key = CandKey {
        antecedent: a.node,
        relation,
        consequent: c.node,
    };
    let score = a.score.min(c.score);
    satisfied
        .entry(key)
        .and_modify(|best| *best = best.max(score))
        .or_insert(score);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Dataset;

    fn dataset(texts: &[String]) -> Dataset {
        let configs: Vec<(String, String)> = texts
            .iter()
            .enumerate()
            .map(|(i, t)| (format!("dev{i}"), t.clone()))
            .collect();
        Dataset::from_named_texts(&configs, &[]).unwrap()
    }

    fn mine_texts(texts: &[String], params: &LearnParams) -> Vec<RelationalContract> {
        let ds = dataset(texts);
        let view = DatasetView::new(&ds);
        mine(&view, params)
    }

    fn has_contract(
        contracts: &[RelationalContract],
        relation: RelationKind,
        antecedent_contains: &str,
        consequent_contains: &str,
    ) -> bool {
        contracts.iter().any(|c| {
            c.relation == relation
                && c.antecedent.pattern.contains(antecedent_contains)
                && c.consequent.pattern.contains(consequent_contains)
        })
    }

    #[test]
    fn learns_loopback_prefix_contains() {
        // Figure 1 contract 2: every interface address is permitted by a
        // prefix-list entry.
        let texts: Vec<String> = (0..8)
            .map(|i| {
                format!(
                    "interface Loopback0\n ip address 10.14.14.{i}\nip prefix-list loopback\n seq 10 permit 10.14.14.{i}/32\n"
                )
            })
            .collect();
        let contracts = mine_texts(&texts, &LearnParams::default());
        assert!(
            has_contract(&contracts, RelationKind::Contains, "ip address", "permit"),
            "missing contains contract in {contracts:#?}"
        );
    }

    #[test]
    fn learns_port_channel_mac_segment_equality() {
        // Figure 1 contract 1: hex(port channel number) equals the last
        // MAC segment.
        let texts: Vec<String> = (0..8)
            .map(|i| {
                let n = 100 + i * 7;
                format!(
                    "interface Port-Channel{n}\n evpn ether-segment\n  route-target import 00:00:0c:d3:00:{:02x}\n",
                    n
                )
            })
            .collect();
        let contracts = mine_texts(&texts, &LearnParams::default());
        let found = contracts.iter().any(|c| {
            c.relation == RelationKind::Equals
                && c.antecedent.pattern.contains("Port-Channel[a:num]")
                && c.antecedent.transform == Transform::Hex
                && c.consequent.pattern.contains("route-target import")
                && c.consequent.transform == Transform::Segment(6)
        });
        assert!(found, "missing hex/segment equality in {contracts:#?}");
    }

    #[test]
    fn learns_vlan_rd_endswith() {
        // Figure 1 contract 3: the route distinguisher's number ends with
        // the VLAN id.
        let texts: Vec<String> = (0..8)
            .map(|i| {
                let vlan = 251 + i;
                format!("router bgp 65015\n vlan {vlan}\n  rd 10.14.14.117:10{vlan}\n")
            })
            .collect();
        let contracts = mine_texts(&texts, &LearnParams::default());
        assert!(
            has_contract(&contracts, RelationKind::EndsWith, "vlan [a:num]", "rd "),
            "missing endswith contract in {contracts:#?}"
        );
    }

    #[test]
    fn spurious_default_route_relation_rejected() {
        // The default route 0.0.0.0/0 "contains" the RD address in every
        // config, but its informativeness is zero, so no contract should
        // relate the RD address to the catch-all prefix entry.
        let texts: Vec<String> = (0..8)
            .map(|i| {
                format!(
                    "plist\n seq 20 permit 0.0.0.0/0\nrouter bgp 65015\n vlan 251\n  rd 10.14.14.{i}:10251\n"
                )
            })
            .collect();
        let contracts = mine_texts(&texts, &LearnParams::default());
        assert!(
            !has_contract(&contracts, RelationKind::Contains, "rd ", "permit"),
            "spurious contains contract learned: {contracts:#?}"
        );
    }

    #[test]
    fn confidence_tolerates_minority_violation() {
        let mut texts: Vec<String> = (0..30).map(|i| format!("vlan {i}\nvni {i}\n")).collect();
        // One config violates the equality.
        texts.push("vlan 77\nvni 99\n".to_string());
        let contracts = mine_texts(&texts, &LearnParams::default());
        assert!(
            has_contract(&contracts, RelationKind::Equals, "vlan", "vni"),
            "equality should survive 1/31 noise: {contracts:#?}"
        );
    }

    #[test]
    fn below_confidence_rejected() {
        let texts: Vec<String> = (0..10)
            .map(|i| {
                if i % 2 == 0 {
                    format!("vlan {i}\nvni {i}\n")
                } else {
                    format!("vlan {i}\nvni {}\n", i + 100)
                }
            })
            .collect();
        let contracts = mine_texts(&texts, &LearnParams::default());
        assert!(!has_contract(
            &contracts,
            RelationKind::Equals,
            "vlan",
            "vni"
        ));
    }

    #[test]
    fn forall_requires_every_instance() {
        // Each config has two vlans but only one matching vni: the forall
        // fails in every config.
        let texts: Vec<String> = (0..8)
            .map(|i| format!("vlan {}\nvlan {}\nvni {}\n", 100 + i, 200 + i, 100 + i))
            .collect();
        let contracts = mine_texts(&texts, &LearnParams::default());
        assert!(!has_contract(
            &contracts,
            RelationKind::Equals,
            "vlan",
            "vni"
        ));
        // The reverse direction (every vni has a vlan) does hold.
        assert!(has_contract(
            &contracts,
            RelationKind::Equals,
            "vni",
            "vlan"
        ));
    }

    #[test]
    fn parallel_matches_sequential() {
        let texts: Vec<String> = (0..12)
            .map(|i| {
                format!(
                    "vlan {}\n rd 10.0.0.1:10{}\nvni {}\n",
                    250 + i,
                    250 + i,
                    250 + i
                )
            })
            .collect();
        let seq = mine_texts(&texts, &LearnParams::default());
        let par = mine_texts(
            &texts,
            &LearnParams {
                parallelism: 4,
                ..LearnParams::default()
            },
        );
        let norm = |mut v: Vec<RelationalContract>| {
            v.sort_by_key(|c| format!("{c:?}"));
            v
        };
        assert_eq!(norm(seq), norm(par));
    }
}
