//! Contract learning (§3.3–§3.7).
//!
//! [`learn`] runs one miner per contract category over a [`Dataset`] and
//! assembles the results into a [`ContractSet`]. All miners share a
//! precomputed [`DatasetView`] (per-config pattern occurrence maps and
//! global pattern→config counts), so each miner is a single pass over the
//! data it needs.

mod minimize;
mod ordering;
mod present;
mod range;
#[cfg(any(test, feature = "reference-learn"))]
mod reference;
mod relational;
mod sequence;
mod sketch;
mod typing;
mod unique;

pub(crate) mod indexes;

pub(crate) use sequence::is_sequential as sequence_is_sequential;
pub use sketch::{
    finalize_sketches, sketch_config, sketch_params_fingerprint, ConfigSketch,
    SKETCH_FORMAT_VERSION,
};

use crate::contract::{Contract, ContractSet};
use crate::fxhash::FxHashMap;
use crate::ir::{Dataset, PatternId};
use crate::parallel;
use crate::params::LearnParams;

/// Statistics from a learning run: per-phase wall-clock durations and
/// relational-minimization counts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LearnStats {
    /// Time spent building the occurrence view.
    pub view_time: std::time::Duration,
    /// Per-miner wall-clock time, in execution order (one entry per
    /// enabled miner, including `relational`). Each miner measures its
    /// own task, so the entries stay meaningful when miners run
    /// concurrently.
    pub miner_times: Vec<(String, std::time::Duration)>,
    /// Wall-clock time of the concurrent simple-miner phase (all
    /// non-relational miners together).
    pub simple_miners_time: std::time::Duration,
    /// Worker threads used to run the simple miners concurrently.
    pub miner_parallelism: usize,
    /// Time spent mining relational candidates.
    pub relational_time: std::time::Duration,
    /// Time spent tree-merging per-config relational partial results
    /// (a sub-phase of `relational_time`).
    pub relational_merge_time: std::time::Duration,
    /// Time spent in contract minimization (§3.6).
    pub minimize_time: std::time::Duration,
    /// Relational contracts before minimization (§3.6).
    pub relational_before_minimization: usize,
    /// Relational contracts after minimization.
    pub relational_after_minimization: usize,
    /// Witness records dropped by the relational per-instance fan-out
    /// guard — nonzero means pathological fan-out trimmed candidates.
    pub fanout_truncations: u64,
}

/// Precomputed occurrence data shared by the miners.
pub(crate) struct DatasetView<'a> {
    /// The dataset being learned from.
    pub dataset: &'a Dataset,
    /// For each config: pattern id → indices of lines with that pattern.
    pub lines_by_pattern: Vec<FxHashMap<PatternId, Vec<usize>>>,
    /// For each pattern id: number of configs containing it.
    pub config_count: Vec<u32>,
}

impl<'a> DatasetView<'a> {
    pub fn new(dataset: &'a Dataset) -> Self {
        let mut lines_by_pattern = Vec::with_capacity(dataset.configs.len());
        let mut config_count = vec![0u32; dataset.table.len()];
        for config in &dataset.configs {
            let mut map: FxHashMap<PatternId, Vec<usize>> = FxHashMap::default();
            for (i, &pattern) in config.patterns().iter().enumerate() {
                map.entry(pattern).or_default().push(i);
            }
            for &pattern in map.keys() {
                config_count[pattern.0 as usize] += 1;
            }
            lines_by_pattern.push(map);
        }
        DatasetView {
            dataset,
            lines_by_pattern,
            config_count,
        }
    }

    /// Number of configurations containing `pattern`.
    #[cfg(test)]
    pub fn configs_with(&self, pattern: PatternId) -> usize {
        self.config_count[pattern.0 as usize] as usize
    }

    /// Total number of configurations.
    pub fn num_configs(&self) -> usize {
        self.dataset.configs.len()
    }
}

/// Learns a contract set from `dataset` under `params`.
///
/// The returned contracts are sorted into a stable order (category, then
/// rendered text) so learning is deterministic across runs and parallelism
/// levels.
pub fn learn(dataset: &Dataset, params: &LearnParams) -> ContractSet {
    learn_with_stats(dataset, params).0
}

/// The shared signature of the six simple (non-relational) miners.
type MinerFn = for<'a, 'b> fn(&'a DatasetView<'b>, &LearnParams) -> Vec<Contract>;

/// The simple miners in canonical execution order, with their enable
/// flags resolved against `params`.
fn enabled_miners(params: &LearnParams) -> Vec<(&'static str, MinerFn)> {
    let all: [(&'static str, bool, MinerFn); 6] = [
        ("present", params.enable_present, present::mine),
        ("ordering", params.enable_ordering, ordering::mine),
        ("type", params.enable_type, typing::mine),
        ("sequence", params.enable_sequence, sequence::mine),
        ("unique", params.enable_unique, unique::mine),
        ("range", params.enable_range, range::mine),
    ];
    all.into_iter()
        .filter(|&(_, enabled, _)| enabled)
        .map(|(name, _, mine)| (name, mine))
        .collect()
}

/// Like [`learn`], additionally reporting per-phase timing statistics.
pub fn learn_with_stats(dataset: &Dataset, params: &LearnParams) -> (ContractSet, LearnStats) {
    use std::time::Instant;
    let mut stats = LearnStats::default();

    let t = Instant::now();
    let view = DatasetView::new(dataset);
    stats.view_time = t.elapsed();

    // The simple miners are independent single passes over the shared
    // view: run them concurrently on the work-stealing pool. Each task
    // times itself, so miner_times survives the concurrency; results are
    // collected in canonical miner order regardless of completion order.
    let miners = enabled_miners(params);
    let t = Instant::now();
    let mined: Vec<(std::time::Duration, Vec<Contract>)> = parallel::map(
        &miners,
        |&(_, mine)| {
            let t = Instant::now();
            let contracts = mine(&view, params);
            (t.elapsed(), contracts)
        },
        params.parallelism,
    );
    stats.simple_miners_time = t.elapsed();
    stats.miner_parallelism = params.parallelism.clamp(1, miners.len().max(1));

    let mut contracts: Vec<Contract> = Vec::new();
    for (&(name, _), (elapsed, miner_contracts)) in miners.iter().zip(mined) {
        stats.miner_times.push((name.to_string(), elapsed));
        contracts.extend(miner_contracts);
    }

    let mut relational_before = 0;
    if params.enable_relational {
        let t = Instant::now();
        let outcome = relational::mine(&view, params);
        stats.relational_time = t.elapsed();
        stats.relational_merge_time = outcome.merge_time;
        stats.fanout_truncations = outcome.fanout_truncations;
        stats
            .miner_times
            .push(("relational".to_string(), stats.relational_time));
        relational_before = outcome.contracts.len();
        let t = Instant::now();
        let reduced = if params.minimize {
            minimize::minimize(outcome.contracts, params.parallelism)
        } else {
            outcome.contracts
        };
        stats.minimize_time = t.elapsed();
        stats.relational_after_minimization = reduced.len();
        contracts.extend(reduced.into_iter().map(Contract::Relational));
    }
    stats.relational_before_minimization = relational_before;

    contracts.sort_by(|a, b| (a.category(), a.describe()).cmp(&(b.category(), b.describe())));
    contracts.dedup();

    (
        ContractSet {
            contracts,
            relational_before_minimization: relational_before,
        },
        stats,
    )
}

/// The pre-parallelization, pre-hashing-rework reference learner: the
/// learn engine exactly as it stood before this optimization pass
/// ([`reference`] holds the verbatim pre-optimization implementation).
/// Every parallel path in [`learn`] is pinned byte-identical to this
/// oracle by the equivalence suite; it is compiled only for tests and
/// the `reference-learn` feature (the `learn_scaling` benchmark's
/// baseline).
#[cfg(any(test, feature = "reference-learn"))]
pub fn learn_reference(dataset: &Dataset, params: &LearnParams) -> ContractSet {
    reference::learn(dataset, params)
}

/// Reconstructs a line's canonical text by substituting parameter values
/// back into the holes of its pattern (used by constant learning).
pub(crate) fn fill_pattern(pattern: &str, params: &[concord_lexer::Param]) -> String {
    let mut out = String::with_capacity(pattern.len());
    fill_pattern_into(&mut out, pattern, params);
    out
}

/// [`fill_pattern`] into a caller-owned buffer, so a per-line loop can
/// reuse one allocation across the whole pass.
pub(crate) fn fill_pattern_into(out: &mut String, pattern: &str, params: &[concord_lexer::Param]) {
    let mut values = params.iter();
    let bytes = pattern.as_bytes();
    let mut pos = 0;
    while pos < pattern.len() {
        if bytes[pos] == b'[' {
            if let Some(end_rel) = pattern[pos + 1..].find(']') {
                let inner = &pattern[pos + 1..pos + 1 + end_rel];
                let is_hole = !inner.is_empty()
                    && inner.chars().all(|c| c.is_ascii_alphanumeric() || c == ':');
                if is_hole {
                    // A bound hole consumes and substitutes the next
                    // value; an anonymous (context) hole — or a bound
                    // hole with no value left — is kept as-is, written
                    // directly into `out` (no per-hole format!).
                    let value = if inner.contains(':') {
                        values.next()
                    } else {
                        None
                    };
                    match value {
                        Some(p) => p.value.render_into(out),
                        None => {
                            out.push('[');
                            out.push_str(inner);
                            out.push(']');
                        }
                    }
                    pos += end_rel + 2;
                    continue;
                }
            }
        }
        let c = pattern[pos..].chars().next().expect("in-bounds");
        out.push(c);
        pos += c.len_utf8();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Dataset;

    fn dataset(texts: &[&str]) -> Dataset {
        let configs: Vec<(String, String)> = texts
            .iter()
            .enumerate()
            .map(|(i, t)| (format!("dev{i}"), t.to_string()))
            .collect();
        Dataset::from_named_texts(&configs, &[]).unwrap()
    }

    #[test]
    fn view_counts_configs_per_pattern() {
        let ds = dataset(&["vlan 1\n", "vlan 2\nvlan 3\n", "other\n"]);
        let view = DatasetView::new(&ds);
        let vlan = ds.table.get("/vlan [a:num]").unwrap();
        assert_eq!(view.configs_with(vlan), 2);
        assert_eq!(view.num_configs(), 3);
        assert_eq!(view.lines_by_pattern[1][&vlan].len(), 2);
    }

    #[test]
    fn learn_is_deterministic() {
        let texts: Vec<String> = (0..8)
            .map(|i| format!("hostname DEV{i}\nrouter bgp 65000\n vlan {}\n", 100 + i))
            .collect();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let ds = dataset(&refs);
        let params = LearnParams::default();
        let a = learn(&ds, &params);
        let b = learn(&ds, &params);
        assert_eq!(a.contracts, b.contracts);
        assert!(!a.is_empty());
    }

    #[test]
    fn learn_matches_reference_at_all_parallelism_levels() {
        // The full pipeline (concurrent miners + tree merge + parallel
        // minimization) must be byte-identical to the sequential
        // reference learner at every parallelism level.
        let texts: Vec<String> = (0..9)
            .map(|i| {
                format!(
                    "hostname DEV{i}\ninterface Loopback0\n ip address 10.14.14.{i}\n\
                     ip prefix-list lo\n seq 10 permit 10.14.14.{i}/32\n\
                     vlan {}\n rd 10.0.0.1:10{}\nvni {}\n",
                    250 + i,
                    250 + i,
                    250 + i
                )
            })
            .collect();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let ds = dataset(&refs);
        for parallelism in [1, 3, 8] {
            let params = LearnParams {
                parallelism,
                learn_constants: true,
                ..LearnParams::default()
            };
            let optimized = learn(&ds, &params);
            let reference = learn_reference(&ds, &params);
            assert_eq!(
                optimized.contracts, reference.contracts,
                "optimized learner diverges from reference at parallelism {parallelism}"
            );
            assert!(!optimized.is_empty());
        }
    }

    #[test]
    fn disabled_categories_do_not_emit() {
        let texts: Vec<String> = (0..8).map(|i| format!("hostname DEV{i}\n")).collect();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let ds = dataset(&refs);
        let params = LearnParams {
            enable_present: false,
            enable_ordering: false,
            enable_type: false,
            enable_sequence: false,
            enable_unique: false,
            enable_relational: false,
            ..LearnParams::default()
        };
        assert!(learn(&ds, &params).is_empty());
    }

    #[test]
    fn fill_pattern_substitutes_bound_holes() {
        let ds = dataset(&["rd 1.2.3.4:55\n"]);
        let line = ds.configs[0].line(&ds.arenas, 0);
        let pattern = ds.table.text(line.pattern);
        assert_eq!(fill_pattern(pattern, line.params), "/rd 1.2.3.4:55");
    }

    #[test]
    fn fill_pattern_keeps_anonymous_holes() {
        let ds = dataset(&["interface Loopback0\n ip address 10.0.0.1\n"]);
        let line = ds.configs[0].line(&ds.arenas, 1);
        let pattern = ds.table.text(line.pattern);
        assert_eq!(
            fill_pattern(pattern, line.params),
            "/interface Loopback[num]/ip address 10.0.0.1"
        );
    }
}
