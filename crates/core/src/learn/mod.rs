//! Contract learning (§3.3–§3.7).
//!
//! [`learn`] runs one miner per contract category over a [`Dataset`] and
//! assembles the results into a [`ContractSet`]. All miners share a
//! precomputed [`DatasetView`] (per-config pattern occurrence maps and
//! global pattern→config counts), so each miner is a single pass over the
//! data it needs.

mod minimize;
mod ordering;
mod present;
mod range;
mod relational;
mod sequence;
mod typing;
mod unique;

pub(crate) mod indexes;

pub(crate) use sequence::is_sequential as sequence_is_sequential;

use std::collections::HashMap;

use crate::contract::{Contract, ContractSet};
use crate::ir::{Dataset, PatternId};
use crate::params::LearnParams;

/// Statistics from a learning run: per-phase wall-clock durations and
/// relational-minimization counts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LearnStats {
    /// Time spent building the occurrence view.
    pub view_time: std::time::Duration,
    /// Per-miner wall-clock time, in execution order (one entry per
    /// enabled miner, including `relational`).
    pub miner_times: Vec<(String, std::time::Duration)>,
    /// Time spent in the non-relational miners combined.
    pub simple_miners_time: std::time::Duration,
    /// Time spent mining relational candidates.
    pub relational_time: std::time::Duration,
    /// Time spent in contract minimization (§3.6).
    pub minimize_time: std::time::Duration,
    /// Relational contracts before minimization (§3.6).
    pub relational_before_minimization: usize,
    /// Relational contracts after minimization.
    pub relational_after_minimization: usize,
}

/// Precomputed occurrence data shared by the miners.
pub(crate) struct DatasetView<'a> {
    /// The dataset being learned from.
    pub dataset: &'a Dataset,
    /// For each config: pattern id → indices of lines with that pattern.
    pub lines_by_pattern: Vec<HashMap<PatternId, Vec<usize>>>,
    /// For each pattern id: number of configs containing it.
    pub config_count: Vec<u32>,
}

impl<'a> DatasetView<'a> {
    pub fn new(dataset: &'a Dataset) -> Self {
        let mut lines_by_pattern = Vec::with_capacity(dataset.configs.len());
        let mut config_count = vec![0u32; dataset.table.len()];
        for config in &dataset.configs {
            let mut map: HashMap<PatternId, Vec<usize>> = HashMap::new();
            for (i, line) in config.lines.iter().enumerate() {
                map.entry(line.pattern).or_default().push(i);
            }
            for &pattern in map.keys() {
                config_count[pattern.0 as usize] += 1;
            }
            lines_by_pattern.push(map);
        }
        DatasetView {
            dataset,
            lines_by_pattern,
            config_count,
        }
    }

    /// Number of configurations containing `pattern`.
    pub fn configs_with(&self, pattern: PatternId) -> usize {
        self.config_count[pattern.0 as usize] as usize
    }

    /// Total number of configurations.
    pub fn num_configs(&self) -> usize {
        self.dataset.configs.len()
    }
}

/// Learns a contract set from `dataset` under `params`.
///
/// The returned contracts are sorted into a stable order (category, then
/// rendered text) so learning is deterministic across runs and parallelism
/// levels.
pub fn learn(dataset: &Dataset, params: &LearnParams) -> ContractSet {
    learn_with_stats(dataset, params).0
}

/// Like [`learn`], additionally reporting per-phase timing statistics.
pub fn learn_with_stats(dataset: &Dataset, params: &LearnParams) -> (ContractSet, LearnStats) {
    use std::time::Instant;
    let mut stats = LearnStats::default();

    let t = Instant::now();
    let view = DatasetView::new(dataset);
    stats.view_time = t.elapsed();

    let t = Instant::now();
    let mut contracts: Vec<Contract> = Vec::new();
    {
        // Each enabled miner is timed individually for PipelineStats.
        let mut run_miner = |name: &str, enabled: bool, mine: &dyn Fn() -> Vec<Contract>| {
            if enabled {
                let t = Instant::now();
                contracts.extend(mine());
                stats.miner_times.push((name.to_string(), t.elapsed()));
            }
        };
        run_miner("present", params.enable_present, &|| {
            present::mine(&view, params)
        });
        run_miner("ordering", params.enable_ordering, &|| {
            ordering::mine(&view, params)
        });
        run_miner("type", params.enable_type, &|| typing::mine(&view, params));
        run_miner("sequence", params.enable_sequence, &|| {
            sequence::mine(&view, params)
        });
        run_miner("unique", params.enable_unique, &|| {
            unique::mine(&view, params)
        });
        run_miner("range", params.enable_range, &|| range::mine(&view, params));
    }
    stats.simple_miners_time = t.elapsed();

    let mut relational_before = 0;
    if params.enable_relational {
        let t = Instant::now();
        let mined = relational::mine(&view, params);
        stats.relational_time = t.elapsed();
        stats
            .miner_times
            .push(("relational".to_string(), stats.relational_time));
        relational_before = mined.len();
        let t = Instant::now();
        let reduced = if params.minimize {
            minimize::minimize(mined)
        } else {
            mined
        };
        stats.minimize_time = t.elapsed();
        stats.relational_after_minimization = reduced.len();
        contracts.extend(reduced.into_iter().map(Contract::Relational));
    }
    stats.relational_before_minimization = relational_before;

    contracts.sort_by(|a, b| (a.category(), a.describe()).cmp(&(b.category(), b.describe())));
    contracts.dedup();

    (
        ContractSet {
            contracts,
            relational_before_minimization: relational_before,
        },
        stats,
    )
}

/// Reconstructs a line's canonical text by substituting parameter values
/// back into the holes of its pattern (used by constant learning).
pub(crate) fn fill_pattern(pattern: &str, params: &[concord_lexer::Param]) -> String {
    let mut values = params.iter();
    let mut out = String::with_capacity(pattern.len());
    let bytes = pattern.as_bytes();
    let mut pos = 0;
    while pos < pattern.len() {
        if bytes[pos] == b'[' {
            if let Some(end_rel) = pattern[pos + 1..].find(']') {
                let inner = &pattern[pos + 1..pos + 1 + end_rel];
                let is_hole = !inner.is_empty()
                    && inner.chars().all(|c| c.is_ascii_alphanumeric() || c == ':');
                if is_hole {
                    if inner.contains(':') {
                        // A bound hole: substitute the next value.
                        match values.next() {
                            Some(p) => out.push_str(&p.value.render()),
                            None => out.push_str(&format!("[{inner}]")),
                        }
                    } else {
                        // Anonymous (context) hole: keep as-is.
                        out.push_str(&format!("[{inner}]"));
                    }
                    pos += end_rel + 2;
                    continue;
                }
            }
        }
        let c = pattern[pos..].chars().next().expect("in-bounds");
        out.push(c);
        pos += c.len_utf8();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Dataset;

    fn dataset(texts: &[&str]) -> Dataset {
        let configs: Vec<(String, String)> = texts
            .iter()
            .enumerate()
            .map(|(i, t)| (format!("dev{i}"), t.to_string()))
            .collect();
        Dataset::from_named_texts(&configs, &[]).unwrap()
    }

    #[test]
    fn view_counts_configs_per_pattern() {
        let ds = dataset(&["vlan 1\n", "vlan 2\nvlan 3\n", "other\n"]);
        let view = DatasetView::new(&ds);
        let vlan = ds.table.get("/vlan [a:num]").unwrap();
        assert_eq!(view.configs_with(vlan), 2);
        assert_eq!(view.num_configs(), 3);
        assert_eq!(view.lines_by_pattern[1][&vlan].len(), 2);
    }

    #[test]
    fn learn_is_deterministic() {
        let texts: Vec<String> = (0..8)
            .map(|i| format!("hostname DEV{i}\nrouter bgp 65000\n vlan {}\n", 100 + i))
            .collect();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let ds = dataset(&refs);
        let params = LearnParams::default();
        let a = learn(&ds, &params);
        let b = learn(&ds, &params);
        assert_eq!(a.contracts, b.contracts);
        assert!(!a.is_empty());
    }

    #[test]
    fn disabled_categories_do_not_emit() {
        let texts: Vec<String> = (0..8).map(|i| format!("hostname DEV{i}\n")).collect();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let ds = dataset(&refs);
        let params = LearnParams {
            enable_present: false,
            enable_ordering: false,
            enable_type: false,
            enable_sequence: false,
            enable_unique: false,
            enable_relational: false,
            ..LearnParams::default()
        };
        assert!(learn(&ds, &params).is_empty());
    }

    #[test]
    fn fill_pattern_substitutes_bound_holes() {
        let ds = dataset(&["rd 1.2.3.4:55\n"]);
        let line = &ds.configs[0].lines[0];
        let pattern = ds.table.text(line.pattern);
        assert_eq!(fill_pattern(pattern, &line.params), "/rd 1.2.3.4:55");
    }

    #[test]
    fn fill_pattern_keeps_anonymous_holes() {
        let ds = dataset(&["interface Loopback0\n ip address 10.0.0.1\n"]);
        let line = &ds.configs[0].lines[1];
        let pattern = ds.table.text(line.pattern);
        assert_eq!(
            fill_pattern(pattern, &line.params),
            "/interface Loopback[num]/ip address 10.0.0.1"
        );
    }
}
