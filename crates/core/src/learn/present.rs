//! Present-contract mining (§3.4).
//!
//! `exists l ~ p`: Concord tracks every pattern used in each configuration
//! and extracts those appearing in at least `C`% of the configurations
//! (and at least `S` configurations). With constant learning enabled (§4),
//! the same is additionally done over exact line text, which captures
//! globally shared "magic constant" policies.

use crate::contract::Contract;
use crate::fxhash::FxHashMap;
use crate::learn::{fill_pattern_into, DatasetView};
use crate::params::LearnParams;

pub(crate) fn mine(view: &DatasetView<'_>, params: &LearnParams) -> Vec<Contract> {
    let total = view.num_configs();
    let required = params.required_valid(total);
    let mut out = Vec::new();

    for (id, text) in view.dataset.table.iter() {
        let count = view.configs_with(id);
        if count >= params.support && count >= required {
            out.push(Contract::Present {
                pattern: text.to_string(),
            });
        }
    }

    if params.learn_constants {
        // Count exact filled-line occurrences per config (set semantics:
        // a line appearing twice in one config counts once — tracked by
        // remembering the last config that counted each line, so the
        // whole pass fills one reused buffer and allocates only per
        // *distinct* line).
        let mut line_configs: FxHashMap<String, (u32, u32)> = FxHashMap::default();
        let mut buf = String::new();
        for (ci, config) in view.dataset.configs.iter().enumerate() {
            let ci = ci as u32;
            for line in &config.lines {
                buf.clear();
                fill_pattern_into(
                    &mut buf,
                    view.dataset.table.text(line.pattern),
                    &line.params,
                );
                match line_configs.get_mut(buf.as_str()) {
                    Some(slot) => {
                        if slot.1 != ci {
                            slot.0 += 1;
                            slot.1 = ci;
                        }
                    }
                    None => {
                        line_configs.insert(buf.clone(), (1, ci));
                    }
                }
            }
        }
        for (line, (count, _)) in line_configs {
            let count = count as usize;
            if count >= params.support && count >= required {
                // Skip lines whose pattern has no holes: the plain Present
                // contract already covers them exactly.
                if line.contains('[') || {
                    let pattern_id = view.dataset.table.get(&line);
                    pattern_id.is_none()
                } {
                    out.push(Contract::PresentExact { line });
                } else {
                    continue;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Dataset;

    fn dataset(texts: &[String]) -> Dataset {
        let configs: Vec<(String, String)> = texts
            .iter()
            .enumerate()
            .map(|(i, t)| (format!("dev{i}"), t.clone()))
            .collect();
        Dataset::from_named_texts(&configs, &[]).unwrap()
    }

    fn present_patterns(contracts: &[Contract]) -> Vec<&str> {
        contracts
            .iter()
            .filter_map(|c| match c {
                Contract::Present { pattern } => Some(pattern.as_str()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn learns_universal_pattern() {
        let texts: Vec<String> = (0..6).map(|i| format!("router bgp 6500{i}\n")).collect();
        let ds = dataset(&texts);
        let view = DatasetView::new(&ds);
        let contracts = mine(&view, &LearnParams::default());
        assert_eq!(present_patterns(&contracts), vec!["/router bgp [a:num]"]);
    }

    #[test]
    fn respects_support_threshold() {
        // Only 4 configs: below the default support of 5.
        let texts: Vec<String> = (0..4).map(|i| format!("vlan {i}\n")).collect();
        let ds = dataset(&texts);
        let view = DatasetView::new(&ds);
        assert!(mine(&view, &LearnParams::default()).is_empty());
    }

    #[test]
    fn respects_confidence_threshold() {
        // Pattern present in 5 of 6 configs: 83% < 96%.
        let mut texts: Vec<String> = (0..5).map(|i| format!("vlan {i}\n")).collect();
        texts.push("other line\n".to_string());
        let ds = dataset(&texts);
        let view = DatasetView::new(&ds);
        let contracts = mine(&view, &LearnParams::default());
        assert!(present_patterns(&contracts).is_empty());
    }

    #[test]
    fn tolerates_noise_within_confidence() {
        // Pattern in 25 of 25 configs, one config also has an extra line.
        let mut texts: Vec<String> = (0..24).map(|i| format!("vlan {i}\n")).collect();
        texts.push("vlan 99\nextra\n".to_string());
        let ds = dataset(&texts);
        let view = DatasetView::new(&ds);
        let contracts = mine(&view, &LearnParams::default());
        // `vlan` is universal; `extra` (1/25 = 4%) is not learned.
        assert_eq!(present_patterns(&contracts), vec!["/vlan [a:num]"]);
    }

    #[test]
    fn constant_learning_adds_exact_lines() {
        let texts: Vec<String> = (0..6)
            .map(|_| "seq 20 permit 0.0.0.0/0\n".to_string())
            .collect();
        let ds = dataset(&texts);
        let view = DatasetView::new(&ds);
        let params = LearnParams {
            learn_constants: true,
            ..LearnParams::default()
        };
        let contracts = mine(&view, &params);
        assert!(contracts.iter().any(|c| matches!(
            c,
            Contract::PresentExact { line } if line == "/seq 20 permit 0.0.0.0/0"
        )));
    }

    #[test]
    fn constant_learning_skips_varying_lines() {
        let texts: Vec<String> = (0..6).map(|i| format!("hostname DEV{i}\n")).collect();
        let ds = dataset(&texts);
        let view = DatasetView::new(&ds);
        let params = LearnParams {
            learn_constants: true,
            ..LearnParams::default()
        };
        let contracts = mine(&view, &params);
        assert!(!contracts
            .iter()
            .any(|c| matches!(c, Contract::PresentExact { .. })));
    }
}
