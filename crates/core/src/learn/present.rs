//! Present-contract mining (§3.4).
//!
//! `exists l ~ p`: Concord tracks every pattern used in each configuration
//! and extracts those appearing in at least `C`% of the configurations
//! (and at least `S` configurations). With constant learning enabled (§4),
//! the same is additionally done over exact line text, which captures
//! globally shared "magic constant" policies.

use crate::contract::Contract;
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::ir::Dataset;
use crate::learn::{fill_pattern_into, DatasetView};
use crate::params::LearnParams;

/// Per-config present sketch. The pattern-occurrence half of present
/// mining folds from [`crate::learn::sketch::ConfigSketch::patterns`];
/// this sketch carries only the constant-learning half: the config's
/// distinct filled-line texts (set semantics — a line appearing twice in
/// one config counts once).
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct Sketch {
    /// Distinct filled lines of this config, in first-occurrence order.
    pub(crate) constants: Vec<String>,
}

/// Accumulates one config's present sketch (constant learning only; the
/// sketch is empty when `learn_constants` is off).
pub(crate) fn sketch_config(dataset: &Dataset, ci: usize, params: &LearnParams) -> Sketch {
    let mut constants = Vec::new();
    if params.learn_constants {
        let mut seen: FxHashSet<String> = FxHashSet::default();
        let mut buf = String::new();
        for line in dataset.configs[ci].lines(&dataset.arenas) {
            buf.clear();
            fill_pattern_into(&mut buf, dataset.table.text(line.pattern), line.params);
            if !seen.contains(buf.as_str()) {
                seen.insert(buf.clone());
                constants.push(buf.clone());
            }
        }
    }
    Sketch { constants }
}

/// Global accumulation folded from per-config sketches in config order.
#[derive(Debug, Default)]
pub(crate) struct Acc {
    /// Filled line → number of configs containing it.
    line_configs: FxHashMap<String, u32>,
}

/// Folds one config's sketch into the accumulation.
pub(crate) fn fold(acc: &mut Acc, sketch: &Sketch) {
    for line in &sketch.constants {
        match acc.line_configs.get_mut(line.as_str()) {
            Some(count) => *count += 1,
            None => {
                acc.line_configs.insert(line.clone(), 1);
            }
        }
    }
}

/// Applies the support/confidence bars and renders contracts.
pub(crate) fn emit(
    acc: Acc,
    dataset: &Dataset,
    config_count: &[u32],
    num_configs: usize,
    params: &LearnParams,
) -> Vec<Contract> {
    let required = params.required_valid(num_configs);
    let mut out = Vec::new();

    for (id, text) in dataset.table.iter() {
        let count = config_count[id.0 as usize] as usize;
        if count >= params.support && count >= required {
            out.push(Contract::Present {
                pattern: text.to_string(),
            });
        }
    }

    for (line, count) in acc.line_configs {
        let count = count as usize;
        if count >= params.support && count >= required {
            // Skip lines whose pattern has no holes: the plain Present
            // contract already covers them exactly.
            if line.contains('[') || {
                let pattern_id = dataset.table.get(&line);
                pattern_id.is_none()
            } {
                out.push(Contract::PresentExact { line });
            } else {
                continue;
            }
        }
    }
    out
}

pub(crate) fn mine(view: &DatasetView<'_>, params: &LearnParams) -> Vec<Contract> {
    let mut acc = Acc::default();
    if params.learn_constants {
        for ci in 0..view.num_configs() {
            let sketch = sketch_config(view.dataset, ci, params);
            fold(&mut acc, &sketch);
        }
    }
    emit(
        acc,
        view.dataset,
        &view.config_count,
        view.num_configs(),
        params,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Dataset;

    fn dataset(texts: &[String]) -> Dataset {
        let configs: Vec<(String, String)> = texts
            .iter()
            .enumerate()
            .map(|(i, t)| (format!("dev{i}"), t.clone()))
            .collect();
        Dataset::from_named_texts(&configs, &[]).unwrap()
    }

    fn present_patterns(contracts: &[Contract]) -> Vec<&str> {
        contracts
            .iter()
            .filter_map(|c| match c {
                Contract::Present { pattern } => Some(pattern.as_str()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn learns_universal_pattern() {
        let texts: Vec<String> = (0..6).map(|i| format!("router bgp 6500{i}\n")).collect();
        let ds = dataset(&texts);
        let view = DatasetView::new(&ds);
        let contracts = mine(&view, &LearnParams::default());
        assert_eq!(present_patterns(&contracts), vec!["/router bgp [a:num]"]);
    }

    #[test]
    fn respects_support_threshold() {
        // Only 4 configs: below the default support of 5.
        let texts: Vec<String> = (0..4).map(|i| format!("vlan {i}\n")).collect();
        let ds = dataset(&texts);
        let view = DatasetView::new(&ds);
        assert!(mine(&view, &LearnParams::default()).is_empty());
    }

    #[test]
    fn respects_confidence_threshold() {
        // Pattern present in 5 of 6 configs: 83% < 96%.
        let mut texts: Vec<String> = (0..5).map(|i| format!("vlan {i}\n")).collect();
        texts.push("other line\n".to_string());
        let ds = dataset(&texts);
        let view = DatasetView::new(&ds);
        let contracts = mine(&view, &LearnParams::default());
        assert!(present_patterns(&contracts).is_empty());
    }

    #[test]
    fn tolerates_noise_within_confidence() {
        // Pattern in 25 of 25 configs, one config also has an extra line.
        let mut texts: Vec<String> = (0..24).map(|i| format!("vlan {i}\n")).collect();
        texts.push("vlan 99\nextra\n".to_string());
        let ds = dataset(&texts);
        let view = DatasetView::new(&ds);
        let contracts = mine(&view, &LearnParams::default());
        // `vlan` is universal; `extra` (1/25 = 4%) is not learned.
        assert_eq!(present_patterns(&contracts), vec!["/vlan [a:num]"]);
    }

    #[test]
    fn constant_learning_adds_exact_lines() {
        let texts: Vec<String> = (0..6)
            .map(|_| "seq 20 permit 0.0.0.0/0\n".to_string())
            .collect();
        let ds = dataset(&texts);
        let view = DatasetView::new(&ds);
        let params = LearnParams {
            learn_constants: true,
            ..LearnParams::default()
        };
        let contracts = mine(&view, &params);
        assert!(contracts.iter().any(|c| matches!(
            c,
            Contract::PresentExact { line } if line == "/seq 20 permit 0.0.0.0/0"
        )));
    }

    #[test]
    fn constant_learning_skips_varying_lines() {
        let texts: Vec<String> = (0..6).map(|i| format!("hostname DEV{i}\n")).collect();
        let ds = dataset(&texts);
        let view = DatasetView::new(&ds);
        let params = LearnParams {
            learn_constants: true,
            ..LearnParams::default()
        };
        let contracts = mine(&view, &params);
        assert!(!contracts
            .iter()
            .any(|c| matches!(c, Contract::PresentExact { .. })));
    }
}
