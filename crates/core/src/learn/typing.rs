//! Type-contract mining (§3.4).
//!
//! Misconfigurations often manifest as type errors (an IPv4 prefix where an
//! address belongs). Concord rewrites every pattern to a type-agnostic
//! form (`ip address [a:ip4]` → `ip address [?]`), tallies the concrete
//! types used at each hole, and deems a type invalid when it appears in
//! fewer than `(100 − C)%` of uses. The learned contract records the
//! *valid* types, so checking also flags types never seen in training.
//!
//! A contract is only emitted for holes where at least two distinct types
//! were observed — a hole that only ever held one type generates no
//! evidence of a type *choice*, and emitting a contract per pattern hole
//! would drown the output.

use concord_lexer::type_agnostic_pattern;
use concord_types::ValueType;

use crate::contract::Contract;
use crate::fxhash::FxHashMap;
use crate::learn::DatasetView;
use crate::params::LearnParams;

/// Per-hole type usage: one `(type, count)` tally list per bound hole.
pub(crate) type HoleTypeCounts = Vec<Vec<(ValueType, u64)>>;

/// Per-config typing sketch: for each type-agnostic pattern appearing in
/// the config, per-hole type usage counts within this config.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct Sketch {
    /// `(agnostic pattern, per-hole type counts)`.
    pub(crate) groups: Vec<(String, HoleTypeCounts)>,
}

/// Accumulates one config's type usage.
pub(crate) fn sketch_config(dataset: &crate::ir::Dataset, ci: usize) -> Sketch {
    let mut groups: FxHashMap<String, Vec<FxHashMap<ValueType, u64>>> = FxHashMap::default();
    for line in dataset.configs[ci].lines(&dataset.arenas) {
        if line.params.is_empty() {
            continue;
        }
        let agnostic = type_agnostic_pattern(dataset.table.text(line.pattern));
        let hole_types = groups.entry(agnostic).or_default();
        // Holes of the *bound* parameters: anonymous context holes are
        // part of the agnostic text too, so index bound holes by
        // their position among bound params only.
        if hole_types.len() < line.params.len() {
            hole_types.resize_with(line.params.len(), FxHashMap::default);
        }
        for (i, param) in line.params.iter().enumerate() {
            *hole_types[i].entry(param.ty.clone()).or_insert(0) += 1;
        }
    }
    Sketch {
        groups: groups
            .into_iter()
            .map(|(agnostic, holes)| {
                (
                    agnostic,
                    holes
                        .into_iter()
                        .map(|counts| counts.into_iter().collect())
                        .collect(),
                )
            })
            .collect(),
    }
}

/// One agnostic pattern's folded accumulation.
#[derive(Debug, Default)]
struct Group {
    hole_types: Vec<FxHashMap<ValueType, u64>>,
    configs: u32,
}

/// Global accumulation folded from per-config sketches.
#[derive(Debug, Default)]
pub(crate) struct Acc {
    /// agnostic pattern -> per-hole type usage counts, plus config
    /// support.
    groups: FxHashMap<String, Group>,
}

/// Folds one config's sketch into the accumulation.
pub(crate) fn fold(acc: &mut Acc, sketch: &Sketch) {
    for (agnostic, holes) in &sketch.groups {
        let group = match acc.groups.get_mut(agnostic.as_str()) {
            Some(group) => group,
            None => acc.groups.entry(agnostic.clone()).or_default(),
        };
        group.configs += 1;
        if group.hole_types.len() < holes.len() {
            group
                .hole_types
                .resize_with(holes.len(), FxHashMap::default);
        }
        for (i, counts) in holes.iter().enumerate() {
            for (ty, count) in counts {
                *group.hole_types[i].entry(ty.clone()).or_insert(0) += count;
            }
        }
    }
}

/// Applies the support/confidence bars and renders contracts.
pub(crate) fn emit(acc: Acc, params: &LearnParams) -> Vec<Contract> {
    let mut out = Vec::new();
    for (agnostic, group) in acc.groups {
        if (group.configs as usize) < params.support {
            continue;
        }
        for (hole, types) in group.hole_types.iter().enumerate() {
            if types.len() < 2 {
                continue;
            }
            let total: u64 = types.values().sum();
            let min_freq = (1.0 - params.confidence) * total as f64;
            let mut valid: Vec<ValueType> = types
                .iter()
                .filter(|&(_, &count)| count as f64 >= min_freq)
                .map(|(ty, _)| ty.clone())
                .collect();
            if valid.is_empty() || valid.len() == types.len() {
                // Either everything is rare (degenerate) or nothing is:
                // no restriction to enforce.
                continue;
            }
            valid.sort();
            out.push(Contract::Type {
                pattern: agnostic.clone(),
                hole: hole as u16,
                valid,
            });
        }
    }
    out
}

pub(crate) fn mine(view: &DatasetView<'_>, params: &LearnParams) -> Vec<Contract> {
    let mut acc = Acc::default();
    for ci in 0..view.num_configs() {
        let sketch = sketch_config(view.dataset, ci);
        fold(&mut acc, &sketch);
    }
    emit(acc, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Dataset;

    fn dataset(texts: &[String]) -> Dataset {
        let configs: Vec<(String, String)> = texts
            .iter()
            .enumerate()
            .map(|(i, t)| (format!("dev{i}"), t.clone()))
            .collect();
        Dataset::from_named_texts(&configs, &[]).unwrap()
    }

    #[test]
    fn flags_rare_mistyped_value() {
        // 49 configs use an address, one uses a prefix by mistake.
        let mut texts: Vec<String> = (0..49)
            .map(|i| format!("ip address 10.0.0.{}\n", i + 1))
            .collect();
        texts.push("ip address 10.0.0.0/24\n".to_string());
        let ds = dataset(&texts);
        let view = DatasetView::new(&ds);
        let contracts = mine(&view, &LearnParams::default());
        assert_eq!(contracts.len(), 1);
        match &contracts[0] {
            Contract::Type {
                pattern,
                hole,
                valid,
            } => {
                assert_eq!(pattern, "/ip address [?]");
                assert_eq!(*hole, 0);
                assert_eq!(valid, &vec![ValueType::Ip4]);
            }
            other => panic!("unexpected contract {other:?}"),
        }
    }

    #[test]
    fn dual_stack_types_both_valid() {
        // Half v4, half v6: both types are frequent, nothing to flag, but
        // the contract still records the two valid types... and since
        // valid == observed, no restriction exists and nothing is emitted.
        let texts: Vec<String> = (0..20)
            .map(|i| {
                if i % 2 == 0 {
                    format!("neighbor 10.0.0.{i} up\n")
                } else {
                    format!("neighbor fe80::{i:x} up\n")
                }
            })
            .collect();
        let ds = dataset(&texts);
        let view = DatasetView::new(&ds);
        let contracts = mine(&view, &LearnParams::default());
        assert!(contracts.is_empty());
    }

    #[test]
    fn single_type_emits_nothing() {
        let texts: Vec<String> = (0..10).map(|i| format!("vlan {i}\n")).collect();
        let ds = dataset(&texts);
        let view = DatasetView::new(&ds);
        assert!(mine(&view, &LearnParams::default()).is_empty());
    }

    #[test]
    fn support_threshold_applies() {
        let mut texts: Vec<String> = (0..3).map(|i| format!("x 10.0.0.{i}\n")).collect();
        texts.push("x 10.0.0.0/8\n".to_string());
        let ds = dataset(&texts);
        let view = DatasetView::new(&ds);
        assert!(mine(&view, &LearnParams::default()).is_empty());
    }
}
