//! Ordering-contract mining (§3.4).
//!
//! Ordering contracts only relate *immediate* successor lines: whenever a
//! line matches `p1`, the next line must match `p2`. Restricting to
//! adjacent pairs keeps learning fast and lets contracts chain into blocks
//! of lines that must appear together.

use crate::contract::Contract;
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::ir::PatternId;
use crate::learn::DatasetView;
use crate::params::LearnParams;

/// Per-config ordering sketch: the config's non-conflicted
/// `(pattern, immediate follower)` pairs.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct Sketch {
    /// Each `(p1, p2)` asserts every `p1` line in this config is
    /// immediately followed by a `p2` line.
    pub(crate) pairs: Vec<(PatternId, PatternId)>,
}

/// Accumulates one config's follower pairs.
pub(crate) fn sketch_config(dataset: &crate::ir::Dataset, ci: usize) -> Sketch {
    let config = &dataset.configs[ci];
    // For each p1 in this config, the set of follower patterns; `None`
    // marks an occurrence with no valid follower (end of file or a
    // metadata boundary).
    let mut followers: FxHashMap<PatternId, Option<PatternId>> = FxHashMap::default();
    let mut conflicted: FxHashSet<PatternId> = FxHashSet::default();
    for i in 0..config.len() {
        let pattern = config.pattern(i);
        let follower = if i + 1 < config.len() && config.is_meta(i + 1) == config.is_meta(i) {
            Some(config.pattern(i + 1))
        } else {
            None
        };
        match followers.entry(pattern) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(follower);
            }
            std::collections::hash_map::Entry::Occupied(e) => {
                if *e.get() != follower {
                    conflicted.insert(pattern);
                }
            }
        }
    }
    let mut pairs = Vec::new();
    for (p1, follower) in followers {
        if conflicted.contains(&p1) {
            continue;
        }
        if let Some(p2) = follower {
            pairs.push((p1, p2));
        }
    }
    Sketch { pairs }
}

/// Global accumulation folded from per-config sketches.
#[derive(Debug, Default)]
pub(crate) struct Acc {
    /// (p1 -> p2) -> number of configs in which EVERY p1 line is
    /// immediately followed by a p2 line.
    valid: FxHashMap<(PatternId, PatternId), u32>,
}

/// Folds one config's sketch into the accumulation.
pub(crate) fn fold(acc: &mut Acc, sketch: &Sketch) {
    for &pair in &sketch.pairs {
        *acc.valid.entry(pair).or_insert(0) += 1;
    }
}

/// Applies the support/confidence bars and renders contracts.
pub(crate) fn emit(
    acc: Acc,
    dataset: &crate::ir::Dataset,
    config_count: &[u32],
    params: &LearnParams,
) -> Vec<Contract> {
    let mut out = Vec::new();
    for (&(p1, p2), &valid_count) in &acc.valid {
        let support = config_count[p1.0 as usize] as usize;
        if (config_count[p2.0 as usize] as usize) < params.support {
            continue;
        }
        if params.accept(valid_count as usize, support) {
            out.push(Contract::Ordering {
                first: dataset.table.text(p1).to_string(),
                second: dataset.table.text(p2).to_string(),
            });
        }
    }
    out
}

pub(crate) fn mine(view: &DatasetView<'_>, params: &LearnParams) -> Vec<Contract> {
    let mut acc = Acc::default();
    for ci in 0..view.num_configs() {
        let sketch = sketch_config(view.dataset, ci);
        fold(&mut acc, &sketch);
    }
    emit(acc, view.dataset, &view.config_count, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Dataset;

    fn dataset(texts: &[String]) -> Dataset {
        let configs: Vec<(String, String)> = texts
            .iter()
            .enumerate()
            .map(|(i, t)| (format!("dev{i}"), t.clone()))
            .collect();
        Dataset::from_named_texts(&configs, &[]).unwrap()
    }

    fn orderings(contracts: &[Contract]) -> Vec<(String, String)> {
        contracts
            .iter()
            .filter_map(|c| match c {
                Contract::Ordering { first, second } => Some((first.clone(), second.clone())),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn learns_block_ordering() {
        // `evpn ether-segment` is always immediately followed by
        // `route-target import ...` (Figure 1 contract 4).
        let texts: Vec<String> = (0..6)
            .map(|i| {
                format!(
                    "interface Port-Channel{i}\n evpn ether-segment\n route-target import 00:00:0c:d3:00:0{i}\n"
                )
            })
            .collect();
        let ds = dataset(&texts);
        let view = DatasetView::new(&ds);
        let contracts = mine(&view, &LearnParams::default());
        let pairs = orderings(&contracts);
        assert!(pairs.iter().any(|(f, s)| {
            f.ends_with("evpn ether-segment") && s.contains("route-target import")
        }));
    }

    #[test]
    fn conflicting_followers_block_learning() {
        let mut texts: Vec<String> = (0..5).map(|_| "a line\nb line\n".to_string()).collect();
        // In one config, `a line` appears twice with different followers.
        texts.push("a line\nb line\na line\nc line\n".to_string());
        let ds = dataset(&texts);
        let view = DatasetView::new(&ds);
        let params = LearnParams {
            confidence: 1.0,
            ..LearnParams::default()
        };
        let pairs = orderings(&mine(&view, &params));
        assert!(pairs.is_empty());
    }

    #[test]
    fn tolerates_minority_deviation() {
        // 25 configs follow the order, 1 deviates: 25/26 > 96%.
        let mut texts: Vec<String> = (0..25).map(|_| "a line\nb line\n".to_string()).collect();
        texts.push("a line\nc line\nb line\n".to_string());
        let ds = dataset(&texts);
        let view = DatasetView::new(&ds);
        let pairs = orderings(&mine(&view, &LearnParams::default()));
        assert!(pairs.contains(&("/a line".to_string(), "/b line".to_string())));
    }

    #[test]
    fn end_of_file_breaks_ordering() {
        // `a line` is last in half the configs: no consistent follower.
        let texts: Vec<String> = (0..10)
            .map(|i| {
                if i % 2 == 0 {
                    "a line\nb line\n".to_string()
                } else {
                    "b line\na line\n".to_string()
                }
            })
            .collect();
        let ds = dataset(&texts);
        let view = DatasetView::new(&ds);
        let pairs = orderings(&mine(&view, &LearnParams::default()));
        assert!(!pairs.iter().any(|(f, _)| f == "/a line"));
    }

    #[test]
    fn follower_pattern_needs_support() {
        // p2 appears in only 3 configs (below S=5)... but then p1->p2 can
        // hold in at most 3 configs, failing confidence anyway; use a
        // contrived setup where p1 support is 3 too.
        let texts: Vec<String> = (0..3).map(|_| "x line\ny line\n".to_string()).collect();
        let ds = dataset(&texts);
        let view = DatasetView::new(&ds);
        assert!(orderings(&mine(&view, &LearnParams::default())).is_empty());
    }
}
