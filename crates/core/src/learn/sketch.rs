//! Per-configuration miner sketches: the mergeable form of learning.
//!
//! Every miner in this module's siblings is structured as three phases —
//! *sketch* one configuration, *fold* sketches in config order into a
//! global accumulation, *emit* contracts from the accumulation — and
//! [`super::learn_with_stats`] is exactly sketch-fold-emit over every
//! config. A [`ConfigSketch`] bundles one config's per-miner sketches
//! (pattern occurrence set, constant-line set, follower pairs, type
//! histograms, sequence/unique/range accumulators, and the relational
//! sorted-run fragment), so an engine that caches sketches can relearn
//! after an edit by re-sketching only the changed config and re-running
//! fold + emit ([`finalize_sketches`]) — the exact same code path as a
//! full learn, hence byte-identical contracts by construction.
//!
//! Sketches serialize to JSON against the dataset's [`PatternTable`]
//! (pattern *text*, not ids, so they survive snapshot/restore where ids
//! are reassigned). Witness hashes and diversity scores are stored as
//! fixed-width hex bit-patterns: the JSON number type is an `f64` and
//! cannot round-trip full-range `u64` hashes.

use std::time::Instant;

use concord_json::{FromJson, Json, ToJson};
use concord_types::{BigNum, Transform};

use crate::contract::{Contract, ContractSet, RelationKind};
use crate::ir::{Dataset, PatternId, PatternTable};
use crate::learn::indexes::{NodeKey, TransformTag};
use crate::learn::LearnStats;
use crate::learn::{minimize, ordering, present, range, relational, sequence, typing, unique};
use crate::params::LearnParams;

/// Format version of the serialized sketch; bump on any layout change
/// so stale persisted sketches are dropped instead of misread.
pub const SKETCH_FORMAT_VERSION: u64 = 1;

/// One configuration's complete miner sketch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConfigSketch {
    /// Distinct pattern ids of the config — folds into the per-pattern
    /// config counts used by present, ordering, and relational emission.
    pub(crate) patterns: Vec<PatternId>,
    pub(crate) present: present::Sketch,
    pub(crate) ordering: ordering::Sketch,
    pub(crate) typing: typing::Sketch,
    pub(crate) sequence: sequence::Sketch,
    pub(crate) unique: unique::Sketch,
    pub(crate) range: range::Sketch,
    /// Relational sorted-run fragment (see [`relational`]).
    pub(crate) relational: relational::PartialRun,
    /// Witness records this config's relational pass dropped to the
    /// fan-out guard.
    pub(crate) relational_truncations: u64,
}

/// Sketches one configuration under `params`. Only the categories
/// enabled by `params` are accumulated, so the params fingerprint
/// ([`sketch_params_fingerprint`]) must match before a sketch is reused.
pub fn sketch_config(dataset: &Dataset, ci: usize, params: &LearnParams) -> ConfigSketch {
    let mut lines_by_pattern: crate::fxhash::FxHashMap<PatternId, Vec<usize>> =
        crate::fxhash::FxHashMap::default();
    for (i, &pattern) in dataset.configs[ci].patterns().iter().enumerate() {
        lines_by_pattern.entry(pattern).or_default().push(i);
    }
    let patterns: Vec<PatternId> = lines_by_pattern.keys().copied().collect();
    let (relational, relational_truncations) = if params.enable_relational {
        let outcome = relational::mine_config(dataset, ci, params);
        (outcome.partial, outcome.truncations)
    } else {
        (Vec::new(), 0)
    };
    ConfigSketch {
        patterns,
        present: if params.enable_present {
            present::sketch_config(dataset, ci, params)
        } else {
            present::Sketch::default()
        },
        ordering: if params.enable_ordering {
            ordering::sketch_config(dataset, ci)
        } else {
            ordering::Sketch::default()
        },
        typing: if params.enable_type {
            typing::sketch_config(dataset, ci)
        } else {
            typing::Sketch::default()
        },
        sequence: if params.enable_sequence {
            sequence::sketch_config(dataset, ci, &lines_by_pattern)
        } else {
            sequence::Sketch::default()
        },
        unique: if params.enable_unique {
            unique::sketch_config(dataset, ci, &lines_by_pattern)
        } else {
            unique::Sketch::default()
        },
        range: if params.enable_range {
            range::sketch_config(dataset, ci, &lines_by_pattern)
        } else {
            range::Sketch::default()
        },
        relational,
        relational_truncations,
    }
}

/// Folds `sketches` (one per config, *in config order*) and emits the
/// contract set — the same fold + emit code the full learner runs, so
/// the result is byte-identical to `learn_with_stats(dataset, params)`
/// whenever every sketch was produced by [`sketch_config`] under the
/// same params.
pub fn finalize_sketches(
    dataset: &Dataset,
    sketches: &[&ConfigSketch],
    params: &LearnParams,
) -> (ContractSet, LearnStats) {
    let mut stats = LearnStats::default();
    debug_assert_eq!(sketches.len(), dataset.configs.len());

    let t = Instant::now();
    let mut config_count = vec![0u32; dataset.table.len()];
    for sketch in sketches {
        for &pattern in &sketch.patterns {
            config_count[pattern.0 as usize] += 1;
        }
    }
    stats.view_time = t.elapsed();
    let num_configs = dataset.configs.len();

    let t_simple = Instant::now();
    let mut contracts: Vec<Contract> = Vec::new();
    let time_miner = |name: &str,
                      out: &mut Vec<Contract>,
                      mined: Vec<Contract>,
                      t: Instant,
                      stats: &mut LearnStats| {
        stats.miner_times.push((name.to_string(), t.elapsed()));
        out.extend(mined);
    };
    if params.enable_present {
        let t = Instant::now();
        let mut acc = present::Acc::default();
        for sketch in sketches {
            present::fold(&mut acc, &sketch.present);
        }
        let mined = present::emit(acc, dataset, &config_count, num_configs, params);
        time_miner("present", &mut contracts, mined, t, &mut stats);
    }
    if params.enable_ordering {
        let t = Instant::now();
        let mut acc = ordering::Acc::default();
        for sketch in sketches {
            ordering::fold(&mut acc, &sketch.ordering);
        }
        let mined = ordering::emit(acc, dataset, &config_count, params);
        time_miner("ordering", &mut contracts, mined, t, &mut stats);
    }
    if params.enable_type {
        let t = Instant::now();
        let mut acc = typing::Acc::default();
        for sketch in sketches {
            typing::fold(&mut acc, &sketch.typing);
        }
        let mined = typing::emit(acc, params);
        time_miner("type", &mut contracts, mined, t, &mut stats);
    }
    if params.enable_sequence {
        let t = Instant::now();
        let mut acc = sequence::Acc::default();
        for sketch in sketches {
            sequence::fold(&mut acc, &sketch.sequence);
        }
        let mined = sequence::emit(acc, dataset, params);
        time_miner("sequence", &mut contracts, mined, t, &mut stats);
    }
    if params.enable_unique {
        let t = Instant::now();
        let mut acc = unique::Acc::default();
        for sketch in sketches {
            unique::fold(&mut acc, &sketch.unique, params);
        }
        let mined = unique::emit(acc, dataset, num_configs, params);
        time_miner("unique", &mut contracts, mined, t, &mut stats);
    }
    if params.enable_range {
        let t = Instant::now();
        let mut acc = range::Acc::default();
        for sketch in sketches {
            range::fold(&mut acc, &sketch.range);
        }
        let mined = range::emit(acc, dataset, params);
        time_miner("range", &mut contracts, mined, t, &mut stats);
    }
    stats.simple_miners_time = t_simple.elapsed();
    stats.miner_parallelism = 1;

    let mut relational_before = 0;
    if params.enable_relational {
        let t = Instant::now();
        let tm = Instant::now();
        let mut global: relational::PartialRun = Vec::new();
        for sketch in sketches {
            stats.fanout_truncations += sketch.relational_truncations;
            global = relational::merge_partials(
                global,
                sketch.relational.clone(),
                params.max_score_witnesses,
            );
        }
        stats.relational_merge_time = tm.elapsed();
        let mined = relational::finalize(global, dataset, &config_count, params);
        stats.relational_time = t.elapsed();
        stats
            .miner_times
            .push(("relational".to_string(), stats.relational_time));
        relational_before = mined.len();
        let t = Instant::now();
        let reduced = if params.minimize {
            minimize::minimize(mined, params.parallelism)
        } else {
            mined
        };
        stats.minimize_time = t.elapsed();
        stats.relational_after_minimization = reduced.len();
        contracts.extend(reduced.into_iter().map(Contract::Relational));
    }
    stats.relational_before_minimization = relational_before;

    contracts.sort_by(|a, b| (a.category(), a.describe()).cmp(&(b.category(), b.describe())));
    contracts.dedup();

    (
        ContractSet {
            contracts,
            relational_before_minimization: relational_before,
        },
        stats,
    )
}

/// A deterministic fingerprint of every [`LearnParams`] field that can
/// change sketch contents or their interpretation. `parallelism` is
/// deliberately excluded: learning is pinned byte-identical across
/// parallelism levels, so sketches are reusable across it.
pub fn sketch_params_fingerprint(params: &LearnParams) -> String {
    format!(
        "v{SKETCH_FORMAT_VERSION};support={};confidence={:016x};score_threshold={:016x};\
         present={};ordering={};type={};sequence={};unique={};relational={};range={};\
         constants={};minimize={};max_witnesses_per_instance={};max_affix_fanout={};\
         max_score_witnesses={}",
        params.support,
        params.confidence.to_bits(),
        params.score_threshold.to_bits(),
        params.enable_present,
        params.enable_ordering,
        params.enable_type,
        params.enable_sequence,
        params.enable_unique,
        params.enable_relational,
        params.enable_range,
        params.learn_constants,
        params.minimize,
        params.max_witnesses_per_instance,
        params.max_affix_fanout,
        params.max_score_witnesses,
    )
}

fn hex64(v: u64) -> Json {
    Json::Str(format!("{v:016x}"))
}

fn hex_f64(v: f64) -> Json {
    hex64(v.to_bits())
}

fn parse_hex64(json: &Json) -> Option<u64> {
    u64::from_str_radix(json.as_str()?, 16).ok()
}

fn parse_hex_f64(json: &Json) -> Option<f64> {
    Some(f64::from_bits(parse_hex64(json)?))
}

fn node_to_json(node: NodeKey, table: &PatternTable) -> Json {
    Json::Object(vec![
        (
            "pattern".to_string(),
            Json::Str(table.text(node.pattern).to_string()),
        ),
        ("param".to_string(), u64::from(node.param).to_json()),
        (
            "transform".to_string(),
            node.transform_tag.to_transform().to_json(),
        ),
    ])
}

fn node_from_json(json: &Json, table: &PatternTable) -> Option<NodeKey> {
    let pattern = table.get(json.get("pattern")?.as_str()?)?;
    let param = json.get("param")?.as_u64()? as u16;
    let transform = Transform::from_json(json.get("transform")?).ok()?;
    Some(NodeKey {
        pattern,
        param,
        transform_tag: TransformTag::from_transform(&transform),
    })
}

impl ConfigSketch {
    /// Serializes against `table` (the table the sketch's pattern ids
    /// refer to). Patterns are stored as text so the sketch survives
    /// table rebuilds that reassign ids.
    pub fn to_json(&self, table: &PatternTable) -> Json {
        let patterns = Json::Array(
            self.patterns
                .iter()
                .map(|&p| Json::Str(table.text(p).to_string()))
                .collect(),
        );
        let constants = Json::Array(
            self.present
                .constants
                .iter()
                .map(|line| Json::Str(line.clone()))
                .collect(),
        );
        let ordering = Json::Array(
            self.ordering
                .pairs
                .iter()
                .map(|&(p1, p2)| {
                    Json::Array(vec![
                        Json::Str(table.text(p1).to_string()),
                        Json::Str(table.text(p2).to_string()),
                    ])
                })
                .collect(),
        );
        let typing = Json::Array(
            self.typing
                .groups
                .iter()
                .map(|(agnostic, holes)| {
                    Json::Array(vec![
                        Json::Str(agnostic.clone()),
                        Json::Array(
                            holes
                                .iter()
                                .map(|counts| {
                                    Json::Array(
                                        counts
                                            .iter()
                                            .map(|(ty, count)| {
                                                Json::Array(vec![ty.to_json(), count.to_json()])
                                            })
                                            .collect(),
                                    )
                                })
                                .collect(),
                        ),
                    ])
                })
                .collect(),
        );
        let sequence = Json::Array(
            self.sequence
                .entries
                .iter()
                .map(|&(pattern, param, sequential)| {
                    Json::Array(vec![
                        Json::Str(table.text(pattern).to_string()),
                        u64::from(param).to_json(),
                        Json::Bool(sequential),
                    ])
                })
                .collect(),
        );
        let unique = Json::Array(
            self.unique
                .entries
                .iter()
                .map(|((pattern, param), ps)| {
                    Json::Array(vec![
                        Json::Str(table.text(*pattern).to_string()),
                        u64::from(*param).to_json(),
                        Json::Object(vec![
                            (
                                "distinct".to_string(),
                                Json::Array(
                                    ps.distinct
                                        .iter()
                                        .map(|(rendered, score)| {
                                            Json::Array(vec![
                                                Json::Str(rendered.clone()),
                                                hex_f64(*score),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                            ("instances".to_string(), ps.instances.to_json()),
                            ("intra_dup".to_string(), Json::Bool(ps.intra_dup)),
                            ("multi".to_string(), Json::Bool(ps.multi)),
                        ]),
                    ])
                })
                .collect(),
        );
        let range = Json::Array(
            self.range
                .entries
                .iter()
                .map(|((pattern, param), ps)| {
                    Json::Array(vec![
                        Json::Str(table.text(*pattern).to_string()),
                        u64::from(*param).to_json(),
                        Json::Object(vec![
                            ("min".to_string(), ps.min.to_json()),
                            ("max".to_string(), ps.max.to_json()),
                            ("instances".to_string(), ps.instances.to_json()),
                            (
                                "distinct".to_string(),
                                Json::Array(ps.distinct.iter().map(ToJson::to_json).collect()),
                            ),
                        ]),
                    ])
                })
                .collect(),
        );
        let relational = Json::Array(
            self.relational
                .iter()
                .map(|(code, partial)| {
                    let key = relational::decode_cand(*code);
                    Json::Object(vec![
                        (
                            "antecedent".to_string(),
                            node_to_json(key.antecedent, table),
                        ),
                        ("relation".to_string(), key.relation.to_json()),
                        (
                            "consequent".to_string(),
                            node_to_json(key.consequent, table),
                        ),
                        ("valid".to_string(), u64::from(partial.valid).to_json()),
                        (
                            "witnesses".to_string(),
                            Json::Array(
                                partial
                                    .witnesses
                                    .iter()
                                    .map(|&(hash, score)| {
                                        Json::Array(vec![hex64(hash), hex_f64(score)])
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        );
        Json::Object(vec![
            ("patterns".to_string(), patterns),
            ("constants".to_string(), constants),
            ("ordering".to_string(), ordering),
            ("typing".to_string(), typing),
            ("sequence".to_string(), sequence),
            ("unique".to_string(), unique),
            ("range".to_string(), range),
            ("relational".to_string(), relational),
            (
                "truncations".to_string(),
                self.relational_truncations.to_json(),
            ),
        ])
    }

    /// Decodes a sketch against `table`, re-encoding pattern texts into
    /// the table's current ids. Returns `None` on any shape mismatch or
    /// when a referenced pattern is no longer interned — callers treat
    /// that as "no sketch" and re-mine the config.
    pub fn from_json(json: &Json, table: &PatternTable) -> Option<ConfigSketch> {
        let pattern_of = |j: &Json| -> Option<PatternId> { table.get(j.as_str()?) };

        let mut patterns = Vec::new();
        for entry in json.get("patterns")?.as_array()? {
            patterns.push(pattern_of(entry)?);
        }
        let mut constants = Vec::new();
        for entry in json.get("constants")?.as_array()? {
            constants.push(entry.as_str()?.to_string());
        }
        let mut pairs = Vec::new();
        for entry in json.get("ordering")?.as_array()? {
            let [p1, p2] = entry.as_array()? else {
                return None;
            };
            pairs.push((pattern_of(p1)?, pattern_of(p2)?));
        }
        let mut groups = Vec::new();
        for entry in json.get("typing")?.as_array()? {
            let [agnostic, holes] = entry.as_array()? else {
                return None;
            };
            let mut hole_counts = Vec::new();
            for hole in holes.as_array()? {
                let mut counts = Vec::new();
                for pair in hole.as_array()? {
                    let [ty, count] = pair.as_array()? else {
                        return None;
                    };
                    counts.push((
                        concord_types::ValueType::from_json(ty).ok()?,
                        count.as_u64()?,
                    ));
                }
                hole_counts.push(counts);
            }
            groups.push((agnostic.as_str()?.to_string(), hole_counts));
        }
        let mut sequence_entries = Vec::new();
        for entry in json.get("sequence")?.as_array()? {
            let [pattern, param, sequential] = entry.as_array()? else {
                return None;
            };
            sequence_entries.push((
                pattern_of(pattern)?,
                param.as_u64()? as u16,
                sequential.as_bool()?,
            ));
        }
        let mut unique_entries = Vec::new();
        for entry in json.get("unique")?.as_array()? {
            let [pattern, param, body] = entry.as_array()? else {
                return None;
            };
            let mut distinct = Vec::new();
            for pair in body.get("distinct")?.as_array()? {
                let [rendered, score] = pair.as_array()? else {
                    return None;
                };
                distinct.push((rendered.as_str()?.to_string(), parse_hex_f64(score)?));
            }
            unique_entries.push((
                (pattern_of(pattern)?, param.as_u64()? as u16),
                unique::ParamSketch {
                    distinct,
                    instances: body.get("instances")?.as_u64()?,
                    intra_dup: body.get("intra_dup")?.as_bool()?,
                    multi: body.get("multi")?.as_bool()?,
                },
            ));
        }
        let mut range_entries = Vec::new();
        for entry in json.get("range")?.as_array()? {
            let [pattern, param, body] = entry.as_array()? else {
                return None;
            };
            let mut distinct = Vec::new();
            for value in body.get("distinct")?.as_array()? {
                distinct.push(BigNum::from_json(value).ok()?);
            }
            range_entries.push((
                (pattern_of(pattern)?, param.as_u64()? as u16),
                range::ParamSketch {
                    min: BigNum::from_json(body.get("min")?).ok()?,
                    max: BigNum::from_json(body.get("max")?).ok()?,
                    instances: body.get("instances")?.as_u64()?,
                    distinct,
                },
            ));
        }
        let mut relational_run: relational::PartialRun = Vec::new();
        for entry in json.get("relational")?.as_array()? {
            let antecedent = node_from_json(entry.get("antecedent")?, table)?;
            let relation = RelationKind::from_json(entry.get("relation")?).ok()?;
            let consequent = node_from_json(entry.get("consequent")?, table)?;
            let mut witnesses = Vec::new();
            for pair in entry.get("witnesses")?.as_array()? {
                let [hash, score] = pair.as_array()? else {
                    return None;
                };
                witnesses.push((parse_hex64(hash)?, parse_hex_f64(score)?));
            }
            let code = relational::cand_code(
                relational::node_code(antecedent),
                relational::consequent_code(relation, consequent),
            );
            relational_run.push((
                code,
                relational::Partial {
                    valid: entry.get("valid")?.as_u64()? as u32,
                    witnesses,
                    seen: None,
                },
            ));
        }
        // Ids may have been reassigned since the sketch was written:
        // restore the sorted-run invariant under the current encoding.
        relational_run.sort_unstable_by_key(|&(code, _)| code);

        Some(ConfigSketch {
            patterns,
            present: present::Sketch { constants },
            ordering: ordering::Sketch { pairs },
            typing: typing::Sketch { groups },
            sequence: sequence::Sketch {
                entries: sequence_entries,
            },
            unique: unique::Sketch {
                entries: unique_entries,
            },
            range: range::Sketch {
                entries: range_entries,
            },
            relational: relational_run,
            relational_truncations: json.get("truncations")?.as_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::learn::learn_with_stats;

    fn dataset(texts: &[String]) -> Dataset {
        let configs: Vec<(String, String)> = texts
            .iter()
            .enumerate()
            .map(|(i, t)| (format!("dev{i}"), t.clone()))
            .collect();
        Dataset::from_named_texts(&configs, &[]).unwrap()
    }

    fn rich_texts() -> Vec<String> {
        (0..9)
            .map(|i| {
                format!(
                    "hostname DEV{i}\ninterface Loopback0\n ip address 10.14.14.{i}\n\
                     ip prefix-list lo\n seq 10 permit 10.14.14.{i}/32\n\
                     vlan {}\n rd 10.0.0.1:10{}\nvni {}\nmtu {}\n",
                    250 + i,
                    250 + i,
                    250 + i,
                    if i % 2 == 0 { 1500 } else { 9214 },
                )
            })
            .collect()
    }

    #[test]
    fn finalize_sketches_matches_full_learn() {
        let ds = dataset(&rich_texts());
        for (learn_constants, enable_range) in [(false, false), (true, true)] {
            let params = LearnParams {
                learn_constants,
                enable_range,
                ..LearnParams::default()
            };
            let sketches: Vec<ConfigSketch> = (0..ds.configs.len())
                .map(|ci| sketch_config(&ds, ci, &params))
                .collect();
            let refs: Vec<&ConfigSketch> = sketches.iter().collect();
            let (delta, delta_stats) = finalize_sketches(&ds, &refs, &params);
            let (full, full_stats) = learn_with_stats(&ds, &params);
            assert_eq!(delta.contracts, full.contracts);
            assert_eq!(
                delta.relational_before_minimization,
                full.relational_before_minimization
            );
            assert_eq!(
                delta_stats.fanout_truncations,
                full_stats.fanout_truncations
            );
            assert!(!delta.is_empty());
        }
    }

    #[test]
    fn sketch_round_trips_through_json() {
        let ds = dataset(&rich_texts());
        let params = LearnParams {
            learn_constants: true,
            enable_range: true,
            ..LearnParams::default()
        };
        for ci in 0..ds.configs.len() {
            let sketch = sketch_config(&ds, ci, &params);
            let json = sketch.to_json(&ds.table);
            let reparsed = Json::parse(&json.render()).unwrap();
            let decoded = ConfigSketch::from_json(&reparsed, &ds.table).unwrap();
            assert_eq!(sketch, decoded, "sketch {ci} did not round-trip");
        }
    }

    #[test]
    fn from_json_rejects_unknown_patterns() {
        let ds = dataset(&rich_texts());
        let params = LearnParams::default();
        let sketch = sketch_config(&ds, 0, &params);
        let json = sketch.to_json(&ds.table);
        // Decode against a table that lacks the patterns.
        let other = dataset(&["completely different\n".to_string()]);
        assert!(ConfigSketch::from_json(&json, &other.table).is_none());
    }

    #[test]
    fn fingerprint_tracks_semantic_params_only() {
        let base = LearnParams::default();
        let mut parallel = base.clone();
        parallel.parallelism = 8;
        assert_eq!(
            sketch_params_fingerprint(&base),
            sketch_params_fingerprint(&parallel)
        );
        let mut support = base.clone();
        support.support = 7;
        assert_ne!(
            sketch_params_fingerprint(&base),
            sketch_params_fingerprint(&support)
        );
    }
}
