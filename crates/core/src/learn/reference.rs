//! The pre-optimization learn engine, kept verbatim as the equivalence
//! oracle and benchmark baseline for the parallel learner (the same role
//! `check_naive` plays for the compiled check engine). Everything here is
//! the implementation as it stood before the concurrent-miner /
//! tree-merge / Fx-hashing rework: sequential miners on SipHash `std`
//! maps, a `DefaultHasher` witness fingerprint per antecedent value, a
//! `format!`-per-hole pattern filler, and a left-fold relational merge.
//! `crates/bench/tests/learn_equivalence.rs` pins the optimized learner
//! byte-identical to this module; `learn_scaling` times the two against
//! each other.
//!
//! Intentional duplication: sharing code with the live engine would let
//! an optimization bug change both sides in lockstep. Only the leaf data
//! structures with no accumulation semantics of their own (tries, the
//! dataset view, minimization) are shared.

use crate::contract::{Contract, ContractSet};
use crate::ir::{Dataset, PatternId};
use crate::learn::indexes::{RelationStructure, StrTrie};
use crate::params::LearnParams;
use concord_types::Value;

/// The pre-optimization learner: sequential miners in canonical order,
/// the left-fold relational merge, sequential minimization.
pub(crate) fn learn(dataset: &Dataset, params: &LearnParams) -> ContractSet {
    let view = DatasetView::new(dataset);
    let mut contracts: Vec<Contract> = Vec::new();
    if params.enable_present {
        contracts.extend(present::mine(&view, params));
    }
    if params.enable_ordering {
        contracts.extend(ordering::mine(&view, params));
    }
    if params.enable_type {
        contracts.extend(typing::mine(&view, params));
    }
    if params.enable_sequence {
        contracts.extend(sequence::mine(&view, params));
    }
    if params.enable_unique {
        contracts.extend(unique::mine(&view, params));
    }
    if params.enable_range {
        contracts.extend(range::mine(&view, params));
    }

    let mut relational_before = 0;
    if params.enable_relational {
        let outcome = mine_relational(&view, params);
        relational_before = outcome.contracts.len();
        let reduced = if params.minimize {
            super::minimize::minimize(outcome.contracts, 1)
        } else {
            outcome.contracts
        };
        contracts.extend(reduced.into_iter().map(Contract::Relational));
    }

    contracts.sort_by(|a, b| (a.category(), a.describe()).cmp(&(b.category(), b.describe())));
    contracts.dedup();

    ContractSet {
        contracts,
        relational_before_minimization: relational_before,
    }
}

/// The pre-optimization occurrence view: the same per-config pattern
/// maps as [`crate::learn::DatasetView`], on the `std` SipHash maps it
/// used before the Fx swap.
pub(super) struct DatasetView<'a> {
    /// The dataset being learned from.
    pub dataset: &'a Dataset,
    /// For each config: pattern id → indices of lines with that pattern.
    pub lines_by_pattern: Vec<std::collections::HashMap<PatternId, Vec<usize>>>,
    /// For each pattern id: number of configs containing it.
    pub config_count: Vec<u32>,
}

impl<'a> DatasetView<'a> {
    pub fn new(dataset: &'a Dataset) -> Self {
        let mut lines_by_pattern = Vec::with_capacity(dataset.configs.len());
        let mut config_count = vec![0u32; dataset.table.len()];
        for config in &dataset.configs {
            let mut map: std::collections::HashMap<PatternId, Vec<usize>> =
                std::collections::HashMap::new();
            for (i, &pattern) in config.patterns().iter().enumerate() {
                map.entry(pattern).or_default().push(i);
            }
            for &pattern in map.keys() {
                config_count[pattern.0 as usize] += 1;
            }
            lines_by_pattern.push(map);
        }
        DatasetView {
            dataset,
            lines_by_pattern,
            config_count,
        }
    }

    /// Number of configurations containing `pattern`.
    pub fn configs_with(&self, pattern: PatternId) -> usize {
        self.config_count[pattern.0 as usize] as usize
    }

    /// Total number of configurations.
    pub fn num_configs(&self) -> usize {
        self.dataset.configs.len()
    }
}

/// Reconstructs a line's canonical text by substituting parameter values
/// back into the holes of its pattern (used by constant learning).
pub(crate) fn fill_pattern(pattern: &str, params: &[concord_lexer::Param]) -> String {
    let mut values = params.iter();
    let mut out = String::with_capacity(pattern.len());
    let bytes = pattern.as_bytes();
    let mut pos = 0;
    while pos < pattern.len() {
        if bytes[pos] == b'[' {
            if let Some(end_rel) = pattern[pos + 1..].find(']') {
                let inner = &pattern[pos + 1..pos + 1 + end_rel];
                let is_hole = !inner.is_empty()
                    && inner.chars().all(|c| c.is_ascii_alphanumeric() || c == ':');
                if is_hole {
                    if inner.contains(':') {
                        // A bound hole: substitute the next value.
                        match values.next() {
                            Some(p) => out.push_str(&p.value.render()),
                            None => out.push_str(&format!("[{inner}]")),
                        }
                    } else {
                        // Anonymous (context) hole: keep as-is.
                        out.push_str(&format!("[{inner}]"));
                    }
                    pos += end_rel + 2;
                    continue;
                }
            }
        }
        let c = pattern[pos..].chars().next().expect("in-bounds");
        out.push(c);
        pos += c.len_utf8();
    }
    out
}

mod present {
    //! Present-contract mining (§3.4).
    //!
    //! `exists l ~ p`: Concord tracks every pattern used in each configuration
    //! and extracts those appearing in at least `C`% of the configurations
    //! (and at least `S` configurations). With constant learning enabled (§4),
    //! the same is additionally done over exact line text, which captures
    //! globally shared "magic constant" policies.

    use std::collections::HashMap;

    use super::DatasetView;
    use crate::contract::Contract;

    use super::fill_pattern;
    use crate::params::LearnParams;

    pub(crate) fn mine(view: &DatasetView<'_>, params: &LearnParams) -> Vec<Contract> {
        let total = view.num_configs();
        let required = params.required_valid(total);
        let mut out = Vec::new();

        for (id, text) in view.dataset.table.iter() {
            let count = view.configs_with(id);
            if count >= params.support && count >= required {
                out.push(Contract::Present {
                    pattern: text.to_string(),
                });
            }
        }

        if params.learn_constants {
            // Count exact filled-line occurrences per config (set semantics:
            // a line appearing twice in one config counts once).
            let mut line_configs: HashMap<String, u32> = HashMap::new();
            for config in &view.dataset.configs {
                let mut seen = std::collections::HashSet::new();
                for line in config.lines(&view.dataset.arenas) {
                    let filled = fill_pattern(view.dataset.table.text(line.pattern), line.params);
                    if seen.insert(filled.clone()) {
                        *line_configs.entry(filled).or_insert(0) += 1;
                    }
                }
            }
            for (line, count) in line_configs {
                let count = count as usize;
                if count >= params.support && count >= required {
                    // Skip lines whose pattern has no holes: the plain Present
                    // contract already covers them exactly.
                    if line.contains('[') || {
                        let pattern_id = view.dataset.table.get(&line);
                        pattern_id.is_none()
                    } {
                        out.push(Contract::PresentExact { line });
                    } else {
                        continue;
                    }
                }
            }
        }
        out
    }
}

mod ordering {
    //! Ordering-contract mining (§3.4).
    //!
    //! Ordering contracts only relate *immediate* successor lines: whenever a
    //! line matches `p1`, the next line must match `p2`. Restricting to
    //! adjacent pairs keeps learning fast and lets contracts chain into blocks
    //! of lines that must appear together.

    use std::collections::HashMap;

    use super::DatasetView;
    use crate::contract::Contract;
    use crate::ir::PatternId;
    use crate::params::LearnParams;

    pub(crate) fn mine(view: &DatasetView<'_>, params: &LearnParams) -> Vec<Contract> {
        // (p1 -> p2) -> number of configs in which EVERY p1 line is
        // immediately followed by a p2 line.
        let mut valid: HashMap<(PatternId, PatternId), u32> = HashMap::new();

        for config in &view.dataset.configs {
            // For each p1 in this config, the set of follower patterns; `None`
            // marks an occurrence with no valid follower (end of file or a
            // metadata boundary).
            let mut followers: HashMap<PatternId, Option<PatternId>> = HashMap::new();
            let mut conflicted: std::collections::HashSet<PatternId> =
                std::collections::HashSet::new();
            for i in 0..config.len() {
                let pattern = config.pattern(i);
                let follower = if i + 1 < config.len() && config.is_meta(i + 1) == config.is_meta(i)
                {
                    Some(config.pattern(i + 1))
                } else {
                    None
                };
                match followers.entry(pattern) {
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(follower);
                    }
                    std::collections::hash_map::Entry::Occupied(e) => {
                        if *e.get() != follower {
                            conflicted.insert(pattern);
                        }
                    }
                }
            }
            for (p1, follower) in followers {
                if conflicted.contains(&p1) {
                    continue;
                }
                if let Some(p2) = follower {
                    *valid.entry((p1, p2)).or_insert(0) += 1;
                }
            }
        }

        let mut out = Vec::new();
        for (&(p1, p2), &valid_count) in &valid {
            let support = view.configs_with(p1);
            if view.configs_with(p2) < params.support {
                continue;
            }
            if params.accept(valid_count as usize, support) {
                out.push(Contract::Ordering {
                    first: view.dataset.table.text(p1).to_string(),
                    second: view.dataset.table.text(p2).to_string(),
                });
            }
        }
        out
    }
}

mod typing {
    //! Type-contract mining (§3.4).
    //!
    //! Misconfigurations often manifest as type errors (an IPv4 prefix where an
    //! address belongs). Concord rewrites every pattern to a type-agnostic
    //! form (`ip address [a:ip4]` → `ip address [?]`), tallies the concrete
    //! types used at each hole, and deems a type invalid when it appears in
    //! fewer than `(100 − C)%` of uses. The learned contract records the
    //! *valid* types, so checking also flags types never seen in training.
    //!
    //! A contract is only emitted for holes where at least two distinct types
    //! were observed — a hole that only ever held one type generates no
    //! evidence of a type *choice*, and emitting a contract per pattern hole
    //! would drown the output.

    use std::collections::HashMap;

    use concord_lexer::type_agnostic_pattern;
    use concord_types::ValueType;

    use super::DatasetView;
    use crate::contract::Contract;
    use crate::params::LearnParams;

    pub(crate) fn mine(view: &DatasetView<'_>, params: &LearnParams) -> Vec<Contract> {
        // agnostic pattern -> per-hole type usage counts, plus config support.
        struct Group {
            hole_types: Vec<HashMap<ValueType, u64>>,
            configs: std::collections::HashSet<usize>,
        }
        let mut groups: HashMap<String, Group> = HashMap::new();

        for (ci, config) in view.dataset.configs.iter().enumerate() {
            for line in config.lines(&view.dataset.arenas) {
                if line.params.is_empty() {
                    continue;
                }
                let agnostic = type_agnostic_pattern(view.dataset.table.text(line.pattern));
                let group = groups.entry(agnostic).or_insert_with(|| Group {
                    hole_types: Vec::new(),
                    configs: std::collections::HashSet::new(),
                });
                group.configs.insert(ci);
                // Holes of the *bound* parameters: anonymous context holes are
                // part of the agnostic text too, so index bound holes by
                // their position among bound params only.
                if group.hole_types.len() < line.params.len() {
                    group
                        .hole_types
                        .resize_with(line.params.len(), HashMap::new);
                }
                for (i, param) in line.params.iter().enumerate() {
                    *group.hole_types[i].entry(param.ty.clone()).or_insert(0) += 1;
                }
            }
        }

        let mut out = Vec::new();
        for (agnostic, group) in groups {
            if group.configs.len() < params.support {
                continue;
            }
            for (hole, types) in group.hole_types.iter().enumerate() {
                if types.len() < 2 {
                    continue;
                }
                let total: u64 = types.values().sum();
                let min_freq = (1.0 - params.confidence) * total as f64;
                let mut valid: Vec<ValueType> = types
                    .iter()
                    .filter(|&(_, &count)| count as f64 >= min_freq)
                    .map(|(ty, _)| ty.clone())
                    .collect();
                if valid.is_empty() || valid.len() == types.len() {
                    // Either everything is rare (degenerate) or nothing is:
                    // no restriction to enforce.
                    continue;
                }
                valid.sort();
                out.push(Contract::Type {
                    pattern: agnostic.clone(),
                    hole: hole as u16,
                    valid,
                });
            }
        }
        out
    }
}

mod sequence {
    //! Sequence-contract mining (§3.4).
    //!
    //! Sequence contracts apply to numeric parameters whose values within each
    //! configuration form an equidistant, strictly increasing progression
    //! (e.g. `seq 10`, `seq 20`, `seq 30`). They catch missing or reordered
    //! sequence elements.

    use std::collections::HashMap;

    use concord_types::BigNum;

    use super::DatasetView;
    use crate::contract::Contract;
    use crate::ir::PatternId;
    use crate::params::LearnParams;

    /// Returns `true` when `values` (in order of appearance) are strictly
    /// increasing and equidistant with a positive common difference.
    pub(crate) fn is_sequential(values: &[&BigNum]) -> bool {
        if values.len() < 2 {
            return false;
        }
        let mut step: Option<BigNum> = None;
        for pair in values.windows(2) {
            if pair[1] <= pair[0] {
                return false;
            }
            let diff = pair[1].sub(pair[0]);
            match &step {
                None => step = Some(diff),
                Some(s) if *s == diff => {}
                Some(_) => return false,
            }
        }
        true
    }

    pub(crate) fn mine(view: &DatasetView<'_>, params: &LearnParams) -> Vec<Contract> {
        // (pattern, param) -> (configs with >= 2 instances, sequential configs).
        let mut stats: HashMap<(PatternId, u16), (u32, u32)> = HashMap::new();

        for (ci, config) in view.dataset.configs.iter().enumerate() {
            for (&pattern, line_idxs) in &view.lines_by_pattern[ci] {
                if line_idxs.len() < 2 {
                    continue;
                }
                let arenas = &view.dataset.arenas;
                let first = config.line(arenas, line_idxs[0]);
                for (pi, param) in first.params.iter().enumerate() {
                    if param.value.as_num().is_none() {
                        continue;
                    }
                    let values: Vec<&BigNum> = line_idxs
                        .iter()
                        .filter_map(|&li| config.line(arenas, li).params.get(pi))
                        .filter_map(|p| p.value.as_num())
                        .collect();
                    if values.len() != line_idxs.len() {
                        continue;
                    }
                    let entry = stats.entry((pattern, pi as u16)).or_insert((0, 0));
                    entry.0 += 1;
                    if is_sequential(&values) {
                        entry.1 += 1;
                    }
                }
            }
        }

        let mut out = Vec::new();
        for (&(pattern, param), &(support, sequential)) in &stats {
            if params.accept(sequential as usize, support as usize) {
                out.push(Contract::Sequence {
                    pattern: view.dataset.table.text(pattern).to_string(),
                    param,
                });
            }
        }
        out
    }
}

mod unique {
    //! Unique-contract mining (§3.4).
    //!
    //! Unique contracts capture parameters whose values are globally distinct
    //! across all configurations (hostnames, router ids, interface addresses).
    //! They catch copy-paste errors and resource reuse. To avoid learning
    //! "unique" from handfuls of coincidentally distinct small numbers, the
    //! aggregate informativeness of the observed values must clear the score
    //! threshold (§3.5).

    use std::collections::{HashMap, HashSet};

    use concord_types::score::value_score;

    use super::DatasetView;
    use crate::contract::Contract;
    use crate::ir::PatternId;
    use crate::params::LearnParams;

    pub(crate) fn mine(view: &DatasetView<'_>, params: &LearnParams) -> Vec<Contract> {
        struct Acc {
            values: HashSet<String>,
            instances: u64,
            duplicate: bool,
            score: f64,
            configs: u32,
            once_per_config: bool,
        }
        let mut stats: HashMap<(PatternId, u16), Acc> = HashMap::new();

        for (ci, _) in view.dataset.configs.iter().enumerate() {
            for (&pattern, line_idxs) in &view.lines_by_pattern[ci] {
                let config = &view.dataset.configs[ci];
                let arenas = &view.dataset.arenas;
                let first = config.line(arenas, line_idxs[0]);
                for pi in 0..first.params.len() {
                    let acc = stats.entry((pattern, pi as u16)).or_insert_with(|| Acc {
                        values: HashSet::new(),
                        instances: 0,
                        duplicate: false,
                        score: 0.0,
                        configs: 0,
                        once_per_config: true,
                    });
                    acc.configs += 1;
                    if line_idxs.len() != 1 {
                        acc.once_per_config = false;
                    }
                    for &li in line_idxs {
                        let Some(param) = config.line(arenas, li).params.get(pi) else {
                            continue;
                        };
                        acc.instances += 1;
                        let rendered = param.value.render();
                        if acc.values.contains(&rendered) {
                            acc.duplicate = true;
                        } else {
                            if acc.values.len() < params.max_score_witnesses {
                                acc.score += value_score(&param.value);
                            }
                            acc.values.insert(rendered);
                        }
                    }
                }
            }
        }

        let mut out = Vec::new();
        for (&(pattern, param), acc) in &stats {
            if acc.duplicate
                || (acc.configs as usize) < params.support
                || acc.instances < 2
                || acc.score < params.score_threshold
            {
                continue;
            }
            out.push(Contract::Unique {
                pattern: view.dataset.table.text(pattern).to_string(),
                param,
                // "Exactly once per configuration" only holds as a fleet-wide
                // rule when every configuration (not just those containing
                // the pattern) has exactly one instance — otherwise a
                // role-specific pattern would be demanded of foreign roles.
                once_per_config: acc.once_per_config && acc.configs as usize == view.num_configs(),
            });
        }
        out
    }
}

mod range {
    //! Range-contract mining (an extension category).
    //!
    //! §3.4 notes that Concord "is easy to extend ... to incorporate new
    //! categories"; range contracts demonstrate the extension point. A range
    //! contract asserts that a numeric parameter stays within the interval
    //! observed during training (e.g. `mtu` between 1500 and 9214) — the rule
    //! family that key–value learners like ConfigV center on.
    //!
    //! Ranges generalize poorly for identifier-like parameters (VLAN ids,
    //! sequence numbers), so they are **disabled by default**
    //! ([`crate::LearnParams::enable_range`]) and only learned for parameters
    //! whose observed values repeat across configurations (set-like usage,
    //! not identifier-like usage).

    use std::collections::HashMap;

    use concord_types::BigNum;

    use super::DatasetView;
    use crate::contract::Contract;
    use crate::ir::PatternId;
    use crate::params::LearnParams;

    pub(crate) fn mine(view: &DatasetView<'_>, params: &LearnParams) -> Vec<Contract> {
        struct Acc {
            min: BigNum,
            max: BigNum,
            instances: u64,
            distinct: std::collections::HashSet<BigNum>,
            configs: u32,
        }
        let mut stats: HashMap<(PatternId, u16), Acc> = HashMap::new();

        for (ci, config) in view.dataset.configs.iter().enumerate() {
            for (&pattern, line_idxs) in &view.lines_by_pattern[ci] {
                let arenas = &view.dataset.arenas;
                let first = config.line(arenas, line_idxs[0]);
                for (pi, param) in first.params.iter().enumerate() {
                    if param.value.as_num().is_none() {
                        continue;
                    }
                    let values: Vec<&BigNum> = line_idxs
                        .iter()
                        .filter_map(|&li| config.line(arenas, li).params.get(pi))
                        .filter_map(|p| p.value.as_num())
                        .collect();
                    if values.is_empty() {
                        continue;
                    }
                    let acc = stats.entry((pattern, pi as u16)).or_insert_with(|| Acc {
                        min: values[0].clone(),
                        max: values[0].clone(),
                        instances: 0,
                        distinct: std::collections::HashSet::new(),
                        configs: 0,
                    });
                    acc.configs += 1;
                    for v in values {
                        acc.instances += 1;
                        if *v < acc.min {
                            acc.min = v.clone();
                        }
                        if *v > acc.max {
                            acc.max = v.clone();
                        }
                        if acc.distinct.len() < 64 {
                            acc.distinct.insert(v.clone());
                        }
                    }
                }
            }
        }

        let mut out = Vec::new();
        for (&(pattern, param), acc) in &stats {
            if (acc.configs as usize) < params.support || acc.instances < 4 {
                continue;
            }
            // Identifier-like parameters have nearly as many distinct values
            // as instances; set-like parameters repeat. Only the latter form
            // meaningful ranges.
            if (acc.distinct.len() as u64) * 2 > acc.instances {
                continue;
            }
            out.push(Contract::Range {
                pattern: view.dataset.table.text(pattern).to_string(),
                param,
                min: acc.min.clone(),
                max: acc.max.clone(),
            });
        }
        out
    }
}

/// Pre-optimization equality structure: the same value → entries table as
/// [`crate::learn::indexes::EqualityStructure`], on the `std` SipHash map
/// it used before the Fx swap.
#[derive(Debug, Default)]
struct StdEqualityStructure {
    map: std::collections::HashMap<concord_types::Value, Vec<u32>>,
}

impl crate::learn::indexes::RelationStructure for StdEqualityStructure {
    fn relation(&self) -> crate::contract::RelationKind {
        crate::contract::RelationKind::Equals
    }

    fn insert(&mut self, value: &concord_types::Value, entry: u32) {
        self.map.entry(value.clone()).or_default().push(entry);
    }

    fn query(&self, value: &concord_types::Value, out: &mut Vec<u32>) -> bool {
        if let Some(entries) = self.map.get(value) {
            out.extend_from_slice(entries);
        }
        true
    }
}

/// The pre-optimization affix structure, verbatim: per-entry string
/// lengths in a sorted pair list probed by binary search (the live
/// [`AffixStructure`](crate::learn::indexes::AffixStructure) now uses a
/// dense O(1) table). A character trie over string forms, forward for `startswith`
/// or reversed for `endswith`. Strings of equal length are excluded —
/// exact equality is [`EqualityStructure`]'s business — by recording each
/// string's length alongside its entry id.
#[derive(Debug)]
pub struct ReferenceAffixStructure {
    trie: StrTrie,
    lengths: Vec<(u32, u32)>,
    reverse: bool,
    cap: usize,
}

impl ReferenceAffixStructure {
    /// Creates an affix structure; `reverse = true` matches suffixes
    /// (`endswith`), `false` matches prefixes (`startswith`). Queries
    /// whose subtree exceeds `cap` entries report "too unspecific".
    pub fn new(reverse: bool, cap: usize) -> Self {
        ReferenceAffixStructure {
            trie: StrTrie::default(),
            lengths: Vec::new(),
            reverse,
            cap,
        }
    }

    fn len_of(&self, entry: u32) -> Option<u32> {
        self.lengths
            .binary_search_by_key(&entry, |&(e, _)| e)
            .ok()
            .map(|i| self.lengths[i].1)
    }
}

impl RelationStructure for ReferenceAffixStructure {
    fn relation(&self) -> crate::contract::RelationKind {
        if self.reverse {
            crate::contract::RelationKind::EndsWith
        } else {
            crate::contract::RelationKind::StartsWith
        }
    }

    fn insert(&mut self, value: &Value, entry: u32) {
        if let Value::Str(s) = value {
            if self.reverse {
                self.trie.insert(s.chars().rev(), entry);
            } else {
                self.trie.insert(s.chars(), entry);
            }
            self.lengths.push((entry, s.len() as u32));
        }
    }

    fn query(&self, value: &Value, out: &mut Vec<u32>) -> bool {
        let Some(s) = value.as_str() else {
            return true;
        };
        if s.len() < 2 {
            return false;
        }
        let complete = if self.reverse {
            self.trie
                .subtree_with_prefix(s.chars().rev(), self.cap, out)
        } else {
            self.trie.subtree_with_prefix(s.chars(), self.cap, out)
        };
        if !complete {
            out.clear();
            return false;
        }
        // Drop exact-equal strings: those are equality's business.
        out.retain(|&i| self.len_of(i).is_some_and(|len| len as usize > s.len()));
        true
    }
}

/// The pre-optimization [`ValueIndex`]: std-hashed equality plus the
/// shared trie-backed containment/affix structures, in the same
/// registration order as [`ValueIndex::new`].
fn reference_index(affix_cap: usize) -> crate::learn::indexes::ValueIndex {
    use crate::learn::indexes::{ContainsStructure, ValueIndex};
    ValueIndex {
        entries: Vec::new(),
        structures: vec![
            Box::new(StdEqualityStructure::default()),
            Box::new(ContainsStructure::default()),
            Box::new(ReferenceAffixStructure::new(false, affix_cap)),
            Box::new(ReferenceAffixStructure::new(true, affix_cap)),
        ],
    }
}

/// The pre-optimization relational miner: per-config mining on SipHash
/// `std` maps with a `DefaultHasher` witness fingerprint per antecedent,
/// configs processed strictly sequentially, and the per-config results
/// combined by a sequential left fold into a running-sum global map —
/// the semantics the tree merge must reproduce bit-for-bit.
pub(crate) fn mine_relational(
    view: &DatasetView<'_>,
    params: &LearnParams,
) -> crate::learn::relational::MineOutcome {
    use std::collections::hash_map::DefaultHasher;
    use std::collections::{HashMap, HashSet};
    use std::hash::{Hash, Hasher};
    use std::time::Instant;

    use concord_types::score::value_score;
    use concord_types::Transform;

    use crate::contract::RelationKind;
    use crate::learn::indexes::{Entry, NodeKey, TransformTag, ValueIndex};
    use crate::learn::relational::{finalize_scored, CandKey, MineOutcome};

    struct LocalResult {
        /// Candidate → (satisfied instance count, witness (hash, score)
        /// per instance).
        candidates: HashMap<CandKey, (u32, Vec<(u64, f64)>)>,
        /// Node → number of instances (entries) in this configuration.
        node_instances: HashMap<NodeKey, u32>,
        truncations: u64,
    }

    fn record_reference(
        index: &ValueIndex,
        a_idx: usize,
        c_idx: u32,
        relation: RelationKind,
        satisfied: &mut HashMap<CandKey, f64>,
        params: &LearnParams,
        truncations: &mut u64,
    ) {
        let a = &index.entries[a_idx];
        let c = &index.entries[c_idx as usize];
        if a.node == c.node {
            return;
        }
        if satisfied.len() >= params.max_witnesses_per_instance * 8 {
            *truncations += 1;
            return;
        }
        let key = CandKey {
            antecedent: a.node,
            relation,
            consequent: c.node,
        };
        let score = a.score.min(c.score);
        satisfied
            .entry(key)
            .and_modify(|best| *best = best.max(score))
            .or_insert(score);
    }

    fn mine_config_reference(
        view: &DatasetView<'_>,
        ci: usize,
        params: &LearnParams,
    ) -> LocalResult {
        let config = &view.dataset.configs[ci];
        let mut index = reference_index(params.max_affix_fanout);
        let mut node_instances: HashMap<NodeKey, u32> = HashMap::new();

        for line in config.lines(&view.dataset.arenas) {
            for (pi, param) in line.params.iter().enumerate() {
                let base_score = value_score(&param.value);
                for transform in Transform::enumerate_for(&param.value) {
                    let Some(value) = transform.apply(&param.value) else {
                        continue;
                    };
                    let node = NodeKey {
                        pattern: line.pattern,
                        param: pi as u16,
                        transform_tag: TransformTag::from_transform(&transform),
                    };
                    *node_instances.entry(node).or_insert(0) += 1;
                    index.insert(Entry {
                        node,
                        value,
                        score: base_score * transform.score_discount(),
                    });
                }
            }
        }

        let mut candidates: HashMap<CandKey, (u32, Vec<(u64, f64)>)> = HashMap::new();
        let mut scratch: Vec<u32> = Vec::new();
        let mut satisfied: HashMap<CandKey, f64> = HashMap::new();
        let mut truncations = 0u64;

        for a_idx in 0..index.entries.len() {
            satisfied.clear();
            for structure in &index.structures {
                scratch.clear();
                if structure.query(&index.entries[a_idx].value, &mut scratch) {
                    let relation = structure.relation();
                    for &c_idx in &scratch {
                        record_reference(
                            &index,
                            a_idx,
                            c_idx,
                            relation,
                            &mut satisfied,
                            params,
                            &mut truncations,
                        );
                    }
                }
            }

            let a_hash = {
                let mut h = DefaultHasher::new();
                index.entries[a_idx].value.hash(&mut h);
                h.finish()
            };
            for (&key, &score) in &satisfied {
                let slot = candidates.entry(key).or_insert_with(|| (0, Vec::new()));
                slot.0 += 1;
                slot.1.push((a_hash, score));
            }
        }

        LocalResult {
            candidates,
            node_instances,
            truncations,
        }
    }

    let locals: Vec<LocalResult> = (0..view.num_configs())
        .map(|ci| mine_config_reference(view, ci, params))
        .collect();
    let fanout_truncations = locals.iter().map(|l| l.truncations).sum();

    // Merge: valid-config counts and diversity-aggregated running-sum
    // scores, strictly in config order.
    struct Global {
        valid: u32,
        score: f64,
        seen: HashSet<u64>,
    }
    let t = Instant::now();
    let mut global: HashMap<CandKey, Global> = HashMap::new();
    for local in locals {
        for (key, (count, witnesses)) in local.candidates {
            let instances = local
                .node_instances
                .get(&key.antecedent)
                .copied()
                .unwrap_or(0);
            let entry = global.entry(key).or_insert_with(|| Global {
                valid: 0,
                score: 0.0,
                seen: HashSet::new(),
            });
            if count == instances && instances > 0 {
                entry.valid += 1;
            }
            for (hash, score) in witnesses {
                if entry.seen.len() < params.max_score_witnesses && entry.seen.insert(hash) {
                    entry.score += score;
                }
            }
        }
    }
    let merge_time = t.elapsed();

    let scored = global.into_iter().map(|(key, g)| (key, g.valid, g.score));
    MineOutcome {
        contracts: finalize_scored(scored, view.dataset, &view.config_count, params),
        merge_time,
        fanout_truncations,
    }
}
