//! Relation-finding data structures (§3.5).
//!
//! Naively evaluating every candidate contract means comparing every pair
//! of `(pattern, parameter, transformation)` values — quadratic in the
//! number of parameters and hopeless at millions of lines (§5.2's
//! brute-force ablation). Instead, Concord builds one lookup structure per
//! relation kind in a single pass over a configuration's values, then asks
//! each value for exactly the entries it relates to:
//!
//! - equality: a hash table from value to entries ([`EqualityStructure`]),
//! - containment: binary prefix tries per address family
//!   ([`ContainsStructure`] over [`PrefixTrie`]s),
//! - affixes: forward and reversed character tries ([`AffixStructure`]
//!   over [`StrTrie`]s).
//!
//! All structures implement [`RelationStructure`], the extension
//! interface §4 describes for adding new relationships.

use concord_types::{IpNetwork, Transform, Value};

use crate::fxhash::FxHashMap;
use crate::ir::PatternId;

/// A `(pattern, parameter, transformation)` triple: the nodes of the
/// relation graph (Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeKey {
    /// The pattern id.
    pub pattern: PatternId,
    /// Zero-based bound-parameter index.
    pub param: u16,
    /// The transformation applied to the parameter's value.
    pub transform_tag: TransformTag,
}

/// A compact, `Copy` encoding of [`Transform`] for hot-path hashing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TransformTag {
    /// `Transform::Id`.
    Id,
    /// `Transform::Hex`.
    Hex,
    /// `Transform::Str`.
    Str,
    /// `Transform::Segment(n)`.
    Segment(u8),
    /// `Transform::Octet(n)`.
    Octet(u8),
    /// `Transform::PrefixAddr`.
    PrefixAddr,
    /// `Transform::PrefixLen`.
    PrefixLen,
    /// `Transform::Lower`.
    Lower,
}

impl TransformTag {
    /// Converts from the full [`Transform`].
    pub fn from_transform(t: &Transform) -> Self {
        match t {
            Transform::Id => TransformTag::Id,
            Transform::Hex => TransformTag::Hex,
            Transform::Str => TransformTag::Str,
            Transform::Segment(n) => TransformTag::Segment(*n),
            Transform::Octet(n) => TransformTag::Octet(*n),
            Transform::PrefixAddr => TransformTag::PrefixAddr,
            Transform::PrefixLen => TransformTag::PrefixLen,
            Transform::Lower => TransformTag::Lower,
        }
    }

    /// Converts back to the full [`Transform`].
    pub fn to_transform(self) -> Transform {
        match self {
            TransformTag::Id => Transform::Id,
            TransformTag::Hex => Transform::Hex,
            TransformTag::Str => Transform::Str,
            TransformTag::Segment(n) => Transform::Segment(n),
            TransformTag::Octet(n) => Transform::Octet(n),
            TransformTag::PrefixAddr => Transform::PrefixAddr,
            TransformTag::PrefixLen => Transform::PrefixLen,
            TransformTag::Lower => Transform::Lower,
        }
    }
}

/// One indexed value occurrence within a configuration.
#[derive(Debug, Clone)]
pub struct Entry {
    /// The relation-graph node this value belongs to.
    pub node: NodeKey,
    /// The transformed value.
    pub value: Value,
    /// Informativeness of the (original, discounted-by-transform) value.
    pub score: f64,
}

/// The relation-structure extension interface.
///
/// §4 of the paper: "the implementation abstracts relation-learning data
/// structures behind a simple interface, making it easy to implement new
/// relationships." A structure is built in one pass over a
/// configuration's values ([`RelationStructure::insert`]) and then asked,
/// per antecedent value, for exactly the entries it relates to
/// ([`RelationStructure::query`]).
pub trait RelationStructure {
    /// The relation this structure finds witnesses for.
    fn relation(&self) -> crate::contract::RelationKind;

    /// Indexes one value occurrence under the dense entry id `entry`.
    fn insert(&mut self, value: &Value, entry: u32);

    /// Writes the entry ids related to `value` into `out`.
    ///
    /// Returns `false` when the query is too unspecific to serve as
    /// evidence (e.g. an affix fan-out past the cap); `out` is then left
    /// empty.
    fn query(&self, value: &Value, out: &mut Vec<u32>) -> bool;
}

/// Equality: a hash table from value to entries.
#[derive(Debug, Default)]
pub struct EqualityStructure {
    map: FxHashMap<Value, Vec<u32>>,
}

impl RelationStructure for EqualityStructure {
    fn relation(&self) -> crate::contract::RelationKind {
        crate::contract::RelationKind::Equals
    }

    fn insert(&mut self, value: &Value, entry: u32) {
        // Most inserts repeat an existing key (a config reuses values
        // across lines); probe first so only genuinely new keys pay the
        // clone.
        if let Some(entries) = self.map.get_mut(value) {
            entries.push(entry);
        } else {
            self.map.insert(value.clone(), vec![entry]);
        }
    }

    fn query(&self, value: &Value, out: &mut Vec<u32>) -> bool {
        if let Some(entries) = self.map.get(value) {
            out.extend_from_slice(entries);
        }
        true
    }
}

/// Containment: binary prefix tries per address family (Figure 4).
#[derive(Debug, Default)]
pub struct ContainsStructure {
    prefix4: PrefixTrie,
    prefix6: PrefixTrie,
}

impl RelationStructure for ContainsStructure {
    fn relation(&self) -> crate::contract::RelationKind {
        crate::contract::RelationKind::Contains
    }

    fn insert(&mut self, value: &Value, entry: u32) {
        if let Value::Net(net) = value {
            if net.is_v4() {
                self.prefix4.insert(*net, entry);
            } else {
                self.prefix6.insert(*net, entry);
            }
        }
    }

    fn query(&self, value: &Value, out: &mut Vec<u32>) -> bool {
        match value {
            Value::Ip(addr) => {
                let trie = if addr.is_v4() {
                    &self.prefix4
                } else {
                    &self.prefix6
                };
                trie.covering(addr.bits(), addr.family_bits(), out);
            }
            Value::Net(net) => {
                let trie = if net.is_v4() {
                    &self.prefix4
                } else {
                    &self.prefix6
                };
                trie.covering(net.bits(), net.prefix_len(), out);
            }
            _ => {}
        }
        true
    }
}

/// Affixes: a character trie over string forms, forward for `startswith`
/// or reversed for `endswith`. Strings of equal length are excluded —
/// exact equality is [`EqualityStructure`]'s business — by recording each
/// string's length alongside its entry id.
#[derive(Debug)]
pub struct AffixStructure {
    trie: StrTrie,
    /// String length per entry id, dense (`u32::MAX` = not a string
    /// entry), so the equal-length filter in `query` is O(1) per
    /// candidate instead of a binary search.
    lengths: Vec<u32>,
    /// Terminal trie node per already-inserted string: a config repeats
    /// most values across lines (~75% duplicates in the EDGE/WAN fleet),
    /// and a duplicate only needs its entry id appended at the terminal
    /// — no char-by-char walk.
    terminals: FxHashMap<String, u32>,
    reverse: bool,
    cap: usize,
}

impl AffixStructure {
    /// Creates an affix structure; `reverse = true` matches suffixes
    /// (`endswith`), `false` matches prefixes (`startswith`). Queries
    /// whose subtree exceeds `cap` entries report "too unspecific".
    pub fn new(reverse: bool, cap: usize) -> Self {
        AffixStructure {
            trie: StrTrie::default(),
            lengths: Vec::new(),
            terminals: FxHashMap::default(),
            reverse,
            cap,
        }
    }

    fn len_of(&self, entry: u32) -> Option<u32> {
        match self.lengths.get(entry as usize).copied() {
            None | Some(u32::MAX) => None,
            some => some,
        }
    }
}

impl RelationStructure for AffixStructure {
    fn relation(&self) -> crate::contract::RelationKind {
        if self.reverse {
            crate::contract::RelationKind::EndsWith
        } else {
            crate::contract::RelationKind::StartsWith
        }
    }

    fn insert(&mut self, value: &Value, entry: u32) {
        if let Value::Str(s) = value {
            if let Some(&node) = self.terminals.get(s.as_str()) {
                self.trie.push_item(node, entry);
            } else {
                let node = if self.reverse {
                    self.trie.insert(s.chars().rev(), entry)
                } else {
                    self.trie.insert(s.chars(), entry)
                };
                self.terminals.insert(s.clone(), node);
            }
            if self.lengths.len() <= entry as usize {
                self.lengths.resize(entry as usize + 1, u32::MAX);
            }
            self.lengths[entry as usize] = s.len() as u32;
        }
    }

    fn query(&self, value: &Value, out: &mut Vec<u32>) -> bool {
        let Some(s) = value.as_str() else {
            return true;
        };
        if s.len() < 2 {
            return false;
        }
        let complete = if self.reverse {
            self.trie
                .subtree_with_prefix(s.chars().rev(), self.cap, out)
        } else {
            self.trie.subtree_with_prefix(s.chars(), self.cap, out)
        };
        if !complete {
            out.clear();
            return false;
        }
        // Drop exact-equal strings: those are equality's business.
        out.retain(|&i| self.len_of(i).is_some_and(|len| len as usize > s.len()));
        true
    }
}

/// Per-configuration relation index: one pass to build, then each
/// antecedent value queries the entries it relates to through the
/// registered [`RelationStructure`]s.
pub struct ValueIndex {
    /// All indexed entries.
    pub entries: Vec<Entry>,
    /// The relation structures, queried in registration order.
    pub structures: Vec<Box<dyn RelationStructure + Send>>,
}

impl ValueIndex {
    /// Creates an index with the standard structures: equality,
    /// containment, and both affix directions (capped at `affix_cap`).
    pub fn new(affix_cap: usize) -> Self {
        ValueIndex {
            entries: Vec::new(),
            structures: vec![
                Box::new(EqualityStructure::default()),
                Box::new(ContainsStructure::default()),
                Box::new(AffixStructure::new(false, affix_cap)),
                Box::new(AffixStructure::new(true, affix_cap)),
            ],
        }
    }

    /// Adds an entry to every registered relation structure.
    pub fn insert(&mut self, entry: Entry) {
        match &entry.value {
            Value::Bool(_) => return, // Uninformative; never indexed.
            Value::Str(s) if s.is_empty() => return,
            _ => {}
        }
        let idx = self.entries.len() as u32;
        for structure in &mut self.structures {
            structure.insert(&entry.value, idx);
        }
        self.entries.push(entry);
    }
}

/// A binary trie over network prefixes (Figure 4).
#[derive(Debug, Default)]
pub struct PrefixTrie {
    nodes: Vec<TrieNode>,
}

#[derive(Debug, Default, Clone)]
struct TrieNode {
    children: [Option<u32>; 2],
    items: Vec<u32>,
}

impl PrefixTrie {
    /// Inserts a network, storing `item` at the node for its prefix.
    pub fn insert(&mut self, net: IpNetwork, item: u32) {
        if self.nodes.is_empty() {
            self.nodes.push(TrieNode::default());
        }
        let bits = net.bits();
        let mut node = 0usize;
        for depth in 0..net.prefix_len() {
            let bit = ((bits >> (127 - depth)) & 1) as usize;
            node = match self.nodes[node].children[bit] {
                Some(child) => child as usize,
                None => {
                    let child = self.nodes.len() as u32;
                    self.nodes.push(TrieNode::default());
                    self.nodes[node].children[bit] = Some(child);
                    child as usize
                }
            };
        }
        self.nodes[node].items.push(item);
    }

    /// Returns `true` when any stored network contains the value
    /// described by `bits` (left-aligned) with `len` significant bits —
    /// [`PrefixTrie::covering`] without materializing the item list
    /// (early exit at the first populated node along the path).
    pub fn covers_any(&self, bits: u128, len: u8) -> bool {
        if self.nodes.is_empty() {
            return false;
        }
        let mut node = 0usize;
        if !self.nodes[node].items.is_empty() {
            return true;
        }
        for depth in 0..len {
            let bit = ((bits >> (127 - depth)) & 1) as usize;
            match self.nodes[node].children[bit] {
                Some(child) => {
                    node = child as usize;
                    if !self.nodes[node].items.is_empty() {
                        return true;
                    }
                }
                None => break,
            }
        }
        false
    }

    /// Walks the covering path counting items, capped at two: returns
    /// `(count.min(2), first item)`. One walk answers both "any witness?"
    /// (count > 0) and "sole witness?" (count == 1) without
    /// materializing the item list.
    pub fn covering_first2(&self, bits: u128, len: u8) -> (u8, u32) {
        fn take(items: &[u32], count: &mut u8, first: &mut u32) {
            if *count == 0 {
                if let Some(&li) = items.first() {
                    *first = li;
                }
            }
            *count = count.saturating_add(items.len().min(2) as u8).min(2);
        }
        let (mut count, mut first) = (0u8, 0u32);
        if self.nodes.is_empty() {
            return (count, first);
        }
        let mut node = 0usize;
        take(&self.nodes[node].items, &mut count, &mut first);
        for depth in 0..len {
            if count >= 2 {
                break;
            }
            let bit = ((bits >> (127 - depth)) & 1) as usize;
            match self.nodes[node].children[bit] {
                Some(child) => {
                    node = child as usize;
                    take(&self.nodes[node].items, &mut count, &mut first);
                }
                None => break,
            }
        }
        (count, first)
    }

    /// Collects all items whose network contains the value described by
    /// `bits` (left-aligned) with `len` significant bits: every prefix of
    /// length `<= len` along the path.
    pub fn covering(&self, bits: u128, len: u8, out: &mut Vec<u32>) {
        if self.nodes.is_empty() {
            return;
        }
        let mut node = 0usize;
        out.extend_from_slice(&self.nodes[node].items);
        for depth in 0..len {
            let bit = ((bits >> (127 - depth)) & 1) as usize;
            match self.nodes[node].children[bit] {
                Some(child) => {
                    node = child as usize;
                    out.extend_from_slice(&self.nodes[node].items);
                }
                None => break,
            }
        }
    }
}

/// A character trie over strings, with capped subtree enumeration.
#[derive(Debug, Default)]
pub struct StrTrie {
    nodes: Vec<StrNode>,
}

#[derive(Debug, Default)]
struct StrNode {
    children: Vec<(char, u32)>,
    items: Vec<u32>,
}

impl StrTrie {
    /// Inserts the string spelled by `chars`, storing `item` at its
    /// terminal node. Returns the terminal node id, which callers may
    /// keep to append further items for the same string via
    /// [`StrTrie::push_item`] without re-walking the trie.
    pub fn insert(&mut self, chars: impl Iterator<Item = char>, item: u32) -> u32 {
        if self.nodes.is_empty() {
            self.nodes.push(StrNode::default());
        }
        let mut node = 0usize;
        for c in chars {
            node = match self.nodes[node].children.iter().find(|(ch, _)| *ch == c) {
                Some(&(_, child)) => child as usize,
                None => {
                    let child = self.nodes.len() as u32;
                    self.nodes.push(StrNode::default());
                    self.nodes[node].children.push((c, child));
                    child as usize
                }
            };
        }
        self.nodes[node].items.push(item);
        node as u32
    }

    /// Appends `item` at a terminal node previously returned by
    /// [`StrTrie::insert`] for the same string.
    pub fn push_item(&mut self, node: u32, item: u32) {
        self.nodes[node as usize].items.push(item);
    }

    /// Collects every item in the subtree below the node spelled by
    /// `prefix` (i.e. all strings having `prefix` as a prefix).
    ///
    /// Returns `false` (leaving `out` truncated) once more than `cap`
    /// items would be collected.
    pub fn subtree_with_prefix(
        &self,
        prefix: impl Iterator<Item = char>,
        cap: usize,
        out: &mut Vec<u32>,
    ) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let mut node = 0usize;
        for c in prefix {
            match self.nodes[node].children.iter().find(|(ch, _)| *ch == c) {
                Some(&(_, child)) => node = child as usize,
                None => return true, // No strings under this prefix.
            }
        }
        let mut stack = vec![node];
        while let Some(n) = stack.pop() {
            for &item in &self.nodes[n].items {
                if out.len() >= cap {
                    return false;
                }
                out.push(item);
            }
            for &(_, child) in &self.nodes[n].children {
                stack.push(child as usize);
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use concord_types::ValueType;

    fn net(s: &str) -> IpNetwork {
        s.parse().unwrap()
    }

    fn val(ty: ValueType, s: &str) -> Value {
        Value::parse_as(&ty, s).unwrap()
    }

    fn entry(i: u32, value: Value) -> Entry {
        Entry {
            node: NodeKey {
                pattern: PatternId(i),
                param: 0,
                transform_tag: TransformTag::Id,
            },
            value,
            score: 1.0,
        }
    }

    #[test]
    fn prefix_trie_covering() {
        let mut trie = PrefixTrie::default();
        trie.insert(net("0.0.0.0/0"), 0);
        trie.insert(net("10.0.0.0/8"), 1);
        trie.insert(net("10.14.0.0/16"), 2);
        trie.insert(net("192.168.0.0/16"), 3);

        let addr: concord_types::IpAddress = "10.14.14.34".parse().unwrap();
        let mut out = Vec::new();
        trie.covering(addr.bits(), 32, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![0, 1, 2]);

        // A /12 subnet query: only /0 and /8 cover it.
        let q = net("10.16.0.0/12");
        let mut out = Vec::new();
        trie.covering(q.bits(), q.prefix_len(), &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn covers_any_agrees_with_covering() {
        let mut trie = PrefixTrie::default();
        trie.insert(net("10.0.0.0/8"), 0);
        trie.insert(net("192.168.0.0/16"), 1);
        let probes = ["10.1.2.3", "192.168.4.5", "172.16.0.1"];
        for p in probes {
            let addr: concord_types::IpAddress = p.parse().unwrap();
            let mut out = Vec::new();
            trie.covering(addr.bits(), addr.family_bits(), &mut out);
            assert_eq!(
                trie.covers_any(addr.bits(), addr.family_bits()),
                !out.is_empty(),
                "{p}"
            );
        }
        assert!(!PrefixTrie::default().covers_any(0, 32));
    }

    #[test]
    fn covering_first2_agrees_with_covering() {
        let mut trie = PrefixTrie::default();
        trie.insert(net("10.0.0.0/8"), 0);
        trie.insert(net("10.1.0.0/16"), 1);
        trie.insert(net("192.168.0.0/16"), 2);
        let probes = ["10.1.2.3", "10.200.0.1", "192.168.4.5", "172.16.0.1"];
        for p in probes {
            let addr: concord_types::IpAddress = p.parse().unwrap();
            let mut out = Vec::new();
            trie.covering(addr.bits(), addr.family_bits(), &mut out);
            let (count, first) = trie.covering_first2(addr.bits(), addr.family_bits());
            assert_eq!(usize::from(count), out.len().min(2), "{p}");
            if !out.is_empty() {
                assert_eq!(first, out[0], "{p}");
            }
        }
        assert_eq!(PrefixTrie::default().covering_first2(0, 32), (0, 0));
    }

    #[test]
    fn prefix_trie_exact_match_included() {
        let mut trie = PrefixTrie::default();
        trie.insert(net("10.0.0.0/8"), 7);
        let q = net("10.0.0.0/8");
        let mut out = Vec::new();
        trie.covering(q.bits(), q.prefix_len(), &mut out);
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn str_trie_subtree() {
        let mut trie = StrTrie::default();
        for (i, s) in ["10251", "10252", "2512", "999"].iter().enumerate() {
            trie.insert(s.chars(), i as u32);
        }
        let mut out = Vec::new();
        assert!(trie.subtree_with_prefix("102".chars(), 10, &mut out));
        out.sort_unstable();
        assert_eq!(out, vec![0, 1]);

        let mut out = Vec::new();
        assert!(trie.subtree_with_prefix("zzz".chars(), 10, &mut out));
        assert!(out.is_empty());
    }

    #[test]
    fn str_trie_cap_aborts() {
        let mut trie = StrTrie::default();
        for i in 0..100 {
            trie.insert(format!("ab{i}").chars(), i);
        }
        let mut out = Vec::new();
        assert!(!trie.subtree_with_prefix("ab".chars(), 10, &mut out));
    }

    /// Queries all structures of `index` whose relation is `relation`.
    fn query(
        index: &ValueIndex,
        relation: crate::contract::RelationKind,
        value: &Value,
    ) -> (bool, Vec<u32>) {
        let structure = index
            .structures
            .iter()
            .find(|s| s.relation() == relation)
            .expect("structure registered");
        let mut out = Vec::new();
        let ok = structure.query(value, &mut out);
        (ok, out)
    }

    #[test]
    fn value_index_equality() {
        use crate::contract::RelationKind::Equals;
        let mut index = ValueIndex::new(32);
        index.insert(entry(0, val(ValueType::Num, "251")));
        index.insert(entry(1, val(ValueType::Num, "251")));
        index.insert(entry(2, val(ValueType::Num, "999")));
        assert_eq!(
            query(&index, Equals, &val(ValueType::Num, "251")).1.len(),
            2
        );
        assert_eq!(query(&index, Equals, &val(ValueType::Num, "7")).1.len(), 0);
    }

    #[test]
    fn value_index_skips_bools_and_empty_strings() {
        let mut index = ValueIndex::new(32);
        index.insert(entry(0, Value::Bool(true)));
        index.insert(entry(1, Value::Str(String::new())));
        assert!(index.entries.is_empty());
    }

    #[test]
    fn value_index_contains_query() {
        use crate::contract::RelationKind::Contains;
        let mut index = ValueIndex::new(32);
        index.insert(entry(0, val(ValueType::Pfx4, "10.0.0.0/8")));
        index.insert(entry(1, val(ValueType::Pfx4, "11.0.0.0/8")));
        let (_, out) = query(&index, Contains, &val(ValueType::Ip4, "10.1.2.3"));
        assert_eq!(out, vec![0]);

        // Net-in-net.
        let (_, out) = query(&index, Contains, &val(ValueType::Pfx4, "10.3.0.0/16"));
        assert_eq!(out, vec![0]);

        // Family separation: a v6 query hits nothing.
        let (_, out) = query(&index, Contains, &val(ValueType::Ip6, "::1"));
        assert!(out.is_empty());
    }

    #[test]
    fn value_index_affix_query() {
        use crate::contract::RelationKind::{EndsWith, StartsWith};
        let mut index = ValueIndex::new(32);
        index.insert(entry(0, Value::Str("10251".to_string())));
        index.insert(entry(1, Value::Str("251".to_string())));
        index.insert(entry(2, Value::Str("251x".to_string())));

        // endswith: which strings end with "251"? "10251" qualifies;
        // "251" itself is exact-equal and excluded.
        let probe = Value::Str("251".to_string());
        let (ok, out) = query(&index, EndsWith, &probe);
        assert!(ok);
        assert_eq!(out, vec![0]);

        // startswith: which strings start with "251"? "251x".
        let (ok, out) = query(&index, StartsWith, &probe);
        assert!(ok);
        assert_eq!(out, vec![2]);

        // Single-character affixes are rejected outright.
        let (ok, _) = query(&index, StartsWith, &Value::Str("2".to_string()));
        assert!(!ok);
    }

    #[test]
    fn affix_cap_reports_unspecific() {
        use crate::contract::RelationKind::StartsWith;
        let mut index = ValueIndex::new(4);
        for i in 0..20 {
            index.insert(entry(i, Value::Str(format!("abc{i}"))));
        }
        let (ok, out) = query(&index, StartsWith, &Value::Str("abc".to_string()));
        assert!(!ok);
        assert!(out.is_empty());
    }

    /// A custom relation structure plugs in through the trait (the §4
    /// extension point): values related when their decimal digit counts
    /// match. Registered structures participate in mining untouched.
    #[test]
    fn custom_relation_structure_plugs_in() {
        struct SameLength {
            by_len: std::collections::HashMap<usize, Vec<u32>>,
        }
        impl RelationStructure for SameLength {
            fn relation(&self) -> crate::contract::RelationKind {
                // Reuse an existing kind for the demonstration.
                crate::contract::RelationKind::Equals
            }
            fn insert(&mut self, value: &Value, entry: u32) {
                self.by_len
                    .entry(value.render().len())
                    .or_default()
                    .push(entry);
            }
            fn query(&self, value: &Value, out: &mut Vec<u32>) -> bool {
                if let Some(entries) = self.by_len.get(&value.render().len()) {
                    out.extend_from_slice(entries);
                }
                true
            }
        }
        let mut index = ValueIndex::new(32);
        index.structures.push(Box::new(SameLength {
            by_len: std::collections::HashMap::new(),
        }));
        index.insert(entry(0, val(ValueType::Num, "123")));
        index.insert(entry(1, val(ValueType::Num, "456")));
        let custom = index.structures.last().expect("registered");
        let mut out = Vec::new();
        assert!(custom.query(&val(ValueType::Num, "789"), &mut out));
        out.sort_unstable();
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn transform_tag_roundtrip() {
        for t in [
            Transform::Id,
            Transform::Hex,
            Transform::Str,
            Transform::Segment(6),
            Transform::Octet(3),
            Transform::PrefixAddr,
            Transform::PrefixLen,
            Transform::Lower,
        ] {
            assert_eq!(TransformTag::from_transform(&t).to_transform(), t);
        }
    }
}
