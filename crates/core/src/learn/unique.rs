//! Unique-contract mining (§3.4).
//!
//! Unique contracts capture parameters whose values are globally distinct
//! across all configurations (hostnames, router ids, interface addresses).
//! They catch copy-paste errors and resource reuse. To avoid learning
//! "unique" from handfuls of coincidentally distinct small numbers, the
//! aggregate informativeness of the observed values must clear the score
//! threshold (§3.5).

use concord_types::score::value_score;

use crate::contract::Contract;
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::ir::PatternId;
use crate::learn::DatasetView;
use crate::params::LearnParams;

pub(crate) fn mine(view: &DatasetView<'_>, params: &LearnParams) -> Vec<Contract> {
    struct Acc {
        values: FxHashSet<String>,
        instances: u64,
        duplicate: bool,
        score: f64,
        configs: u32,
        once_per_config: bool,
    }
    let mut stats: FxHashMap<(PatternId, u16), Acc> = FxHashMap::default();

    for (ci, _) in view.dataset.configs.iter().enumerate() {
        for (&pattern, line_idxs) in &view.lines_by_pattern[ci] {
            let config = &view.dataset.configs[ci];
            let first = &config.lines[line_idxs[0]];
            for pi in 0..first.params.len() {
                let acc = stats.entry((pattern, pi as u16)).or_insert_with(|| Acc {
                    values: FxHashSet::default(),
                    instances: 0,
                    duplicate: false,
                    score: 0.0,
                    configs: 0,
                    once_per_config: true,
                });
                acc.configs += 1;
                if line_idxs.len() != 1 {
                    acc.once_per_config = false;
                }
                for &li in line_idxs {
                    let Some(param) = config.lines[li].params.get(pi) else {
                        continue;
                    };
                    acc.instances += 1;
                    let rendered = param.value.render();
                    if acc.values.contains(&rendered) {
                        acc.duplicate = true;
                    } else {
                        if acc.values.len() < params.max_score_witnesses {
                            acc.score += value_score(&param.value);
                        }
                        acc.values.insert(rendered);
                    }
                }
            }
        }
    }

    let mut out = Vec::new();
    for (&(pattern, param), acc) in &stats {
        if acc.duplicate
            || (acc.configs as usize) < params.support
            || acc.instances < 2
            || acc.score < params.score_threshold
        {
            continue;
        }
        out.push(Contract::Unique {
            pattern: view.dataset.table.text(pattern).to_string(),
            param,
            // "Exactly once per configuration" only holds as a fleet-wide
            // rule when every configuration (not just those containing
            // the pattern) has exactly one instance — otherwise a
            // role-specific pattern would be demanded of foreign roles.
            once_per_config: acc.once_per_config && acc.configs as usize == view.num_configs(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Dataset;

    fn dataset(texts: &[String]) -> Dataset {
        let configs: Vec<(String, String)> = texts
            .iter()
            .enumerate()
            .map(|(i, t)| (format!("dev{i}"), t.clone()))
            .collect();
        Dataset::from_named_texts(&configs, &[]).unwrap()
    }

    fn uniques(contracts: &[Contract]) -> Vec<(&str, u16, bool)> {
        contracts
            .iter()
            .filter_map(|c| match c {
                Contract::Unique {
                    pattern,
                    param,
                    once_per_config,
                } => Some((pattern.as_str(), *param, *once_per_config)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn learns_unique_hostnames() {
        let texts: Vec<String> = (0..8)
            .map(|i| format!("hostname DEV{}\n", 1000 + i))
            .collect();
        let ds = dataset(&texts);
        let view = DatasetView::new(&ds);
        let contracts = mine(&view, &LearnParams::default());
        let u = uniques(&contracts);
        assert_eq!(u.len(), 1);
        assert_eq!(u[0], ("/hostname DEV[a:num]", 0, true));
    }

    #[test]
    fn duplicate_values_block_learning() {
        let mut texts: Vec<String> = (0..7)
            .map(|i| format!("hostname DEV{}\n", 1000 + i))
            .collect();
        texts.push("hostname DEV1000\n".to_string());
        let ds = dataset(&texts);
        let view = DatasetView::new(&ds);
        assert!(uniques(&mine(&view, &LearnParams::default())).is_empty());
    }

    #[test]
    fn multiple_instances_clear_once_flag() {
        let texts: Vec<String> = (0..6)
            .map(|i| {
                format!(
                    "interface Et1\n ip address 10.{i}.0.1\ninterface Et2\n ip address 10.{i}.0.2\n"
                )
            })
            .collect();
        let ds = dataset(&texts);
        let view = DatasetView::new(&ds);
        let contracts = mine(&view, &LearnParams::default());
        let u = uniques(&contracts);
        assert_eq!(u.len(), 1);
        assert!(u[0].0.ends_with("ip address [a:ip4]"));
        assert!(!u[0].2, "multiple instances per config");
    }

    #[test]
    fn low_information_values_filtered() {
        // Distinct but tiny numbers (0..7): each scores ~0.1, total < 1.0
        // threshold is not met... 8 values around 0.15 sum to ~1.1, so use
        // a higher threshold to demonstrate the knob.
        let texts: Vec<String> = (0..6).map(|i| format!("unit {i}\n")).collect();
        let ds = dataset(&texts);
        let view = DatasetView::new(&ds);
        let params = LearnParams {
            score_threshold: 2.0,
            ..LearnParams::default()
        };
        assert!(uniques(&mine(&view, &params)).is_empty());
    }

    #[test]
    fn support_threshold() {
        let texts: Vec<String> = (0..3)
            .map(|i| format!("hostname DEV{}\n", 1000 + i))
            .collect();
        let ds = dataset(&texts);
        let view = DatasetView::new(&ds);
        assert!(uniques(&mine(&view, &LearnParams::default())).is_empty());
    }
}
