//! Unique-contract mining (§3.4).
//!
//! Unique contracts capture parameters whose values are globally distinct
//! across all configurations (hostnames, router ids, interface addresses).
//! They catch copy-paste errors and resource reuse. To avoid learning
//! "unique" from handfuls of coincidentally distinct small numbers, the
//! aggregate informativeness of the observed values must clear the score
//! threshold (§3.5).

use concord_types::score::value_score;

use crate::contract::Contract;
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::ir::PatternId;
use crate::learn::DatasetView;
use crate::params::LearnParams;

/// One `(pattern, param)` pair's evidence within a single config.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct ParamSketch {
    /// Distinct rendered values in first-occurrence order, each with the
    /// informativeness score of its first instance.
    pub(crate) distinct: Vec<(String, f64)>,
    /// Total instances (including repeats) in this config.
    pub(crate) instances: u64,
    /// A value repeated *within* this config.
    pub(crate) intra_dup: bool,
    /// The pattern has more than one line in this config.
    pub(crate) multi: bool,
}

/// Per-config unique sketch.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct Sketch {
    /// `((pattern, param), evidence)` for each pair present in the
    /// config.
    pub(crate) entries: Vec<((PatternId, u16), ParamSketch)>,
}

/// Accumulates one config's uniqueness evidence.
pub(crate) fn sketch_config(
    dataset: &crate::ir::Dataset,
    ci: usize,
    lines_by_pattern: &FxHashMap<PatternId, Vec<usize>>,
) -> Sketch {
    let config = &dataset.configs[ci];
    let arenas = &dataset.arenas;
    let mut entries = Vec::new();
    for (&pattern, line_idxs) in lines_by_pattern {
        let first = config.line(arenas, line_idxs[0]);
        for pi in 0..first.params.len() {
            let mut ps = ParamSketch {
                multi: line_idxs.len() != 1,
                ..ParamSketch::default()
            };
            let mut seen: FxHashSet<String> = FxHashSet::default();
            for &li in line_idxs {
                let Some(param) = config.line(arenas, li).params.get(pi) else {
                    continue;
                };
                ps.instances += 1;
                let rendered = param.value.render();
                if seen.contains(rendered.as_str()) {
                    ps.intra_dup = true;
                } else {
                    seen.insert(rendered.clone());
                    ps.distinct.push((rendered, value_score(&param.value)));
                }
            }
            entries.push(((pattern, pi as u16), ps));
        }
    }
    Sketch { entries }
}

/// One `(pattern, param)` pair's folded accumulation.
#[derive(Debug)]
struct AccEntry {
    values: FxHashSet<String>,
    instances: u64,
    duplicate: bool,
    score: f64,
    configs: u32,
    once_per_config: bool,
}

/// Global accumulation folded from per-config sketches *in config
/// order* — the score accrual cap makes the fold order-sensitive, and
/// config order is the order the reference accumulation used.
#[derive(Debug, Default)]
pub(crate) struct Acc {
    stats: FxHashMap<(PatternId, u16), AccEntry>,
}

/// Folds one config's sketch into the accumulation.
pub(crate) fn fold(acc: &mut Acc, sketch: &Sketch, params: &LearnParams) {
    for ((pattern, param), ps) in &sketch.entries {
        let entry = acc
            .stats
            .entry((*pattern, *param))
            .or_insert_with(|| AccEntry {
                values: FxHashSet::default(),
                instances: 0,
                duplicate: false,
                score: 0.0,
                configs: 0,
                once_per_config: true,
            });
        entry.configs += 1;
        if ps.multi {
            entry.once_per_config = false;
        }
        entry.instances += ps.instances;
        if ps.intra_dup {
            entry.duplicate = true;
        }
        for (rendered, score) in &ps.distinct {
            if entry.values.contains(rendered.as_str()) {
                entry.duplicate = true;
            } else {
                if entry.values.len() < params.max_score_witnesses {
                    entry.score += score;
                }
                entry.values.insert(rendered.clone());
            }
        }
    }
}

/// Applies the support/score bars and renders contracts.
pub(crate) fn emit(
    acc: Acc,
    dataset: &crate::ir::Dataset,
    num_configs: usize,
    params: &LearnParams,
) -> Vec<Contract> {
    let mut out = Vec::new();
    for (&(pattern, param), entry) in &acc.stats {
        if entry.duplicate
            || (entry.configs as usize) < params.support
            || entry.instances < 2
            || entry.score < params.score_threshold
        {
            continue;
        }
        out.push(Contract::Unique {
            pattern: dataset.table.text(pattern).to_string(),
            param,
            // "Exactly once per configuration" only holds as a fleet-wide
            // rule when every configuration (not just those containing
            // the pattern) has exactly one instance — otherwise a
            // role-specific pattern would be demanded of foreign roles.
            once_per_config: entry.once_per_config && entry.configs as usize == num_configs,
        });
    }
    out
}

pub(crate) fn mine(view: &DatasetView<'_>, params: &LearnParams) -> Vec<Contract> {
    let mut acc = Acc::default();
    for ci in 0..view.num_configs() {
        let sketch = sketch_config(view.dataset, ci, &view.lines_by_pattern[ci]);
        fold(&mut acc, &sketch, params);
    }
    emit(acc, view.dataset, view.num_configs(), params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Dataset;

    fn dataset(texts: &[String]) -> Dataset {
        let configs: Vec<(String, String)> = texts
            .iter()
            .enumerate()
            .map(|(i, t)| (format!("dev{i}"), t.clone()))
            .collect();
        Dataset::from_named_texts(&configs, &[]).unwrap()
    }

    fn uniques(contracts: &[Contract]) -> Vec<(&str, u16, bool)> {
        contracts
            .iter()
            .filter_map(|c| match c {
                Contract::Unique {
                    pattern,
                    param,
                    once_per_config,
                } => Some((pattern.as_str(), *param, *once_per_config)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn learns_unique_hostnames() {
        let texts: Vec<String> = (0..8)
            .map(|i| format!("hostname DEV{}\n", 1000 + i))
            .collect();
        let ds = dataset(&texts);
        let view = DatasetView::new(&ds);
        let contracts = mine(&view, &LearnParams::default());
        let u = uniques(&contracts);
        assert_eq!(u.len(), 1);
        assert_eq!(u[0], ("/hostname DEV[a:num]", 0, true));
    }

    #[test]
    fn duplicate_values_block_learning() {
        let mut texts: Vec<String> = (0..7)
            .map(|i| format!("hostname DEV{}\n", 1000 + i))
            .collect();
        texts.push("hostname DEV1000\n".to_string());
        let ds = dataset(&texts);
        let view = DatasetView::new(&ds);
        assert!(uniques(&mine(&view, &LearnParams::default())).is_empty());
    }

    #[test]
    fn multiple_instances_clear_once_flag() {
        let texts: Vec<String> = (0..6)
            .map(|i| {
                format!(
                    "interface Et1\n ip address 10.{i}.0.1\ninterface Et2\n ip address 10.{i}.0.2\n"
                )
            })
            .collect();
        let ds = dataset(&texts);
        let view = DatasetView::new(&ds);
        let contracts = mine(&view, &LearnParams::default());
        let u = uniques(&contracts);
        assert_eq!(u.len(), 1);
        assert!(u[0].0.ends_with("ip address [a:ip4]"));
        assert!(!u[0].2, "multiple instances per config");
    }

    #[test]
    fn low_information_values_filtered() {
        // Distinct but tiny numbers (0..7): each scores ~0.1, total < 1.0
        // threshold is not met... 8 values around 0.15 sum to ~1.1, so use
        // a higher threshold to demonstrate the knob.
        let texts: Vec<String> = (0..6).map(|i| format!("unit {i}\n")).collect();
        let ds = dataset(&texts);
        let view = DatasetView::new(&ds);
        let params = LearnParams {
            score_threshold: 2.0,
            ..LearnParams::default()
        };
        assert!(uniques(&mine(&view, &params)).is_empty());
    }

    #[test]
    fn support_threshold() {
        let texts: Vec<String> = (0..3)
            .map(|i| format!("hostname DEV{}\n", 1000 + i))
            .collect();
        let ds = dataset(&texts);
        let view = DatasetView::new(&ds);
        assert!(uniques(&mine(&view, &LearnParams::default())).is_empty());
    }
}
