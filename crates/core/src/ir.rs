//! The intermediate representation shared by learning and checking.
//!
//! A [`Dataset`] holds one [`ConfigIr`] per configuration file plus the
//! shared interning state: a [`PatternTable`] for embedded patterns, a
//! [`StrArena`] for original line texts and configuration names, and a
//! [`ParamArena`] deduplicating identical parameter slices. Every content
//! line is stored structure-of-arrays — parallel `u32` columns (pattern
//! id, param-slice id, line number, original-text id) instead of a
//! per-line record fanning out into `Arc` allocations — and read back
//! through lightweight [`LineRef`] views. Two lines with the same text
//! anywhere in the corpus share one arena entry, so resident memory
//! scales with *distinct* content, not line count.
//!
//! Metadata files (§3.7) are lexed once, prefixed with `@meta`, and
//! appended to every configuration so the miners discover config↔metadata
//! relationships with no special cases. Because metadata lines are always
//! appended *after* a configuration's own lines, the own/meta split is a
//! single boundary index per configuration (`is_meta(li)` ⇔
//! `li >= own_len`) rather than a per-line flag, which also makes
//! [`ConfigIr::own_line_count`] O(1).
//!
//! Datasets are also *mutable*: [`Dataset::upsert_config`] and
//! [`Dataset::remove_config`] absorb single-file edits without rebuilding
//! the corpus — only the changed file is re-embedded and re-lexed (through
//! the shared [`LexCache`]), and all interners grow append-only so
//! existing ids stay stable across edits. Arena entries orphaned by an
//! edit stay interned (they are deduplicated, so repeated edit churn over
//! similar content does not grow the arena). This is the foundation the
//! resident `concord-engine` snapshot builds on.

use std::collections::HashSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::time::Instant;

use concord_formats::{embed_auto, FormatCategory};
use concord_lexer::{LexCache, LexedLine, Lexer, Param};

use crate::fxhash::FxHasher;
use crate::parallel;
use crate::stats::BuildStats;

/// A dense identifier for an interned pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PatternId(pub u32);

/// A dense identifier for a string interned in a [`StrArena`]
/// (original line texts and configuration names).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StrId(pub u32);

/// A dense identifier for a parameter slice interned in a [`ParamArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ParamSliceId(pub u32);

/// Empty bucket sentinel of the interners' probe tables.
const EMPTY: u32 = u32::MAX;

/// Fx hash of a string (the interners' single hash function).
#[inline]
fn hash_text(text: &str) -> u64 {
    let mut h = FxHasher::default();
    h.write(text.as_bytes());
    h.finish()
}

/// Fx hash of a parameter slice.
#[inline]
fn hash_params(params: &[Param]) -> u64 {
    let mut h = FxHasher::default();
    for p in params {
        p.hash(&mut h);
    }
    h.finish()
}

/// Interns strings into one contiguous byte buffer, returning dense
/// [`StrId`]s.
///
/// This is the generalization of the pattern interner's single-probe
/// open-addressing design (Fx-hashed, linear probing): one probe walk
/// serves both hit and miss, so [`intern`] touches the table exactly once
/// per call. Interned bytes live in a single `String` arena addressed by
/// `(offset, len)` spans — no per-string allocation, no per-string
/// refcount. Ids are append-only: interning never invalidates previously
/// returned ids, which is what allows datasets to be edited in place.
///
/// [`intern`]: StrArena::intern
#[derive(Debug, Clone)]
pub struct StrArena {
    /// All interned bytes, end to end.
    buf: String,
    /// `(offset, len)` of each interned string, indexed by id.
    spans: Vec<(u32, u32)>,
    /// Cached hash per string (grow re-buckets without re-hashing).
    hashes: Vec<u64>,
    /// Open-addressing probe table over ids; power-of-two length.
    buckets: Vec<u32>,
}

impl Default for StrArena {
    fn default() -> Self {
        StrArena {
            buf: String::new(),
            spans: Vec::new(),
            hashes: Vec::new(),
            buckets: vec![EMPTY; 16],
        }
    }
}

impl StrArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn span_text(&self, i: usize) -> &str {
        let (off, len) = self.spans[i];
        &self.buf[off as usize..(off + len) as usize]
    }

    /// Interns `text`, returning its id.
    ///
    /// One probe walk: an existing entry returns its id from the same
    /// walk that would otherwise find the insertion slot.
    pub fn intern(&mut self, text: &str) -> StrId {
        let hash = hash_text(text);
        let mask = self.buckets.len() - 1;
        let mut slot = (hash as usize) & mask;
        loop {
            let entry = self.buckets[slot];
            if entry == EMPTY {
                break;
            }
            let i = entry as usize;
            if self.hashes[i] == hash && self.span_text(i) == text {
                return StrId(entry);
            }
            slot = (slot + 1) & mask;
        }
        let id = u32::try_from(self.spans.len()).expect("string arena fits u32 ids");
        let off = u32::try_from(self.buf.len()).expect("string arena fits u32 offsets");
        let len = u32::try_from(text.len()).expect("interned string fits u32 length");
        self.buf.push_str(text);
        self.spans.push((off, len));
        self.hashes.push(hash);
        self.buckets[slot] = id;
        // Keep load under 7/8 so probe chains stay short.
        if (self.spans.len() + 1) * 8 > self.buckets.len() * 7 {
            self.grow();
        }
        StrId(id)
    }

    /// Doubles the probe table and re-buckets every id from its cached
    /// hash (strings are never re-hashed).
    fn grow(&mut self) {
        let new_len = self.buckets.len() * 2;
        let mask = new_len - 1;
        let mut buckets = vec![EMPTY; new_len];
        for (i, &hash) in self.hashes.iter().enumerate() {
            let mut slot = (hash as usize) & mask;
            while buckets[slot] != EMPTY {
                slot = (slot + 1) & mask;
            }
            buckets[slot] = i as u32;
        }
        self.buckets = buckets;
    }

    /// Looks up an already-interned string.
    pub fn get(&self, text: &str) -> Option<StrId> {
        let hash = hash_text(text);
        let mask = self.buckets.len() - 1;
        let mut slot = (hash as usize) & mask;
        loop {
            let entry = self.buckets[slot];
            if entry == EMPTY {
                return None;
            }
            let i = entry as usize;
            if self.hashes[i] == hash && self.span_text(i) == text {
                return Some(StrId(entry));
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Returns the text of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this arena.
    #[inline]
    pub fn text(&self, id: StrId) -> &str {
        self.span_text(id.0 as usize)
    }

    /// Returns the number of interned strings.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Returns `true` if nothing is interned.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Iterates over all `(id, text)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (StrId, &str)> {
        (0..self.spans.len()).map(|i| (StrId(i as u32), self.span_text(i)))
    }

    /// Heap bytes held by the arena: interned bytes plus index overhead.
    pub fn heap_bytes(&self) -> usize {
        self.buf.capacity()
            + self.spans.capacity() * std::mem::size_of::<(u32, u32)>()
            + self.hashes.capacity() * std::mem::size_of::<u64>()
            + self.buckets.capacity() * std::mem::size_of::<u32>()
    }
}

/// Interns pattern strings to dense ids.
///
/// A thin wrapper over [`StrArena`] preserving the historical pattern-id
/// type: pattern ids and string ids are separate id spaces (a
/// [`PatternId`] indexes this table, a [`StrId`] indexes the dataset's
/// text arena), so they cannot be confused at type-check time.
#[derive(Debug, Clone, Default)]
pub struct PatternTable {
    arena: StrArena,
}

impl PatternTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `text`, returning its id.
    pub fn intern(&mut self, text: &str) -> PatternId {
        PatternId(self.arena.intern(text).0)
    }

    /// Looks up an already-interned pattern.
    pub fn get(&self, text: &str) -> Option<PatternId> {
        self.arena.get(text).map(|id| PatternId(id.0))
    }

    /// Returns the text of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    #[inline]
    pub fn text(&self, id: PatternId) -> &str {
        self.arena.text(StrId(id.0))
    }

    /// Returns the number of interned patterns.
    pub fn len(&self) -> usize {
        self.arena.len()
    }

    /// Returns `true` if no patterns are interned.
    pub fn is_empty(&self) -> bool {
        self.arena.is_empty()
    }

    /// Iterates over all `(id, text)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (PatternId, &str)> {
        self.arena.iter().map(|(id, t)| (PatternId(id.0), t))
    }

    /// Heap bytes held by the table.
    pub fn heap_bytes(&self) -> usize {
        self.arena.heap_bytes()
    }
}

/// Interns parameter slices to dense ids, deduplicating identical slices.
///
/// Parameters are stored flattened in one `Vec<Param>` addressed by
/// `(offset, len)` spans; two lines binding the same values anywhere in
/// the corpus (e.g. every `vlan 10` line) share one entry. Same
/// single-probe open-addressing design as [`StrArena`].
#[derive(Debug, Clone)]
pub struct ParamArena {
    /// All interned parameters, slice after slice.
    flat: Vec<Param>,
    /// `(offset, len)` of each interned slice, indexed by id.
    spans: Vec<(u32, u32)>,
    /// Cached hash per slice.
    hashes: Vec<u64>,
    /// Open-addressing probe table over ids; power-of-two length.
    buckets: Vec<u32>,
}

impl Default for ParamArena {
    fn default() -> Self {
        ParamArena {
            flat: Vec::new(),
            spans: Vec::new(),
            hashes: Vec::new(),
            buckets: vec![EMPTY; 16],
        }
    }
}

impl ParamArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn span_slice(&self, i: usize) -> &[Param] {
        let (off, len) = self.spans[i];
        &self.flat[off as usize..(off + len) as usize]
    }

    /// Interns `params`, returning its id. Identical slices (same names,
    /// types, and values, in order) share one id.
    pub fn intern(&mut self, params: &[Param]) -> ParamSliceId {
        let hash = hash_params(params);
        let mask = self.buckets.len() - 1;
        let mut slot = (hash as usize) & mask;
        loop {
            let entry = self.buckets[slot];
            if entry == EMPTY {
                break;
            }
            let i = entry as usize;
            if self.hashes[i] == hash && self.span_slice(i) == params {
                return ParamSliceId(entry);
            }
            slot = (slot + 1) & mask;
        }
        let id = u32::try_from(self.spans.len()).expect("param arena fits u32 ids");
        let off = u32::try_from(self.flat.len()).expect("param arena fits u32 offsets");
        let len = u32::try_from(params.len()).expect("param slice fits u32 length");
        self.flat.extend_from_slice(params);
        self.spans.push((off, len));
        self.hashes.push(hash);
        self.buckets[slot] = id;
        if (self.spans.len() + 1) * 8 > self.buckets.len() * 7 {
            self.grow();
        }
        ParamSliceId(id)
    }

    /// Doubles the probe table and re-buckets every id from its cached
    /// hash.
    fn grow(&mut self) {
        let new_len = self.buckets.len() * 2;
        let mask = new_len - 1;
        let mut buckets = vec![EMPTY; new_len];
        for (i, &hash) in self.hashes.iter().enumerate() {
            let mut slot = (hash as usize) & mask;
            while buckets[slot] != EMPTY {
                slot = (slot + 1) & mask;
            }
            buckets[slot] = i as u32;
        }
        self.buckets = buckets;
    }

    /// Returns the slice of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this arena.
    #[inline]
    pub fn slice(&self, id: ParamSliceId) -> &[Param] {
        self.span_slice(id.0 as usize)
    }

    /// Returns the number of interned (distinct) slices.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Returns `true` if nothing is interned.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Total parameters stored across all distinct slices.
    pub fn total_params(&self) -> usize {
        self.flat.len()
    }

    /// Approximate heap bytes held by the arena: flattened parameters
    /// (struct plus name-string heap) and index overhead. `Value` heap
    /// payloads are not walked.
    pub fn heap_bytes(&self) -> usize {
        self.flat.capacity() * std::mem::size_of::<Param>()
            + self.flat.iter().map(|p| p.name.capacity()).sum::<usize>()
            + self.spans.capacity() * std::mem::size_of::<(u32, u32)>()
            + self.hashes.capacity() * std::mem::size_of::<u64>()
            + self.buckets.capacity() * std::mem::size_of::<u32>()
    }
}

/// The shared interning arenas of a [`Dataset`]: line/name texts and
/// parameter slices. (Patterns keep their own table for id-space
/// separation.)
#[derive(Debug, Clone, Default)]
pub struct Arenas {
    /// Original line texts and configuration names.
    pub strings: StrArena,
    /// Deduplicated parameter slices.
    pub params: ParamArena,
}

/// A lightweight view of one configuration line, resolved against the
/// dataset's arenas. Borrowed fields point into arena storage; the view
/// itself is `Copy` and does not borrow the [`ConfigIr`].
#[derive(Debug, Clone, Copy)]
pub struct LineRef<'a> {
    /// The interned pattern id of the full embedded line.
    pub pattern: PatternId,
    /// 1-based line number in the source file.
    pub line_no: u32,
    /// `true` when the line came from an appended metadata file.
    pub is_meta: bool,
    /// The trimmed original line text.
    pub original: &'a str,
    /// Parameters bound from the original line text, in order.
    pub params: &'a [Param],
}

/// One configuration file after the full front-end pipeline, stored
/// structure-of-arrays: parallel `u32`-id columns per line, resolved
/// through the dataset's [`Arenas`] via [`ConfigIr::line`].
#[derive(Debug, Clone)]
pub struct ConfigIr {
    /// The configuration's name (usually the file name / device name),
    /// interned in the dataset's string arena.
    pub name: StrId,
    /// The inferred format category.
    pub format: FormatCategory,
    /// Per-line pattern ids, in source order (metadata lines appended
    /// last).
    patterns: Vec<PatternId>,
    /// Per-line parameter-slice ids.
    params: Vec<ParamSliceId>,
    /// Per-line 1-based source line numbers.
    line_nos: Vec<u32>,
    /// Per-line original-text ids.
    originals: Vec<StrId>,
    /// Boundary between own lines (`..own_len`) and appended metadata
    /// lines (`own_len..`). Valid because metadata is always appended
    /// after every own line.
    own_len: u32,
}

impl ConfigIr {
    /// Total number of lines, including appended metadata.
    #[inline]
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Returns `true` when the configuration has no lines at all.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Returns the number of non-metadata lines. O(1): the own/meta
    /// boundary is stored, not recounted.
    #[inline]
    pub fn own_line_count(&self) -> usize {
        self.own_len as usize
    }

    /// The pattern id of line `li`.
    #[inline]
    pub fn pattern(&self, li: usize) -> PatternId {
        self.patterns[li]
    }

    /// All per-line pattern ids, in source order.
    #[inline]
    pub fn patterns(&self) -> &[PatternId] {
        &self.patterns
    }

    /// The parameter-slice id of line `li`.
    #[inline]
    pub fn params_id(&self, li: usize) -> ParamSliceId {
        self.params[li]
    }

    /// The original-text id of line `li`.
    #[inline]
    pub fn original_id(&self, li: usize) -> StrId {
        self.originals[li]
    }

    /// The 1-based source line number of line `li`.
    #[inline]
    pub fn line_no(&self, li: usize) -> u32 {
        self.line_nos[li]
    }

    /// Whether line `li` came from an appended metadata file.
    #[inline]
    pub fn is_meta(&self, li: usize) -> bool {
        li >= self.own_len as usize
    }

    /// Resolves line `li` against `arenas` into a [`LineRef`] view.
    ///
    /// # Panics
    ///
    /// Panics if `li` is out of bounds or `arenas` is not the dataset's
    /// arena set.
    #[inline]
    pub fn line<'a>(&self, arenas: &'a Arenas, li: usize) -> LineRef<'a> {
        LineRef {
            pattern: self.patterns[li],
            line_no: self.line_nos[li],
            is_meta: self.is_meta(li),
            original: arenas.strings.text(self.originals[li]),
            params: arenas.params.slice(self.params[li]),
        }
    }

    /// Iterates [`LineRef`] views over every line.
    pub fn lines<'a>(&'a self, arenas: &'a Arenas) -> impl Iterator<Item = LineRef<'a>> + 'a {
        (0..self.len()).map(move |li| self.line(arenas, li))
    }

    /// Removes line `li` from the configuration (test/oracle support —
    /// production edits replace whole configurations). Callers editing a
    /// dataset in place should go through [`Dataset::remove_line`] so the
    /// cached total stays correct.
    pub fn remove_line(&mut self, li: usize) {
        self.patterns.remove(li);
        self.params.remove(li);
        self.line_nos.remove(li);
        self.originals.remove(li);
        if li < self.own_len as usize {
            self.own_len -= 1;
        }
    }

    /// Heap bytes held by the SoA columns.
    pub fn heap_bytes(&self) -> usize {
        self.patterns.capacity() * std::mem::size_of::<PatternId>()
            + self.params.capacity() * std::mem::size_of::<ParamSliceId>()
            + self.line_nos.capacity() * std::mem::size_of::<u32>()
            + self.originals.capacity() * std::mem::size_of::<StrId>()
    }
}

/// The shared metadata columns appended to every configuration. Only ids
/// are copied per configuration; the underlying text/param storage lives
/// once in the arenas.
#[derive(Debug, Clone)]
struct MetaCols {
    patterns: Vec<PatternId>,
    params: Vec<ParamSliceId>,
    line_nos: Vec<u32>,
    originals: Vec<StrId>,
}

/// A set of configurations sharing one pattern table and one arena set.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// The shared pattern interner.
    pub table: PatternTable,
    /// The shared string/parameter arenas.
    pub arenas: Arenas,
    /// The configurations.
    pub configs: Vec<ConfigIr>,
    /// Lexed metadata files, kept so edits can append metadata to newly
    /// upserted configurations.
    meta_lexed: Vec<Vec<LexedLine>>,
    /// The shared metadata columns (interned lazily so id assignment
    /// matches the batch build order: first config's own lines, then
    /// metadata). `None` until the first configuration needs them.
    meta_cols: Option<MetaCols>,
    /// Cached total of non-metadata lines across all configurations,
    /// maintained on every edit so [`Dataset::total_lines`] is O(1).
    total_own: usize,
}

/// Error constructing a [`Dataset`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// A user-supplied custom token definition failed to compile.
    BadTokenDef(String),
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::BadTokenDef(msg) => write!(f, "bad token definition: {msg}"),
        }
    }
}

impl std::error::Error for DatasetError {}

impl Dataset {
    /// Builds a dataset from `(name, text)` configuration pairs with the
    /// standard lexer and automatic format detection.
    ///
    /// `metadata` files are embedded/lexed with an `@meta` pattern prefix
    /// and appended to every configuration (§3.7).
    pub fn from_named_texts(
        configs: &[(String, String)],
        metadata: &[(String, String)],
    ) -> Result<Dataset, DatasetError> {
        Self::build(configs, metadata, &Lexer::standard(), true, 1)
    }

    /// Builds a dataset with full control over the lexer, context
    /// embedding, and parallelism.
    ///
    /// With `embed_context = false` every line is treated as flat text —
    /// the "Baseline" configuration of Figure 7.
    ///
    /// Lexing goes through a fresh [`LexCache`], so each distinct line
    /// shape across all configurations is scanned exactly once. Use
    /// [`Dataset::build_with_stats`] to share a cache across builds, to
    /// disable caching, or to observe timing and hit counts.
    pub fn build(
        configs: &[(String, String)],
        metadata: &[(String, String)],
        lexer: &Lexer,
        embed_context: bool,
        parallelism: usize,
    ) -> Result<Dataset, DatasetError> {
        let cache = LexCache::new();
        Self::build_with_stats(
            configs,
            metadata,
            lexer,
            embed_context,
            parallelism,
            Some(&cache),
        )
        .map(|(dataset, _)| dataset)
    }

    /// Like [`Dataset::build`], with explicit control over the lex cache
    /// (`None` disables caching entirely) and reporting [`BuildStats`]
    /// for the run: lexing/interning time and the cache hit/miss deltas
    /// this build contributed.
    pub fn build_with_stats(
        configs: &[(String, String)],
        metadata: &[(String, String)],
        lexer: &Lexer,
        embed_context: bool,
        parallelism: usize,
        cache: Option<&LexCache>,
    ) -> Result<(Dataset, BuildStats), DatasetError> {
        let cache_before = cache.map(|c| c.stats());

        let lex_start = Instant::now();
        // Metadata is lexed once and shared across configs.
        let meta_lexed: Vec<Vec<LexedLine>> = metadata
            .iter()
            .map(|(_, text)| lex_text(text, lexer, embed_context, cache).1)
            .collect();

        // Lex configs (possibly in parallel), then intern sequentially so
        // ids are deterministic regardless of thread count.
        let lexed: Vec<(FormatCategory, Vec<LexedLine>)> = parallel::map(
            configs,
            |(_, text)| lex_text(text, lexer, embed_context, cache),
            parallelism,
        );
        let lex_time = lex_start.elapsed();

        let intern_start = Instant::now();
        let mut dataset = Dataset {
            table: PatternTable::new(),
            arenas: Arenas::default(),
            configs: Vec::with_capacity(configs.len()),
            meta_lexed,
            meta_cols: None,
            total_own: 0,
        };
        for ((name, _), (format, lines)) in configs.iter().zip(lexed) {
            let config = dataset.make_config(name, format, &lines);
            dataset.total_own += config.own_line_count();
            dataset.configs.push(config);
        }
        let intern_time = intern_start.elapsed();

        let (cache_hits, cache_misses) = match (cache_before, cache.map(|c| c.stats())) {
            (Some(before), Some(after)) => (after.hits - before.hits, after.misses - before.misses),
            _ => (0, 0),
        };
        let stats = BuildStats {
            configs: dataset.configs.len(),
            lines: dataset.configs.iter().map(ConfigIr::len).sum(),
            patterns: dataset.table.len(),
            lex_time,
            intern_time,
            cache_enabled: cache.is_some(),
            cache_hits,
            cache_misses,
        };
        Ok((dataset, stats))
    }

    /// Interns one lexed configuration into SoA columns and appends the
    /// shared metadata columns.
    fn make_config(&mut self, name: &str, format: FormatCategory, lines: &[LexedLine]) -> ConfigIr {
        let mut patterns = Vec::with_capacity(lines.len());
        let mut params = Vec::with_capacity(lines.len());
        let mut line_nos = Vec::with_capacity(lines.len());
        let mut originals = Vec::with_capacity(lines.len());
        for l in lines {
            patterns.push(self.table.intern(&l.pattern));
            params.push(self.arenas.params.intern(&l.params));
            line_nos.push(l.line_no);
            originals.push(self.arenas.strings.intern(&l.original));
        }
        let own_len = u32::try_from(patterns.len()).expect("config line count fits u32");
        let meta = self.shared_meta_cols();
        patterns.extend_from_slice(&meta.patterns);
        params.extend_from_slice(&meta.params);
        line_nos.extend_from_slice(&meta.line_nos);
        originals.extend_from_slice(&meta.originals);
        let name = self.arenas.strings.intern(name);
        ConfigIr {
            name,
            format,
            patterns,
            params,
            line_nos,
            originals,
            own_len,
        }
    }

    /// Returns the shared metadata columns, interning their patterns on
    /// first use (after the first configuration's own lines, matching the
    /// batch interning order).
    fn shared_meta_cols(&mut self) -> &MetaCols {
        if self.meta_cols.is_none() {
            let mut cols = MetaCols {
                patterns: Vec::new(),
                params: Vec::new(),
                line_nos: Vec::new(),
                originals: Vec::new(),
            };
            // Move the lexed metadata out while interning to appease the
            // borrow checker, then put it back.
            let meta_lexed = std::mem::take(&mut self.meta_lexed);
            for l in meta_lexed.iter().flat_map(|lines| lines.iter()) {
                cols.patterns
                    .push(self.table.intern(&format!("@meta{}", l.pattern)));
                cols.params.push(self.arenas.params.intern(&l.params));
                cols.line_nos.push(l.line_no);
                cols.originals.push(self.arenas.strings.intern(&l.original));
            }
            self.meta_lexed = meta_lexed;
            self.meta_cols = Some(cols);
        }
        self.meta_cols.as_ref().expect("just populated")
    }

    /// Appends one already-lexed configuration whose first `own_len`
    /// lines are its own and whose remainder are (already-prefixed)
    /// metadata lines. Conversion support for the `legacy-ir` oracle.
    #[cfg(any(test, feature = "legacy-ir"))]
    pub(crate) fn push_converted(
        &mut self,
        name: &str,
        format: FormatCategory,
        lines: &[LexedLine],
        own_len: usize,
    ) {
        let mut patterns = Vec::with_capacity(lines.len());
        let mut params = Vec::with_capacity(lines.len());
        let mut line_nos = Vec::with_capacity(lines.len());
        let mut originals = Vec::with_capacity(lines.len());
        for l in lines {
            patterns.push(self.table.intern(&l.pattern));
            params.push(self.arenas.params.intern(&l.params));
            line_nos.push(l.line_no);
            originals.push(self.arenas.strings.intern(&l.original));
        }
        let name = self.arenas.strings.intern(name);
        self.total_own += own_len;
        self.configs.push(ConfigIr {
            name,
            format,
            patterns,
            params,
            line_nos,
            originals,
            own_len: u32::try_from(own_len).expect("config line count fits u32"),
        });
    }

    /// The name of configuration `config`, resolved against the string
    /// arena.
    #[inline]
    pub fn name_of(&self, config: &ConfigIr) -> &str {
        self.arenas.strings.text(config.name)
    }

    /// The name of the configuration at index `ci`.
    #[inline]
    pub fn config_name(&self, ci: usize) -> &str {
        self.name_of(&self.configs[ci])
    }

    /// Resolves line `li` of configuration `config` into a [`LineRef`].
    #[inline]
    pub fn line<'a>(&'a self, config: &ConfigIr, li: usize) -> LineRef<'a> {
        config.line(&self.arenas, li)
    }

    /// Inserts or replaces the configuration named `name`, re-embedding
    /// and re-lexing only `text`. Returns the configuration's index.
    ///
    /// An existing configuration is replaced in place (its position is
    /// preserved); a new one is inserted at its name-sorted position, the
    /// order [`Dataset::from_named_texts`] produces when callers pass
    /// name-sorted corpora (the CLI always does). All interners are
    /// append-only: entries no longer referenced by any line simply stay
    /// interned, which never changes check output (violations carry
    /// texts, not ids).
    pub fn upsert_config(
        &mut self,
        name: &str,
        text: &str,
        lexer: &Lexer,
        embed_context: bool,
        cache: Option<&LexCache>,
    ) -> usize {
        let (format, lines) = lex_text(text, lexer, embed_context, cache);
        let config = self.make_config(name, format, &lines);
        let own = config.own_line_count();
        match self.config_index(name) {
            Some(i) => {
                self.total_own = self.total_own - self.configs[i].own_line_count() + own;
                self.configs[i] = config;
                i
            }
            None => {
                let i = {
                    let strings = &self.arenas.strings;
                    self.configs
                        .partition_point(|c| strings.text(c.name) < name)
                };
                self.total_own += own;
                self.configs.insert(i, config);
                i
            }
        }
    }

    /// Removes the configuration named `name`, returning its former index
    /// (`None` when no such configuration exists). The interners are left
    /// untouched.
    pub fn remove_config(&mut self, name: &str) -> Option<usize> {
        let i = self.config_index(name)?;
        self.total_own -= self.configs[i].own_line_count();
        self.configs.remove(i);
        Some(i)
    }

    /// Removes line `li` of configuration `ci`, keeping the cached line
    /// total correct (test/oracle support).
    pub fn remove_line(&mut self, ci: usize, li: usize) {
        if !self.configs[ci].is_meta(li) {
            self.total_own -= 1;
        }
        self.configs[ci].remove_line(li);
    }

    /// Returns the index of the configuration named `name`. Datasets
    /// built from name-sorted corpora (the CLI always sorts, and upsert
    /// preserves the order) resolve in O(log n); a dataset holding an
    /// unsorted input order falls back to the linear scan, so the
    /// answer is the same either way. This is on the checkpoint hot
    /// path — the resident engine looks up every config per
    /// checkpoint, which must not be quadratic at fleet scale.
    pub fn config_index(&self, name: &str) -> Option<usize> {
        let strings = &self.arenas.strings;
        let i = self
            .configs
            .partition_point(|c| strings.text(c.name) < name);
        if self
            .configs
            .get(i)
            .is_some_and(|c| strings.text(c.name) == name)
        {
            return Some(i);
        }
        self.configs
            .iter()
            .position(|c| strings.text(c.name) == name)
    }

    /// Returns the total number of configuration lines (excluding
    /// metadata). O(1): the total is maintained across edits.
    pub fn total_lines(&self) -> usize {
        self.total_own
    }

    /// Returns the number of distinct patterns.
    pub fn pattern_count(&self) -> usize {
        self.table.len()
    }

    /// Returns the number of distinct `(pattern, parameter)` pairs
    /// (the "Parameters" column of Table 3).
    pub fn parameter_count(&self) -> usize {
        let mut seen = HashSet::new();
        for config in &self.configs {
            for li in 0..config.len() {
                let arity = self.arenas.params.slice(config.params_id(li)).len();
                for i in 0..arity {
                    seen.insert((config.pattern(li), i as u16));
                }
            }
        }
        seen.len()
    }

    /// Arena and column memory accounting (the v9 `memory` stats object):
    /// `(string-arena bytes, param-arena bytes, pattern-table bytes,
    /// SoA column bytes)`.
    pub fn arena_bytes(&self) -> (usize, usize, usize, usize) {
        let columns = self.configs.iter().map(ConfigIr::heap_bytes).sum();
        (
            self.arenas.strings.heap_bytes(),
            self.arenas.params.heap_bytes(),
            self.table.heap_bytes(),
            columns,
        )
    }

    /// Number of strings interned across the text arena (line texts and
    /// names).
    pub fn interned_strings(&self) -> usize {
        self.arenas.strings.len()
    }

    /// Number of distinct parameter slices interned.
    pub fn interned_param_slices(&self) -> usize {
        self.arenas.params.len()
    }
}

/// Runs embedding and lexing for one file.
pub(crate) fn lex_text(
    text: &str,
    lexer: &Lexer,
    embed_context: bool,
    cache: Option<&LexCache>,
) -> (FormatCategory, Vec<LexedLine>) {
    let (format, embedded) = if embed_context {
        embed_auto(text)
    } else {
        (
            FormatCategory::Flat,
            concord_formats::embed(text, FormatCategory::Flat),
        )
    };
    let lines = embedded
        .iter()
        .map(|e| match cache {
            Some(cache) => lexer.lex_line_cached(cache, &e.parents, &e.original, e.line_no),
            None => lexer.lex_line(&e.parents, &e.original, e.line_no),
        })
        .collect();
    (format, lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfgs(texts: &[&str]) -> Vec<(String, String)> {
        texts
            .iter()
            .enumerate()
            .map(|(i, t)| (format!("dev{i}"), t.to_string()))
            .collect()
    }

    #[test]
    fn pattern_table_interning() {
        let mut table = PatternTable::new();
        let a = table.intern("x [a:num]");
        let b = table.intern("y [a:num]");
        let a2 = table.intern("x [a:num]");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(table.text(a), "x [a:num]");
        assert_eq!(table.len(), 2);
        assert_eq!(table.get("y [a:num]"), Some(b));
        assert_eq!(table.get("missing"), None);
    }

    #[test]
    fn pattern_table_survives_growth() {
        // Push well past several grow() doublings and verify every id and
        // lookup stays correct.
        let mut table = PatternTable::new();
        let ids: Vec<PatternId> = (0..1000).map(|i| table.intern(&format!("p{i}"))).collect();
        assert_eq!(table.len(), 1000);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(table.text(*id), format!("p{i}"));
            assert_eq!(table.get(&format!("p{i}")), Some(*id));
            assert_eq!(table.intern(&format!("p{i}")), *id, "re-intern is a hit");
        }
        assert_eq!(table.get("p1000"), None);
        let collected: Vec<(PatternId, String)> =
            table.iter().map(|(id, t)| (id, t.to_string())).collect();
        assert_eq!(collected.len(), 1000);
        assert_eq!(collected[7], (PatternId(7), "p7".to_string()));
    }

    #[test]
    fn str_arena_interns_and_dedups() {
        let mut arena = StrArena::new();
        let a = arena.intern("vlan 10");
        let b = arena.intern("vlan 20");
        assert_ne!(a, b);
        assert_eq!(arena.intern("vlan 10"), a, "re-intern is a hit");
        assert_eq!(arena.text(a), "vlan 10");
        assert_eq!(arena.get("vlan 20"), Some(b));
        assert_eq!(arena.get("vlan 30"), None);
        assert_eq!(arena.len(), 2);
        // Growth keeps ids and lookups stable.
        let ids: Vec<StrId> = (0..500).map(|i| arena.intern(&format!("s{i}"))).collect();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(arena.text(*id), format!("s{i}"));
            assert_eq!(arena.get(&format!("s{i}")), Some(*id));
        }
        assert_eq!(arena.text(a), "vlan 10");
    }

    #[test]
    fn param_arena_dedups_identical_slices() {
        let configs = cfgs(&["vlan 10\nvlan 10\nvlan 20\n", "vlan 10\n"]);
        let ds = Dataset::from_named_texts(&configs, &[]).unwrap();
        // Three `vlan 10` lines across two configs share one slice id.
        assert_eq!(
            ds.configs[0].params_id(0),
            ds.configs[0].params_id(1),
            "identical lines in one config share a param slice"
        );
        assert_eq!(
            ds.configs[0].params_id(0),
            ds.configs[1].params_id(0),
            "identical lines across configs share a param slice"
        );
        assert_ne!(ds.configs[0].params_id(0), ds.configs[0].params_id(2));
        // And the originals share one string id.
        assert_eq!(ds.configs[0].original_id(0), ds.configs[1].original_id(0));
    }

    #[test]
    fn builds_dataset_with_embedding() {
        let configs = cfgs(&["interface Loopback0\n ip address 10.0.0.1\n"]);
        let ds = Dataset::from_named_texts(&configs, &[]).unwrap();
        assert_eq!(ds.configs.len(), 1);
        let config = &ds.configs[0];
        assert_eq!(config.len(), 2);
        assert_eq!(
            ds.table.text(config.pattern(1)),
            "/interface Loopback[num]/ip address [a:ip4]"
        );
        assert_eq!(config.line_no(1), 2);
        let line = ds.line(config, 1);
        assert_eq!(line.original, "ip address 10.0.0.1");
        assert_eq!(line.params.len(), 1);
        assert!(!line.is_meta);
    }

    #[test]
    fn same_pattern_shares_id_across_configs() {
        let configs = cfgs(&["vlan 10\n", "vlan 20\n"]);
        let ds = Dataset::from_named_texts(&configs, &[]).unwrap();
        assert_eq!(ds.configs[0].pattern(0), ds.configs[1].pattern(0));
        assert_eq!(ds.pattern_count(), 1);
    }

    #[test]
    fn metadata_appended_with_prefix() {
        let configs = cfgs(&["vlan 10\n", "vlan 20\n"]);
        let metadata = vec![("meta.yaml".to_string(), "vlanId: 10\n".to_string())];
        let ds = Dataset::from_named_texts(&configs, &metadata).unwrap();
        for config in &ds.configs {
            let meta_lines: Vec<usize> =
                (0..config.len()).filter(|&li| config.is_meta(li)).collect();
            assert_eq!(meta_lines.len(), 1);
            assert!(ds
                .table
                .text(config.pattern(meta_lines[0]))
                .starts_with("@meta/"));
        }
        // Metadata lines are excluded from the own-line count.
        assert_eq!(ds.total_lines(), 2);
    }

    #[test]
    fn metadata_storage_is_shared_across_configs() {
        let configs = cfgs(&["vlan 10\n", "vlan 20\n", "vlan 30\n"]);
        let metadata = vec![(
            "meta.yaml".to_string(),
            "vlanId: 10\nsiteId: 4\n".to_string(),
        )];
        let ds = Dataset::from_named_texts(&configs, &metadata).unwrap();
        let meta_ids = |ci: usize| -> Vec<(StrId, ParamSliceId)> {
            let c = &ds.configs[ci];
            (0..c.len())
                .filter(|&li| c.is_meta(li))
                .map(|li| (c.original_id(li), c.params_id(li)))
                .collect()
        };
        let (a, b) = (meta_ids(0), meta_ids(1));
        assert_eq!(a.len(), 2);
        assert_eq!(
            a, b,
            "metadata text/param storage must be shared arena ids, not copies"
        );
        // The arena holds each metadata line once regardless of config
        // count: 3 own originals + 2 meta originals + 3 names.
        assert_eq!(ds.interned_strings(), 8);
    }

    #[test]
    fn no_embedding_flattens() {
        let configs = cfgs(&["interface Loopback0\n ip address 10.0.0.1\n"]);
        let lexer = Lexer::standard();
        let ds = Dataset::build(&configs, &[], &lexer, false, 1).unwrap();
        assert_eq!(
            ds.table.text(ds.configs[0].pattern(1)),
            "/ip address [a:ip4]"
        );
    }

    #[test]
    fn parameter_count_counts_pattern_param_pairs() {
        let configs = cfgs(&["rd 1.2.3.4:55\n", "rd 5.6.7.8:99\nvlan 3\n"]);
        let ds = Dataset::from_named_texts(&configs, &[]).unwrap();
        // `rd [a:ip4]:[b:num]` has 2 params, `vlan [a:num]` has 1.
        assert_eq!(ds.parameter_count(), 3);
    }

    #[test]
    fn parallel_build_is_deterministic() {
        let configs = cfgs(&[
            "vlan 1\nvlan 2\n",
            "interface Et1\n mtu 9214\n",
            "router bgp 65000\n vlan 7\n",
            "hostname X1\n",
        ]);
        let lexer = Lexer::standard();
        let seq = Dataset::build(&configs, &[], &lexer, true, 1).unwrap();
        let par = Dataset::build(&configs, &[], &lexer, true, 4).unwrap();
        assert_eq!(seq.pattern_count(), par.pattern_count());
        for (a, b) in seq.configs.iter().zip(&par.configs) {
            assert_eq!(a.len(), b.len());
            for (la, lb) in a.lines(&seq.arenas).zip(b.lines(&par.arenas)) {
                assert_eq!(la.pattern, lb.pattern);
                assert_eq!(la.original, lb.original);
            }
        }
    }

    #[test]
    fn upsert_replaces_in_place_and_inserts_sorted() {
        let configs = cfgs(&["vlan 1\n", "vlan 2\n", "vlan 3\n"]);
        let lexer = Lexer::standard();
        let mut ds = Dataset::from_named_texts(&configs, &[]).unwrap();

        // Replace dev1 in place.
        let i = ds.upsert_config("dev1", "interface Et1\n mtu 9000\n", &lexer, true, None);
        assert_eq!(i, 1);
        assert_eq!(ds.config_name(1), "dev1");
        assert_eq!(ds.configs[1].len(), 2);

        // Insert a new name at its sorted position.
        let i = ds.upsert_config("dev15", "vlan 9\n", &lexer, true, None);
        assert_eq!(i, 2, "dev15 sorts between dev1 and dev2");
        let names: Vec<&str> = (0..ds.configs.len()).map(|i| ds.config_name(i)).collect();
        assert_eq!(names, ["dev0", "dev1", "dev15", "dev2"]);
    }

    #[test]
    fn upsert_matches_batch_build() {
        // An edited dataset must equal (up to id numbering) the batch
        // build of the edited corpus: same lines, same texts, same
        // pattern texts per line.
        let lexer = Lexer::standard();
        let metadata = vec![("meta.yaml".to_string(), "siteId: 9\n".to_string())];
        let mut corpus = cfgs(&["vlan 1\nvlan 2\n", "interface Et1\n mtu 9214\n"]);
        let mut ds = Dataset::from_named_texts(&corpus, &metadata).unwrap();

        // Edit dev0, add dev2, remove dev1.
        corpus[0].1 = "vlan 1\nvlan 7\nhostname A\n".to_string();
        ds.upsert_config("dev0", &corpus[0].1, &lexer, true, None);
        corpus.push((
            "dev2".to_string(),
            "router bgp 65000\n vlan 3\n".to_string(),
        ));
        ds.upsert_config("dev2", &corpus[2].1, &lexer, true, None);
        assert_eq!(ds.remove_config("dev1"), Some(1));
        assert_eq!(ds.remove_config("dev1"), None);
        corpus.remove(1);

        let batch = Dataset::from_named_texts(&corpus, &metadata).unwrap();
        assert_eq!(ds.configs.len(), batch.configs.len());
        assert_eq!(ds.total_lines(), batch.total_lines());
        for (a, b) in ds.configs.iter().zip(&batch.configs) {
            assert_eq!(ds.name_of(a), batch.name_of(b));
            assert_eq!(a.len(), b.len());
            for (la, lb) in a.lines(&ds.arenas).zip(b.lines(&batch.arenas)) {
                assert_eq!(ds.table.text(la.pattern), batch.table.text(lb.pattern));
                assert_eq!(la.original, lb.original);
                assert_eq!(la.params, lb.params);
                assert_eq!(la.is_meta, lb.is_meta);
            }
        }
    }

    #[test]
    fn upsert_into_empty_dataset_appends_metadata() {
        let lexer = Lexer::standard();
        let metadata = vec![("meta.yaml".to_string(), "siteId: 9\n".to_string())];
        let mut ds = Dataset::from_named_texts(&[], &metadata).unwrap();
        assert!(ds.configs.is_empty());
        ds.upsert_config("dev0", "vlan 4\n", &lexer, true, None);
        let batch = Dataset::from_named_texts(&cfgs(&["vlan 4\n"]), &metadata).unwrap();
        assert_eq!(ds.configs[0].len(), batch.configs[0].len());
        assert_eq!(ds.pattern_count(), batch.pattern_count());
        assert!((0..ds.configs[0].len()).any(|li| ds.configs[0].is_meta(li)));
    }

    #[test]
    fn cached_line_totals_track_edits() {
        let lexer = Lexer::standard();
        let metadata = vec![("meta.yaml".to_string(), "siteId: 9\n".to_string())];
        let configs = cfgs(&["vlan 1\nvlan 2\n", "vlan 3\n"]);
        let mut ds = Dataset::from_named_texts(&configs, &metadata).unwrap();
        let recount = |ds: &Dataset| -> usize {
            ds.configs
                .iter()
                .map(|c| (0..c.len()).filter(|&li| !c.is_meta(li)).count())
                .sum()
        };
        assert_eq!(ds.total_lines(), 3);
        assert_eq!(ds.total_lines(), recount(&ds));

        ds.upsert_config("dev0", "vlan 1\n", &lexer, true, None);
        assert_eq!(ds.total_lines(), 2);
        assert_eq!(ds.total_lines(), recount(&ds));

        ds.upsert_config("dev9", "vlan 4\nvlan 5\nvlan 6\n", &lexer, true, None);
        assert_eq!(ds.total_lines(), 5);
        assert_eq!(ds.total_lines(), recount(&ds));

        ds.remove_config("dev1");
        assert_eq!(ds.total_lines(), 4);
        assert_eq!(ds.total_lines(), recount(&ds));

        ds.remove_line(0, 0);
        assert_eq!(ds.total_lines(), 3);
        assert_eq!(ds.total_lines(), recount(&ds));
    }
}
