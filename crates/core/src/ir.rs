//! The intermediate representation shared by learning and checking.
//!
//! A [`Dataset`] holds one [`ConfigIr`] per configuration file plus an
//! interning [`PatternTable`]. Every content line becomes a [`LineRecord`]
//! carrying its dense pattern id, its extracted parameters, and its source
//! line number. Metadata files (§3.7) are lexed once, prefixed with
//! `@meta`, and appended to every configuration so the miners discover
//! config↔metadata relationships with no special cases. The appended
//! records are `Arc`-shared: every configuration carries the *same*
//! parameter and text allocations, so a large metadata corpus costs one
//! copy regardless of configuration count.
//!
//! Datasets are also *mutable*: [`Dataset::upsert_config`] and
//! [`Dataset::remove_config`] absorb single-file edits without rebuilding
//! the corpus — only the changed file is re-embedded and re-lexed (through
//! the shared [`LexCache`]), and the pattern table grows append-only so
//! existing [`PatternId`]s stay stable across edits. This is the
//! foundation the resident `concord-engine` snapshot builds on.

use std::collections::HashSet;
use std::fmt;
use std::hash::Hasher;
use std::sync::Arc;
use std::time::Instant;

use concord_formats::{embed_auto, FormatCategory};
use concord_lexer::{LexCache, LexedLine, Lexer, Param};

use crate::fxhash::FxHasher;
use crate::parallel;
use crate::stats::BuildStats;

/// A dense identifier for an interned pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PatternId(pub u32);

/// Empty bucket sentinel of the interner's probe table.
const EMPTY: u32 = u32::MAX;

/// Interns pattern strings to dense ids.
///
/// The table is a hand-rolled open-addressing map (Fx-hashed, linear
/// probing): one probe walk serves both hit and miss, so [`intern`]
/// touches the table exactly once per call instead of the get-then-insert
/// double lookup a `HashMap` forces without raw-entry access. Ids are
/// append-only — interning never invalidates previously returned ids,
/// which is what allows datasets to be edited in place.
///
/// [`intern`]: PatternTable::intern
#[derive(Debug, Clone)]
pub struct PatternTable {
    /// Interned pattern texts, indexed by id.
    texts: Vec<Arc<str>>,
    /// Cached hash per text (grow re-buckets without re-hashing).
    hashes: Vec<u64>,
    /// Open-addressing probe table over ids; power-of-two length.
    buckets: Vec<u32>,
}

impl Default for PatternTable {
    fn default() -> Self {
        PatternTable {
            texts: Vec::new(),
            hashes: Vec::new(),
            buckets: vec![EMPTY; 16],
        }
    }
}

/// Fx hash of a pattern text (the interner's single hash function).
#[inline]
fn hash_text(text: &str) -> u64 {
    let mut h = FxHasher::default();
    h.write(text.as_bytes());
    h.finish()
}

impl PatternTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `text`, returning its id.
    ///
    /// One probe walk: an existing entry returns its id from the same
    /// walk that would otherwise find the insertion slot.
    pub fn intern(&mut self, text: &str) -> PatternId {
        let hash = hash_text(text);
        let mask = self.buckets.len() - 1;
        let mut slot = (hash as usize) & mask;
        loop {
            let entry = self.buckets[slot];
            if entry == EMPTY {
                break;
            }
            let i = entry as usize;
            if self.hashes[i] == hash && &*self.texts[i] == text {
                return PatternId(entry);
            }
            slot = (slot + 1) & mask;
        }
        let id = u32::try_from(self.texts.len()).expect("pattern table fits u32 ids");
        self.texts.push(Arc::from(text));
        self.hashes.push(hash);
        self.buckets[slot] = id;
        // Keep load under 7/8 so probe chains stay short.
        if (self.texts.len() + 1) * 8 > self.buckets.len() * 7 {
            self.grow();
        }
        PatternId(id)
    }

    /// Doubles the probe table and re-buckets every id from its cached
    /// hash (texts are never re-hashed).
    fn grow(&mut self) {
        let new_len = self.buckets.len() * 2;
        let mask = new_len - 1;
        let mut buckets = vec![EMPTY; new_len];
        for (i, &hash) in self.hashes.iter().enumerate() {
            let mut slot = (hash as usize) & mask;
            while buckets[slot] != EMPTY {
                slot = (slot + 1) & mask;
            }
            buckets[slot] = i as u32;
        }
        self.buckets = buckets;
    }

    /// Looks up an already-interned pattern.
    pub fn get(&self, text: &str) -> Option<PatternId> {
        let hash = hash_text(text);
        let mask = self.buckets.len() - 1;
        let mut slot = (hash as usize) & mask;
        loop {
            let entry = self.buckets[slot];
            if entry == EMPTY {
                return None;
            }
            let i = entry as usize;
            if self.hashes[i] == hash && &*self.texts[i] == text {
                return Some(PatternId(entry));
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Returns the text of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    pub fn text(&self, id: PatternId) -> &str {
        &self.texts[id.0 as usize]
    }

    /// Returns the number of interned patterns.
    pub fn len(&self) -> usize {
        self.texts.len()
    }

    /// Returns `true` if no patterns are interned.
    pub fn is_empty(&self) -> bool {
        self.texts.is_empty()
    }

    /// Iterates over all `(id, text)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (PatternId, &str)> {
        self.texts
            .iter()
            .enumerate()
            .map(|(i, t)| (PatternId(i as u32), t.as_ref()))
    }
}

/// One lexed configuration line.
///
/// Parameter and text payloads are `Arc`-shared so records clone in O(1):
/// metadata records are shared across every configuration, and dataset
/// edits move records without copying line contents.
#[derive(Debug, Clone)]
pub struct LineRecord {
    /// The interned pattern id of the full embedded line.
    pub pattern: PatternId,
    /// Parameters bound from the original line text, in order.
    pub params: Arc<[Param]>,
    /// 1-based line number in the source file.
    pub line_no: u32,
    /// The trimmed original line text.
    pub original: Arc<str>,
    /// `true` when the line came from an appended metadata file.
    pub is_meta: bool,
}

/// One configuration file after the full front-end pipeline.
#[derive(Debug, Clone)]
pub struct ConfigIr {
    /// The configuration's name (usually the file name / device name).
    pub name: String,
    /// The inferred format category.
    pub format: FormatCategory,
    /// All content lines in source order (metadata lines appended last).
    pub lines: Vec<LineRecord>,
}

impl ConfigIr {
    /// Returns the number of non-metadata lines.
    pub fn own_line_count(&self) -> usize {
        self.lines.iter().filter(|l| !l.is_meta).count()
    }
}

/// A set of configurations sharing one pattern table.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// The shared pattern interner.
    pub table: PatternTable,
    /// The configurations.
    pub configs: Vec<ConfigIr>,
    /// Lexed metadata files, kept so edits can append metadata to newly
    /// upserted configurations.
    meta_lexed: Vec<Vec<LexedLine>>,
    /// The shared metadata records (interned lazily so id assignment
    /// matches the batch build order: first config's own lines, then
    /// metadata). `None` until the first configuration needs them.
    meta_records: Option<Vec<LineRecord>>,
}

/// Error constructing a [`Dataset`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// A user-supplied custom token definition failed to compile.
    BadTokenDef(String),
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::BadTokenDef(msg) => write!(f, "bad token definition: {msg}"),
        }
    }
}

impl std::error::Error for DatasetError {}

impl Dataset {
    /// Builds a dataset from `(name, text)` configuration pairs with the
    /// standard lexer and automatic format detection.
    ///
    /// `metadata` files are embedded/lexed with an `@meta` pattern prefix
    /// and appended to every configuration (§3.7).
    pub fn from_named_texts(
        configs: &[(String, String)],
        metadata: &[(String, String)],
    ) -> Result<Dataset, DatasetError> {
        Self::build(configs, metadata, &Lexer::standard(), true, 1)
    }

    /// Builds a dataset with full control over the lexer, context
    /// embedding, and parallelism.
    ///
    /// With `embed_context = false` every line is treated as flat text —
    /// the "Baseline" configuration of Figure 7.
    ///
    /// Lexing goes through a fresh [`LexCache`], so each distinct line
    /// shape across all configurations is scanned exactly once. Use
    /// [`Dataset::build_with_stats`] to share a cache across builds, to
    /// disable caching, or to observe timing and hit counts.
    pub fn build(
        configs: &[(String, String)],
        metadata: &[(String, String)],
        lexer: &Lexer,
        embed_context: bool,
        parallelism: usize,
    ) -> Result<Dataset, DatasetError> {
        let cache = LexCache::new();
        Self::build_with_stats(
            configs,
            metadata,
            lexer,
            embed_context,
            parallelism,
            Some(&cache),
        )
        .map(|(dataset, _)| dataset)
    }

    /// Like [`Dataset::build`], with explicit control over the lex cache
    /// (`None` disables caching entirely) and reporting [`BuildStats`]
    /// for the run: lexing/interning time and the cache hit/miss deltas
    /// this build contributed.
    pub fn build_with_stats(
        configs: &[(String, String)],
        metadata: &[(String, String)],
        lexer: &Lexer,
        embed_context: bool,
        parallelism: usize,
        cache: Option<&LexCache>,
    ) -> Result<(Dataset, BuildStats), DatasetError> {
        let cache_before = cache.map(|c| c.stats());

        let lex_start = Instant::now();
        // Metadata is lexed once and shared across configs.
        let meta_lexed: Vec<Vec<LexedLine>> = metadata
            .iter()
            .map(|(_, text)| lex_text(text, lexer, embed_context, cache).1)
            .collect();

        // Lex configs (possibly in parallel), then intern sequentially so
        // ids are deterministic regardless of thread count.
        let lexed: Vec<(FormatCategory, Vec<LexedLine>)> = parallel::map(
            configs,
            |(_, text)| lex_text(text, lexer, embed_context, cache),
            parallelism,
        );
        let lex_time = lex_start.elapsed();

        let intern_start = Instant::now();
        let mut dataset = Dataset {
            table: PatternTable::new(),
            configs: Vec::with_capacity(configs.len()),
            meta_lexed,
            meta_records: None,
        };
        for ((name, _), (format, lines)) in configs.iter().zip(lexed) {
            let mut records: Vec<LineRecord> = lines
                .into_iter()
                .map(|l| LineRecord {
                    pattern: dataset.table.intern(&l.pattern),
                    params: l.params.into(),
                    line_no: l.line_no,
                    original: l.original.into(),
                    is_meta: false,
                })
                .collect();
            records.extend_from_slice(dataset.shared_meta_records());
            dataset.configs.push(ConfigIr {
                name: name.clone(),
                format,
                lines: records,
            });
        }
        let intern_time = intern_start.elapsed();

        let (cache_hits, cache_misses) = match (cache_before, cache.map(|c| c.stats())) {
            (Some(before), Some(after)) => (after.hits - before.hits, after.misses - before.misses),
            _ => (0, 0),
        };
        let stats = BuildStats {
            configs: dataset.configs.len(),
            lines: dataset.configs.iter().map(|c| c.lines.len()).sum(),
            patterns: dataset.table.len(),
            lex_time,
            intern_time,
            cache_enabled: cache.is_some(),
            cache_hits,
            cache_misses,
        };
        Ok((dataset, stats))
    }

    /// Returns the shared metadata records, interning their patterns on
    /// first use (after the first configuration's own lines, matching the
    /// batch interning order).
    fn shared_meta_records(&mut self) -> &[LineRecord] {
        if self.meta_records.is_none() {
            let records: Vec<LineRecord> = self
                .meta_lexed
                .iter()
                .flat_map(|lines| lines.iter())
                .map(|l| LineRecord {
                    pattern: self.table.intern(&format!("@meta{}", l.pattern)),
                    params: l.params.clone().into(),
                    line_no: l.line_no,
                    original: l.original.as_str().into(),
                    is_meta: true,
                })
                .collect();
            self.meta_records = Some(records);
        }
        self.meta_records.as_deref().expect("just populated")
    }

    /// Inserts or replaces the configuration named `name`, re-embedding
    /// and re-lexing only `text`. Returns the configuration's index.
    ///
    /// An existing configuration is replaced in place (its position is
    /// preserved); a new one is inserted at its name-sorted position, the
    /// order [`Dataset::from_named_texts`] produces when callers pass
    /// name-sorted corpora (the CLI always does). Pattern ids are
    /// append-only: patterns no longer referenced by any line simply stay
    /// interned, which never changes check output (violations carry
    /// texts, not ids).
    pub fn upsert_config(
        &mut self,
        name: &str,
        text: &str,
        lexer: &Lexer,
        embed_context: bool,
        cache: Option<&LexCache>,
    ) -> usize {
        let (format, lines) = lex_text(text, lexer, embed_context, cache);
        let mut records: Vec<LineRecord> = lines
            .into_iter()
            .map(|l| LineRecord {
                pattern: self.table.intern(&l.pattern),
                params: l.params.into(),
                line_no: l.line_no,
                original: l.original.into(),
                is_meta: false,
            })
            .collect();
        records.extend_from_slice(self.shared_meta_records());
        let config = ConfigIr {
            name: name.to_string(),
            format,
            lines: records,
        };
        match self.configs.iter().position(|c| c.name == name) {
            Some(i) => {
                self.configs[i] = config;
                i
            }
            None => {
                let i = self.configs.partition_point(|c| c.name.as_str() < name);
                self.configs.insert(i, config);
                i
            }
        }
    }

    /// Removes the configuration named `name`, returning its former index
    /// (`None` when no such configuration exists). The pattern table is
    /// left untouched.
    pub fn remove_config(&mut self, name: &str) -> Option<usize> {
        let i = self.configs.iter().position(|c| c.name == name)?;
        self.configs.remove(i);
        Some(i)
    }

    /// Returns the index of the configuration named `name`.
    pub fn config_index(&self, name: &str) -> Option<usize> {
        self.configs.iter().position(|c| c.name == name)
    }

    /// Returns the total number of configuration lines (excluding
    /// metadata).
    pub fn total_lines(&self) -> usize {
        self.configs.iter().map(ConfigIr::own_line_count).sum()
    }

    /// Returns the number of distinct patterns.
    pub fn pattern_count(&self) -> usize {
        self.table.len()
    }

    /// Returns the number of distinct `(pattern, parameter)` pairs
    /// (the "Parameters" column of Table 3).
    pub fn parameter_count(&self) -> usize {
        let mut seen = HashSet::new();
        for config in &self.configs {
            for line in &config.lines {
                for (i, _) in line.params.iter().enumerate() {
                    seen.insert((line.pattern, i as u16));
                }
            }
        }
        seen.len()
    }
}

/// Runs embedding and lexing for one file.
fn lex_text(
    text: &str,
    lexer: &Lexer,
    embed_context: bool,
    cache: Option<&LexCache>,
) -> (FormatCategory, Vec<LexedLine>) {
    let (format, embedded) = if embed_context {
        embed_auto(text)
    } else {
        (
            FormatCategory::Flat,
            concord_formats::embed(text, FormatCategory::Flat),
        )
    };
    let lines = embedded
        .iter()
        .map(|e| match cache {
            Some(cache) => lexer.lex_line_cached(cache, &e.parents, &e.original, e.line_no),
            None => lexer.lex_line(&e.parents, &e.original, e.line_no),
        })
        .collect();
    (format, lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfgs(texts: &[&str]) -> Vec<(String, String)> {
        texts
            .iter()
            .enumerate()
            .map(|(i, t)| (format!("dev{i}"), t.to_string()))
            .collect()
    }

    #[test]
    fn pattern_table_interning() {
        let mut table = PatternTable::new();
        let a = table.intern("x [a:num]");
        let b = table.intern("y [a:num]");
        let a2 = table.intern("x [a:num]");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(table.text(a), "x [a:num]");
        assert_eq!(table.len(), 2);
        assert_eq!(table.get("y [a:num]"), Some(b));
        assert_eq!(table.get("missing"), None);
    }

    #[test]
    fn pattern_table_survives_growth() {
        // Push well past several grow() doublings and verify every id and
        // lookup stays correct.
        let mut table = PatternTable::new();
        let ids: Vec<PatternId> = (0..1000).map(|i| table.intern(&format!("p{i}"))).collect();
        assert_eq!(table.len(), 1000);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(table.text(*id), format!("p{i}"));
            assert_eq!(table.get(&format!("p{i}")), Some(*id));
            assert_eq!(table.intern(&format!("p{i}")), *id, "re-intern is a hit");
        }
        assert_eq!(table.get("p1000"), None);
        let collected: Vec<(PatternId, String)> =
            table.iter().map(|(id, t)| (id, t.to_string())).collect();
        assert_eq!(collected.len(), 1000);
        assert_eq!(collected[7], (PatternId(7), "p7".to_string()));
    }

    #[test]
    fn builds_dataset_with_embedding() {
        let configs = cfgs(&["interface Loopback0\n ip address 10.0.0.1\n"]);
        let ds = Dataset::from_named_texts(&configs, &[]).unwrap();
        assert_eq!(ds.configs.len(), 1);
        let config = &ds.configs[0];
        assert_eq!(config.lines.len(), 2);
        assert_eq!(
            ds.table.text(config.lines[1].pattern),
            "/interface Loopback[num]/ip address [a:ip4]"
        );
        assert_eq!(config.lines[1].line_no, 2);
    }

    #[test]
    fn same_pattern_shares_id_across_configs() {
        let configs = cfgs(&["vlan 10\n", "vlan 20\n"]);
        let ds = Dataset::from_named_texts(&configs, &[]).unwrap();
        assert_eq!(
            ds.configs[0].lines[0].pattern,
            ds.configs[1].lines[0].pattern
        );
        assert_eq!(ds.pattern_count(), 1);
    }

    #[test]
    fn metadata_appended_with_prefix() {
        let configs = cfgs(&["vlan 10\n", "vlan 20\n"]);
        let metadata = vec![("meta.yaml".to_string(), "vlanId: 10\n".to_string())];
        let ds = Dataset::from_named_texts(&configs, &metadata).unwrap();
        for config in &ds.configs {
            let meta_lines: Vec<_> = config.lines.iter().filter(|l| l.is_meta).collect();
            assert_eq!(meta_lines.len(), 1);
            assert!(ds.table.text(meta_lines[0].pattern).starts_with("@meta/"));
        }
        // Metadata lines are excluded from the own-line count.
        assert_eq!(ds.total_lines(), 2);
    }

    #[test]
    fn metadata_records_are_arc_shared_across_configs() {
        let configs = cfgs(&["vlan 10\n", "vlan 20\n", "vlan 30\n"]);
        let metadata = vec![(
            "meta.yaml".to_string(),
            "vlanId: 10\nsiteId: 4\n".to_string(),
        )];
        let ds = Dataset::from_named_texts(&configs, &metadata).unwrap();
        let meta_of = |ci: usize| -> Vec<&LineRecord> {
            ds.configs[ci].lines.iter().filter(|l| l.is_meta).collect()
        };
        let (a, b) = (meta_of(0), meta_of(1));
        assert_eq!(a.len(), 2);
        for (la, lb) in a.iter().zip(&b) {
            assert!(
                Arc::ptr_eq(&la.original, &lb.original),
                "metadata text allocations must be shared, not copied"
            );
            assert!(
                Arc::ptr_eq(&la.params, &lb.params),
                "metadata param allocations must be shared, not copied"
            );
        }
    }

    #[test]
    fn no_embedding_flattens() {
        let configs = cfgs(&["interface Loopback0\n ip address 10.0.0.1\n"]);
        let lexer = Lexer::standard();
        let ds = Dataset::build(&configs, &[], &lexer, false, 1).unwrap();
        assert_eq!(
            ds.table.text(ds.configs[0].lines[1].pattern),
            "/ip address [a:ip4]"
        );
    }

    #[test]
    fn parameter_count_counts_pattern_param_pairs() {
        let configs = cfgs(&["rd 1.2.3.4:55\n", "rd 5.6.7.8:99\nvlan 3\n"]);
        let ds = Dataset::from_named_texts(&configs, &[]).unwrap();
        // `rd [a:ip4]:[b:num]` has 2 params, `vlan [a:num]` has 1.
        assert_eq!(ds.parameter_count(), 3);
    }

    #[test]
    fn parallel_build_is_deterministic() {
        let configs = cfgs(&[
            "vlan 1\nvlan 2\n",
            "interface Et1\n mtu 9214\n",
            "router bgp 65000\n vlan 7\n",
            "hostname X1\n",
        ]);
        let lexer = Lexer::standard();
        let seq = Dataset::build(&configs, &[], &lexer, true, 1).unwrap();
        let par = Dataset::build(&configs, &[], &lexer, true, 4).unwrap();
        assert_eq!(seq.pattern_count(), par.pattern_count());
        for (a, b) in seq.configs.iter().zip(&par.configs) {
            assert_eq!(a.lines.len(), b.lines.len());
            for (la, lb) in a.lines.iter().zip(&b.lines) {
                assert_eq!(la.pattern, lb.pattern);
                assert_eq!(la.original, lb.original);
            }
        }
    }

    #[test]
    fn upsert_replaces_in_place_and_inserts_sorted() {
        let configs = cfgs(&["vlan 1\n", "vlan 2\n", "vlan 3\n"]);
        let lexer = Lexer::standard();
        let mut ds = Dataset::from_named_texts(&configs, &[]).unwrap();

        // Replace dev1 in place.
        let i = ds.upsert_config("dev1", "interface Et1\n mtu 9000\n", &lexer, true, None);
        assert_eq!(i, 1);
        assert_eq!(ds.configs[1].name, "dev1");
        assert_eq!(ds.configs[1].lines.len(), 2);

        // Insert a new name at its sorted position.
        let i = ds.upsert_config("dev15", "vlan 9\n", &lexer, true, None);
        assert_eq!(i, 2, "dev15 sorts between dev1 and dev2");
        let names: Vec<&str> = ds.configs.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["dev0", "dev1", "dev15", "dev2"]);
    }

    #[test]
    fn upsert_matches_batch_build() {
        // An edited dataset must equal (up to pattern id numbering) the
        // batch build of the edited corpus: same lines, same texts, same
        // pattern texts per line.
        let lexer = Lexer::standard();
        let metadata = vec![("meta.yaml".to_string(), "siteId: 9\n".to_string())];
        let mut corpus = cfgs(&["vlan 1\nvlan 2\n", "interface Et1\n mtu 9214\n"]);
        let mut ds = Dataset::from_named_texts(&corpus, &metadata).unwrap();

        // Edit dev0, add dev2, remove dev1.
        corpus[0].1 = "vlan 1\nvlan 7\nhostname A\n".to_string();
        ds.upsert_config("dev0", &corpus[0].1, &lexer, true, None);
        corpus.push((
            "dev2".to_string(),
            "router bgp 65000\n vlan 3\n".to_string(),
        ));
        ds.upsert_config("dev2", &corpus[2].1, &lexer, true, None);
        assert_eq!(ds.remove_config("dev1"), Some(1));
        assert_eq!(ds.remove_config("dev1"), None);
        corpus.remove(1);

        let batch = Dataset::from_named_texts(&corpus, &metadata).unwrap();
        assert_eq!(ds.configs.len(), batch.configs.len());
        assert_eq!(ds.total_lines(), batch.total_lines());
        for (a, b) in ds.configs.iter().zip(&batch.configs) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.lines.len(), b.lines.len());
            for (la, lb) in a.lines.iter().zip(&b.lines) {
                assert_eq!(ds.table.text(la.pattern), batch.table.text(lb.pattern));
                assert_eq!(la.original, lb.original);
                assert_eq!(la.params, lb.params);
                assert_eq!(la.is_meta, lb.is_meta);
            }
        }
    }

    #[test]
    fn upsert_into_empty_dataset_appends_metadata() {
        let lexer = Lexer::standard();
        let metadata = vec![("meta.yaml".to_string(), "siteId: 9\n".to_string())];
        let mut ds = Dataset::from_named_texts(&[], &metadata).unwrap();
        assert!(ds.configs.is_empty());
        ds.upsert_config("dev0", "vlan 4\n", &lexer, true, None);
        let batch = Dataset::from_named_texts(&cfgs(&["vlan 4\n"]), &metadata).unwrap();
        assert_eq!(ds.configs[0].lines.len(), batch.configs[0].lines.len());
        assert_eq!(ds.pattern_count(), batch.pattern_count());
        assert!(ds.configs[0].lines.iter().any(|l| l.is_meta));
    }
}
