//! The intermediate representation shared by learning and checking.
//!
//! A [`Dataset`] holds one [`ConfigIr`] per configuration file plus an
//! interning [`PatternTable`]. Every content line becomes a [`LineRecord`]
//! carrying its dense pattern id, its extracted parameters, and its source
//! line number. Metadata files (§3.7) are lexed once, prefixed with
//! `@meta`, and appended to every configuration so the miners discover
//! config↔metadata relationships with no special cases.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use concord_formats::{embed_auto, FormatCategory};
use concord_lexer::{LexCache, LexedLine, Lexer, Param};

use crate::parallel;
use crate::stats::BuildStats;

/// A dense identifier for an interned pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PatternId(pub u32);

/// Interns pattern strings to dense ids.
#[derive(Debug, Default, Clone)]
pub struct PatternTable {
    by_text: HashMap<Arc<str>, PatternId>,
    texts: Vec<Arc<str>>,
}

impl PatternTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `text`, returning its id.
    pub fn intern(&mut self, text: &str) -> PatternId {
        if let Some(&id) = self.by_text.get(text) {
            return id;
        }
        let arc: Arc<str> = Arc::from(text);
        let id = PatternId(self.texts.len() as u32);
        self.texts.push(arc.clone());
        self.by_text.insert(arc, id);
        id
    }

    /// Looks up an already-interned pattern.
    pub fn get(&self, text: &str) -> Option<PatternId> {
        self.by_text.get(text).copied()
    }

    /// Returns the text of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    pub fn text(&self, id: PatternId) -> &str {
        &self.texts[id.0 as usize]
    }

    /// Returns the number of interned patterns.
    pub fn len(&self) -> usize {
        self.texts.len()
    }

    /// Returns `true` if no patterns are interned.
    pub fn is_empty(&self) -> bool {
        self.texts.is_empty()
    }

    /// Iterates over all `(id, text)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (PatternId, &str)> {
        self.texts
            .iter()
            .enumerate()
            .map(|(i, t)| (PatternId(i as u32), t.as_ref()))
    }
}

/// One lexed configuration line.
#[derive(Debug, Clone)]
pub struct LineRecord {
    /// The interned pattern id of the full embedded line.
    pub pattern: PatternId,
    /// Parameters bound from the original line text, in order.
    pub params: Vec<Param>,
    /// 1-based line number in the source file.
    pub line_no: u32,
    /// The trimmed original line text.
    pub original: String,
    /// `true` when the line came from an appended metadata file.
    pub is_meta: bool,
}

/// One configuration file after the full front-end pipeline.
#[derive(Debug, Clone)]
pub struct ConfigIr {
    /// The configuration's name (usually the file name / device name).
    pub name: String,
    /// The inferred format category.
    pub format: FormatCategory,
    /// All content lines in source order (metadata lines appended last).
    pub lines: Vec<LineRecord>,
}

impl ConfigIr {
    /// Returns the number of non-metadata lines.
    pub fn own_line_count(&self) -> usize {
        self.lines.iter().filter(|l| !l.is_meta).count()
    }
}

/// A set of configurations sharing one pattern table.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// The shared pattern interner.
    pub table: PatternTable,
    /// The configurations.
    pub configs: Vec<ConfigIr>,
}

/// Error constructing a [`Dataset`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// A user-supplied custom token definition failed to compile.
    BadTokenDef(String),
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::BadTokenDef(msg) => write!(f, "bad token definition: {msg}"),
        }
    }
}

impl std::error::Error for DatasetError {}

impl Dataset {
    /// Builds a dataset from `(name, text)` configuration pairs with the
    /// standard lexer and automatic format detection.
    ///
    /// `metadata` files are embedded/lexed with an `@meta` pattern prefix
    /// and appended to every configuration (§3.7).
    pub fn from_named_texts(
        configs: &[(String, String)],
        metadata: &[(String, String)],
    ) -> Result<Dataset, DatasetError> {
        Self::build(configs, metadata, &Lexer::standard(), true, 1)
    }

    /// Builds a dataset with full control over the lexer, context
    /// embedding, and parallelism.
    ///
    /// With `embed_context = false` every line is treated as flat text —
    /// the "Baseline" configuration of Figure 7.
    ///
    /// Lexing goes through a fresh [`LexCache`], so each distinct line
    /// shape across all configurations is scanned exactly once. Use
    /// [`Dataset::build_with_stats`] to share a cache across builds, to
    /// disable caching, or to observe timing and hit counts.
    pub fn build(
        configs: &[(String, String)],
        metadata: &[(String, String)],
        lexer: &Lexer,
        embed_context: bool,
        parallelism: usize,
    ) -> Result<Dataset, DatasetError> {
        let cache = LexCache::new();
        Self::build_with_stats(
            configs,
            metadata,
            lexer,
            embed_context,
            parallelism,
            Some(&cache),
        )
        .map(|(dataset, _)| dataset)
    }

    /// Like [`Dataset::build`], with explicit control over the lex cache
    /// (`None` disables caching entirely) and reporting [`BuildStats`]
    /// for the run: lexing/interning time and the cache hit/miss deltas
    /// this build contributed.
    pub fn build_with_stats(
        configs: &[(String, String)],
        metadata: &[(String, String)],
        lexer: &Lexer,
        embed_context: bool,
        parallelism: usize,
        cache: Option<&LexCache>,
    ) -> Result<(Dataset, BuildStats), DatasetError> {
        let cache_before = cache.map(|c| c.stats());

        let lex_start = Instant::now();
        // Metadata is lexed once and shared across configs.
        let meta_lines: Vec<(String, Vec<LexedLine>)> = metadata
            .iter()
            .map(|(name, text)| (name.clone(), lex_text(text, lexer, embed_context, cache).1))
            .collect();

        // Lex configs (possibly in parallel), then intern sequentially so
        // ids are deterministic regardless of thread count.
        let lexed: Vec<(FormatCategory, Vec<LexedLine>)> = parallel::map(
            configs,
            |(_, text)| lex_text(text, lexer, embed_context, cache),
            parallelism,
        );
        let lex_time = lex_start.elapsed();

        let intern_start = Instant::now();
        let mut table = PatternTable::new();
        let mut out_configs = Vec::with_capacity(configs.len());
        for ((name, _), (format, lines)) in configs.iter().zip(lexed) {
            let mut records: Vec<LineRecord> = lines
                .into_iter()
                .map(|l| LineRecord {
                    pattern: table.intern(&l.pattern),
                    params: l.params,
                    line_no: l.line_no,
                    original: l.original,
                    is_meta: false,
                })
                .collect();
            for (_meta_name, lines) in &meta_lines {
                for l in lines {
                    records.push(LineRecord {
                        pattern: table.intern(&format!("@meta{}", l.pattern)),
                        params: l.params.clone(),
                        line_no: l.line_no,
                        original: l.original.clone(),
                        is_meta: true,
                    });
                }
            }
            out_configs.push(ConfigIr {
                name: name.clone(),
                format,
                lines: records,
            });
        }
        let intern_time = intern_start.elapsed();

        let dataset = Dataset {
            table,
            configs: out_configs,
        };
        let (cache_hits, cache_misses) = match (cache_before, cache.map(|c| c.stats())) {
            (Some(before), Some(after)) => (after.hits - before.hits, after.misses - before.misses),
            _ => (0, 0),
        };
        let stats = BuildStats {
            configs: dataset.configs.len(),
            lines: dataset.configs.iter().map(|c| c.lines.len()).sum(),
            patterns: dataset.table.len(),
            lex_time,
            intern_time,
            cache_enabled: cache.is_some(),
            cache_hits,
            cache_misses,
        };
        Ok((dataset, stats))
    }

    /// Returns the total number of configuration lines (excluding
    /// metadata).
    pub fn total_lines(&self) -> usize {
        self.configs.iter().map(ConfigIr::own_line_count).sum()
    }

    /// Returns the number of distinct patterns.
    pub fn pattern_count(&self) -> usize {
        self.table.len()
    }

    /// Returns the number of distinct `(pattern, parameter)` pairs
    /// (the "Parameters" column of Table 3).
    pub fn parameter_count(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        for config in &self.configs {
            for line in &config.lines {
                for (i, _) in line.params.iter().enumerate() {
                    seen.insert((line.pattern, i as u16));
                }
            }
        }
        seen.len()
    }
}

/// Runs embedding and lexing for one file.
fn lex_text(
    text: &str,
    lexer: &Lexer,
    embed_context: bool,
    cache: Option<&LexCache>,
) -> (FormatCategory, Vec<LexedLine>) {
    let (format, embedded) = if embed_context {
        embed_auto(text)
    } else {
        (
            FormatCategory::Flat,
            concord_formats::embed(text, FormatCategory::Flat),
        )
    };
    let lines = embedded
        .iter()
        .map(|e| match cache {
            Some(cache) => lexer.lex_line_cached(cache, &e.parents, &e.original, e.line_no),
            None => lexer.lex_line(&e.parents, &e.original, e.line_no),
        })
        .collect();
    (format, lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfgs(texts: &[&str]) -> Vec<(String, String)> {
        texts
            .iter()
            .enumerate()
            .map(|(i, t)| (format!("dev{i}"), t.to_string()))
            .collect()
    }

    #[test]
    fn pattern_table_interning() {
        let mut table = PatternTable::new();
        let a = table.intern("x [a:num]");
        let b = table.intern("y [a:num]");
        let a2 = table.intern("x [a:num]");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(table.text(a), "x [a:num]");
        assert_eq!(table.len(), 2);
        assert_eq!(table.get("y [a:num]"), Some(b));
        assert_eq!(table.get("missing"), None);
    }

    #[test]
    fn builds_dataset_with_embedding() {
        let configs = cfgs(&["interface Loopback0\n ip address 10.0.0.1\n"]);
        let ds = Dataset::from_named_texts(&configs, &[]).unwrap();
        assert_eq!(ds.configs.len(), 1);
        let config = &ds.configs[0];
        assert_eq!(config.lines.len(), 2);
        assert_eq!(
            ds.table.text(config.lines[1].pattern),
            "/interface Loopback[num]/ip address [a:ip4]"
        );
        assert_eq!(config.lines[1].line_no, 2);
    }

    #[test]
    fn same_pattern_shares_id_across_configs() {
        let configs = cfgs(&["vlan 10\n", "vlan 20\n"]);
        let ds = Dataset::from_named_texts(&configs, &[]).unwrap();
        assert_eq!(
            ds.configs[0].lines[0].pattern,
            ds.configs[1].lines[0].pattern
        );
        assert_eq!(ds.pattern_count(), 1);
    }

    #[test]
    fn metadata_appended_with_prefix() {
        let configs = cfgs(&["vlan 10\n", "vlan 20\n"]);
        let metadata = vec![("meta.yaml".to_string(), "vlanId: 10\n".to_string())];
        let ds = Dataset::from_named_texts(&configs, &metadata).unwrap();
        for config in &ds.configs {
            let meta_lines: Vec<_> = config.lines.iter().filter(|l| l.is_meta).collect();
            assert_eq!(meta_lines.len(), 1);
            assert!(ds.table.text(meta_lines[0].pattern).starts_with("@meta/"));
        }
        // Metadata lines are excluded from the own-line count.
        assert_eq!(ds.total_lines(), 2);
    }

    #[test]
    fn no_embedding_flattens() {
        let configs = cfgs(&["interface Loopback0\n ip address 10.0.0.1\n"]);
        let lexer = Lexer::standard();
        let ds = Dataset::build(&configs, &[], &lexer, false, 1).unwrap();
        assert_eq!(
            ds.table.text(ds.configs[0].lines[1].pattern),
            "/ip address [a:ip4]"
        );
    }

    #[test]
    fn parameter_count_counts_pattern_param_pairs() {
        let configs = cfgs(&["rd 1.2.3.4:55\n", "rd 5.6.7.8:99\nvlan 3\n"]);
        let ds = Dataset::from_named_texts(&configs, &[]).unwrap();
        // `rd [a:ip4]:[b:num]` has 2 params, `vlan [a:num]` has 1.
        assert_eq!(ds.parameter_count(), 3);
    }

    #[test]
    fn parallel_build_is_deterministic() {
        let configs = cfgs(&[
            "vlan 1\nvlan 2\n",
            "interface Et1\n mtu 9214\n",
            "router bgp 65000\n vlan 7\n",
            "hostname X1\n",
        ]);
        let lexer = Lexer::standard();
        let seq = Dataset::build(&configs, &[], &lexer, true, 1).unwrap();
        let par = Dataset::build(&configs, &[], &lexer, true, 4).unwrap();
        assert_eq!(seq.pattern_count(), par.pattern_count());
        for (a, b) in seq.configs.iter().zip(&par.configs) {
            assert_eq!(a.lines.len(), b.lines.len());
            for (la, lb) in a.lines.iter().zip(&b.lines) {
                assert_eq!(la.pattern, lb.pattern);
                assert_eq!(la.original, lb.original);
            }
        }
    }
}
