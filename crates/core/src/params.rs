//! Learning parameters (§4).

/// Parameters controlling contract learning.
///
/// The three headline knobs mirror §4 of the paper: support `S` (minimum
/// number of configurations a pattern must appear in, default 5),
/// confidence `C` (fraction of supporting instances in which the contract
/// must hold, default 0.96), and the heuristic score threshold that filters
/// spurious relational contracts (§3.5). The remaining fields toggle
/// contract categories and implementation limits.
#[derive(Debug, Clone, PartialEq)]
pub struct LearnParams {
    /// Support `S`: minimum number of configurations in which a pattern
    /// must appear.
    pub support: usize,
    /// Confidence `C` in `(0, 1]`: required fraction of supporting
    /// configurations in which the contract holds.
    pub confidence: f64,
    /// Heuristic score threshold for relational contracts: the cumulative
    /// diversity-aggregated informativeness a candidate must reach.
    pub score_threshold: f64,
    /// Learn `Present` contracts.
    pub enable_present: bool,
    /// Learn `Ordering` contracts. Enabled for learning by default; the
    /// production deployment disables them at check time (§5.4).
    pub enable_ordering: bool,
    /// Learn `Type` contracts.
    pub enable_type: bool,
    /// Learn `Sequence` contracts.
    pub enable_sequence: bool,
    /// Learn `Unique` contracts.
    pub enable_unique: bool,
    /// Learn relational contracts.
    pub enable_relational: bool,
    /// Learn `Range` contracts (extension category; ranges over numeric
    /// parameters with set-like usage). Off by default.
    pub enable_range: bool,
    /// Constant-learning mode (§4): additionally learn present/ordering
    /// contracts over exact line text, capturing "magic constant" policies.
    pub learn_constants: bool,
    /// Run contract minimization on relational contracts (§3.6).
    pub minimize: bool,
    /// Worker threads for the parallel phases.
    pub parallelism: usize,
    /// Maximum witnesses recorded per antecedent instance during candidate
    /// generation (bounds work on pathological inputs).
    pub max_witnesses_per_instance: usize,
    /// Maximum subtree size enumerated per affix query; larger fan-outs
    /// are treated as coincidental and skipped.
    pub max_affix_fanout: usize,
    /// Maximum distinct witness values tracked per candidate for
    /// diversity scoring.
    pub max_score_witnesses: usize,
}

impl Default for LearnParams {
    fn default() -> Self {
        LearnParams {
            support: 5,
            confidence: 0.96,
            score_threshold: 1.0,
            enable_present: true,
            enable_ordering: true,
            enable_type: true,
            enable_sequence: true,
            enable_unique: true,
            enable_relational: true,
            enable_range: false,
            learn_constants: false,
            minimize: true,
            parallelism: 1,
            max_witnesses_per_instance: 64,
            max_affix_fanout: 32,
            max_score_witnesses: 128,
        }
    }
}

impl LearnParams {
    /// Returns the number of supporting configurations out of `total` that
    /// a contract must hold in to clear the confidence bar.
    pub fn required_valid(&self, support_configs: usize) -> usize {
        (self.confidence * support_configs as f64).ceil() as usize
    }

    /// Returns `true` when `valid` out of `support_configs` supporting
    /// configurations satisfies both the support and confidence bars.
    pub fn accept(&self, valid: usize, support_configs: usize) -> bool {
        support_configs >= self.support && valid >= self.required_valid(support_configs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let p = LearnParams::default();
        assert_eq!(p.support, 5);
        assert!((p.confidence - 0.96).abs() < 1e-9);
    }

    #[test]
    fn required_valid_rounds_up() {
        let p = LearnParams::default();
        // 96% of 20 = 19.2 -> 20 required.
        assert_eq!(p.required_valid(20), 20);
        // 96% of 25 = 24.
        assert_eq!(p.required_valid(25), 24);
    }

    #[test]
    fn accept_enforces_both_bars() {
        let p = LearnParams::default();
        assert!(!p.accept(4, 4)); // Below support.
        assert!(p.accept(5, 5)); // Exactly at support, full confidence.
        assert!(!p.accept(22, 25)); // Support ok, confidence too low.
        assert!(p.accept(24, 25)); // 96% of 25.
    }

    #[test]
    fn non_universal_contracts_accepted() {
        // §4: a pattern in 20 configs holding in 96% of them is retained
        // even if absent elsewhere.
        let p = LearnParams::default();
        assert!(p.accept(20, 20));
        assert!(!p.accept(19, 20)); // 95% < 96%.
    }
}
