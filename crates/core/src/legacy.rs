//! The pre-refactor, array-of-structs dataset representation, retained
//! behind the `legacy-ir` feature as the equivalence oracle for the
//! arena-backed SoA [`Dataset`] (same pattern as `naive-check` /
//! `reference-learn`).
//!
//! [`LegacyDataset`] reproduces the original build/upsert/remove logic
//! exactly: every line is a materialized [`LegacyLineRecord`] owning an
//! `Arc<str>` original and an `Arc<[Param]>`, and metadata records are
//! `Arc`-shared across configurations. Property tests drive identical
//! randomized edit sequences through both representations and assert the
//! resulting datasets are line-for-line identical and produce
//! byte-identical CHECK/LEARN output (see `bench/tests/ir_equivalence.rs`).

use std::sync::Arc;

use concord_formats::FormatCategory;
use concord_lexer::{LexCache, LexedLine, Lexer, Param};

use crate::ir::{lex_text, Dataset, PatternId, PatternTable};

/// One lexed configuration line, pre-refactor shape: materialized record
/// with `Arc`-shared payloads.
#[derive(Debug, Clone)]
pub struct LegacyLineRecord {
    /// The interned pattern id of the full embedded line.
    pub pattern: PatternId,
    /// Parameters bound from the original line text, in order.
    pub params: Arc<[Param]>,
    /// 1-based line number in the source file.
    pub line_no: u32,
    /// The trimmed original line text.
    pub original: Arc<str>,
    /// `true` when the line came from an appended metadata file.
    pub is_meta: bool,
}

/// One configuration file, pre-refactor shape.
#[derive(Debug, Clone)]
pub struct LegacyConfig {
    /// The configuration's name.
    pub name: String,
    /// The inferred format category.
    pub format: FormatCategory,
    /// All content lines in source order (metadata lines appended last).
    pub lines: Vec<LegacyLineRecord>,
}

/// A set of configurations in the pre-refactor representation, with the
/// original edit logic.
#[derive(Debug, Clone, Default)]
pub struct LegacyDataset {
    /// The shared pattern interner.
    pub table: PatternTable,
    /// The configurations.
    pub configs: Vec<LegacyConfig>,
    meta_lexed: Vec<Vec<LexedLine>>,
    meta_records: Option<Vec<LegacyLineRecord>>,
}

impl LegacyDataset {
    /// Builds a legacy dataset with the standard lexer, mirroring
    /// [`Dataset::from_named_texts`].
    pub fn from_named_texts(
        configs: &[(String, String)],
        metadata: &[(String, String)],
    ) -> LegacyDataset {
        let lexer = Lexer::standard();
        let meta_lexed: Vec<Vec<LexedLine>> = metadata
            .iter()
            .map(|(_, text)| lex_text(text, &lexer, true, None).1)
            .collect();
        let mut dataset = LegacyDataset {
            table: PatternTable::new(),
            configs: Vec::with_capacity(configs.len()),
            meta_lexed,
            meta_records: None,
        };
        for (name, text) in configs {
            dataset.upsert_config(name, text, &lexer, true, None);
        }
        dataset
    }

    fn shared_meta_records(&mut self) -> &[LegacyLineRecord] {
        if self.meta_records.is_none() {
            let records: Vec<LegacyLineRecord> = self
                .meta_lexed
                .iter()
                .flat_map(|lines| lines.iter())
                .map(|l| LegacyLineRecord {
                    pattern: self.table.intern(&format!("@meta{}", l.pattern)),
                    params: l.params.clone().into(),
                    line_no: l.line_no,
                    original: l.original.as_str().into(),
                    is_meta: true,
                })
                .collect();
            self.meta_records = Some(records);
        }
        self.meta_records.as_deref().expect("just populated")
    }

    /// Inserts or replaces the configuration named `name` — the
    /// pre-refactor upsert logic verbatim.
    pub fn upsert_config(
        &mut self,
        name: &str,
        text: &str,
        lexer: &Lexer,
        embed_context: bool,
        cache: Option<&LexCache>,
    ) -> usize {
        let (format, lines) = lex_text(text, lexer, embed_context, cache);
        let mut records: Vec<LegacyLineRecord> = lines
            .into_iter()
            .map(|l| LegacyLineRecord {
                pattern: self.table.intern(&l.pattern),
                params: l.params.into(),
                line_no: l.line_no,
                original: l.original.into(),
                is_meta: false,
            })
            .collect();
        records.extend_from_slice(self.shared_meta_records());
        let config = LegacyConfig {
            name: name.to_string(),
            format,
            lines: records,
        };
        match self.configs.iter().position(|c| c.name == name) {
            Some(i) => {
                self.configs[i] = config;
                i
            }
            None => {
                let i = self.configs.partition_point(|c| c.name.as_str() < name);
                self.configs.insert(i, config);
                i
            }
        }
    }

    /// Removes the configuration named `name`.
    pub fn remove_config(&mut self, name: &str) -> Option<usize> {
        let i = self.configs.iter().position(|c| c.name == name)?;
        self.configs.remove(i);
        Some(i)
    }

    /// Returns the number of non-metadata lines across all configurations
    /// (the pre-refactor O(lines) recount).
    pub fn total_lines(&self) -> usize {
        self.configs
            .iter()
            .map(|c| c.lines.iter().filter(|l| !l.is_meta).count())
            .sum()
    }

    /// Heap bytes held by the line records: the per-record structs plus
    /// every distinct `Arc` payload (originals, param slices, param name
    /// strings), counted **once per allocation** — `Arc`-shared metadata
    /// records do not multiply. The pattern table is excluded so the
    /// figure is directly comparable to the SoA side's string + param +
    /// column arenas (`Dataset::arena_bytes` minus its table term).
    pub fn heap_bytes(&self) -> usize {
        let mut seen: std::collections::HashSet<usize> = std::collections::HashSet::new();
        let mut bytes = 0usize;
        for config in &self.configs {
            bytes += config.name.capacity();
            bytes += config.lines.capacity() * std::mem::size_of::<LegacyLineRecord>();
            for line in &config.lines {
                if seen.insert(Arc::as_ptr(&line.original) as *const u8 as usize) {
                    bytes += line.original.len();
                }
                if seen.insert(Arc::as_ptr(&line.params) as *const u8 as usize) {
                    bytes += line.params.len() * std::mem::size_of::<Param>()
                        + line.params.iter().map(|p| p.name.capacity()).sum::<usize>();
                }
            }
        }
        bytes
    }

    /// Converts into the SoA representation by re-interning every record
    /// in order. The result is a fully independent [`Dataset`] whose line
    /// views must match this dataset's records field for field.
    pub fn to_dataset(&self) -> Dataset {
        let mut out = Dataset::default();
        for config in &self.configs {
            let own: Vec<&LegacyLineRecord> = config.lines.iter().filter(|l| !l.is_meta).collect();
            let meta: Vec<&LegacyLineRecord> = config.lines.iter().filter(|l| l.is_meta).collect();
            assert_eq!(
                own.len() + meta.len(),
                config.lines.len(),
                "metadata records must form a contiguous suffix"
            );
            let lexed: Vec<LexedLine> = own
                .iter()
                .chain(meta.iter())
                .map(|l| LexedLine {
                    pattern: self.table.text(l.pattern).to_string(),
                    params: l.params.to_vec(),
                    line_no: l.line_no,
                    original: l.original.to_string(),
                })
                .collect();
            out.push_converted(&config.name, config.format, &lexed, own.len());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfgs(texts: &[&str]) -> Vec<(String, String)> {
        texts
            .iter()
            .enumerate()
            .map(|(i, t)| (format!("dev{i}"), t.to_string()))
            .collect()
    }

    #[test]
    fn legacy_matches_soa_on_batch_build() {
        let configs = cfgs(&[
            "interface Loopback0\n ip address 10.0.0.1\n",
            "vlan 10\nvlan 20\n",
        ]);
        let metadata = vec![("meta.yaml".to_string(), "siteId: 4\n".to_string())];
        let legacy = LegacyDataset::from_named_texts(&configs, &metadata);
        let soa = Dataset::from_named_texts(&configs, &metadata).unwrap();
        let converted = legacy.to_dataset();
        for ds in [&soa, &converted] {
            assert_eq!(legacy.configs.len(), ds.configs.len());
            assert_eq!(legacy.total_lines(), ds.total_lines());
            for (lc, sc) in legacy.configs.iter().zip(&ds.configs) {
                assert_eq!(lc.name, ds.name_of(sc));
                assert_eq!(lc.lines.len(), sc.len());
                for (lr, sr) in lc.lines.iter().zip(sc.lines(&ds.arenas)) {
                    assert_eq!(legacy.table.text(lr.pattern), ds.table.text(sr.pattern));
                    assert_eq!(&*lr.original, sr.original);
                    assert_eq!(&*lr.params, sr.params);
                    assert_eq!(lr.line_no, sr.line_no);
                    assert_eq!(lr.is_meta, sr.is_meta);
                }
            }
        }
    }
}
