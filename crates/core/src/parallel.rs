//! A small deterministic parallel-map helper.
//!
//! Both learning and checking parallelize over configurations (§4 exposes a
//! parallelism flag). The helper splits the input into contiguous chunks,
//! processes them on crossbeam scoped threads, and reassembles results in
//! input order, so outputs are identical at every parallelism level.

/// Maps `f` over `items` using up to `parallelism` worker threads.
///
/// Results are returned in input order. `parallelism <= 1` (or a tiny
/// input) runs inline with no thread overhead.
pub fn map<T, R, F>(items: &[T], f: F, parallelism: usize) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if parallelism <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let workers = parallelism.min(items.len());
    let chunk_size = items.len().div_ceil(workers);
    let mut results: Vec<Option<R>> = Vec::with_capacity(items.len());
    results.resize_with(items.len(), || None);

    crossbeam::thread::scope(|scope| {
        let mut rest = results.as_mut_slice();
        let mut offset = 0;
        let mut handles = Vec::new();
        while offset < items.len() {
            let take = chunk_size.min(items.len() - offset);
            let (chunk_out, tail) = rest.split_at_mut(take);
            rest = tail;
            let chunk_in = &items[offset..offset + take];
            let f = &f;
            handles.push(scope.spawn(move |_| {
                for (slot, item) in chunk_out.iter_mut().zip(chunk_in) {
                    *slot = Some(f(item));
                }
            }));
            offset += take;
        }
        for handle in handles {
            handle.join().expect("parallel map worker panicked");
        }
    })
    .expect("parallel map scope failed");

    results
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = map(&items, |&x| x * 2, 4);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_fallback() {
        let items = vec![1, 2, 3];
        assert_eq!(map(&items, |&x| x + 1, 1), vec![2, 3, 4]);
        assert_eq!(map(&items, |&x| x + 1, 0), vec![2, 3, 4]);
    }

    #[test]
    fn more_workers_than_items() {
        let items = vec![5, 6];
        assert_eq!(map(&items, |&x| x, 16), vec![5, 6]);
    }

    #[test]
    fn empty_input() {
        let items: Vec<u32> = vec![];
        assert!(map(&items, |&x| x, 8).is_empty());
    }

    #[test]
    fn parallel_equals_sequential() {
        let items: Vec<u64> = (0..997).collect();
        let seq = map(&items, |&x| x.wrapping_mul(31).rotate_left(7), 1);
        let par = map(&items, |&x| x.wrapping_mul(31).rotate_left(7), 8);
        assert_eq!(seq, par);
    }
}
