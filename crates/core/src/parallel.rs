//! A deterministic work-stealing parallel-map helper.
//!
//! Both learning and checking parallelize over configurations (§4 exposes a
//! parallelism flag). Workers claim items one at a time from a shared
//! atomic cursor, so a skewed item (one huge configuration among many
//! small ones) occupies a single worker while the rest drain the remaining
//! items — unlike the earlier fixed-chunk splitter, which stalled every
//! worker behind the slowest chunk. Results are reassembled in input
//! order, so outputs are identical at every parallelism level.
//!
//! Worker panics are caught, all workers are joined, and the *first*
//! worker's original panic payload is re-raised on the calling thread, so
//! `assert!` messages and `panic!` payloads inside the mapped closure
//! survive intact.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Maps `f` over `items` using up to `parallelism` worker threads.
///
/// Results are returned in input order. `parallelism <= 1` (or a tiny
/// input) runs inline with no thread overhead.
///
/// # Panics
///
/// If `f` panics on any item, the panic payload of the first failing
/// worker is re-raised after all workers have stopped.
pub fn map<T, R, F>(items: &[T], f: F, parallelism: usize) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if parallelism <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let workers = parallelism.min(items.len());

    // The scheduler: a shared cursor over item indices. Claiming is
    // first-come-first-served (work stealing degenerates to an atomic
    // fetch-add when every worker steals from one global deque), while
    // output order is restored by scattering on the claimed index.
    let next = AtomicUsize::new(0);
    let poisoned = AtomicBool::new(false);

    type WorkerOutcome<R> = Result<Vec<(usize, R)>, Box<dyn std::any::Any + Send + 'static>>;

    let outcomes: Vec<WorkerOutcome<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let poisoned = &poisoned;
                let f = &f;
                scope.spawn(move || {
                    catch_unwind(AssertUnwindSafe(|| {
                        let mut local = Vec::new();
                        loop {
                            if poisoned.load(Ordering::Relaxed) {
                                break;
                            }
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= items.len() {
                                break;
                            }
                            local.push((i, f(&items[i])));
                        }
                        local
                    }))
                    .inspect_err(|_| poisoned.store(true, Ordering::Relaxed))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker caught its own unwind"))
            .collect()
    });

    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let mut first_panic = None;
    for outcome in outcomes {
        match outcome {
            Ok(pairs) => {
                for (i, r) in pairs {
                    slots[i] = Some(r);
                }
            }
            Err(payload) => {
                if first_panic.is_none() {
                    first_panic = Some(payload);
                }
            }
        }
    }
    if let Some(payload) = first_panic {
        resume_unwind(payload);
    }

    slots
        .into_iter()
        .map(|r| r.expect("every index claimed exactly once"))
        .collect()
}

/// Reduces `items` with the associative operator `f` up a binary tree.
///
/// Adjacent pairs `(0,1), (2,3), …` are combined level by level (an odd
/// tail item passes through unchanged), so the association is always
/// `((a·b)·(c·d))·…` regardless of worker count: for an associative `f`
/// the result is identical to a sequential left fold, but each level's
/// pair merges run concurrently on [`map`]'s work-stealing pool. Item
/// *order* is never permuted, so `f` may be order-sensitive (e.g. a merge
/// that keeps first-seen witnesses) as long as it is associative over
/// adjacent runs.
///
/// Returns `None` on empty input.
pub fn reduce<T, F>(mut items: Vec<T>, f: F, parallelism: usize) -> Option<T>
where
    T: Send,
    F: Fn(T, T) -> T + Sync,
{
    use std::sync::Mutex;
    // Own each pair through a Mutex<Option<..>> slot so the borrowing
    // `map` closure can move values out.
    type PairSlot<T> = Mutex<Option<(T, Option<T>)>>;
    while items.len() > 1 {
        let mut pairs: Vec<PairSlot<T>> = Vec::with_capacity(items.len() / 2 + 1);
        let mut iter = items.into_iter();
        while let Some(a) = iter.next() {
            pairs.push(Mutex::new(Some((a, iter.next()))));
        }
        items = map(
            &pairs,
            |slot| {
                let (a, b) = slot
                    .lock()
                    .expect("no panics hold this lock")
                    .take()
                    .expect("each slot claimed exactly once");
                match b {
                    Some(b) => f(a, b),
                    None => a,
                }
            },
            parallelism,
        );
    }
    items.pop()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = map(&items, |&x| x * 2, 4);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_fallback() {
        let items = vec![1, 2, 3];
        assert_eq!(map(&items, |&x| x + 1, 1), vec![2, 3, 4]);
        assert_eq!(map(&items, |&x| x + 1, 0), vec![2, 3, 4]);
    }

    #[test]
    fn more_workers_than_items() {
        let items = vec![5, 6];
        assert_eq!(map(&items, |&x| x, 16), vec![5, 6]);
    }

    #[test]
    fn empty_input() {
        let items: Vec<u32> = vec![];
        assert!(map(&items, |&x| x, 8).is_empty());
    }

    #[test]
    fn parallel_equals_sequential() {
        let items: Vec<u64> = (0..997).collect();
        let seq = map(&items, |&x| x.wrapping_mul(31).rotate_left(7), 1);
        let par = map(&items, |&x| x.wrapping_mul(31).rotate_left(7), 8);
        assert_eq!(seq, par);
    }

    #[test]
    fn skewed_items_do_not_serialize_the_rest() {
        // One item 100x heavier than the others: with chunked scheduling
        // at 4 workers the heavy item's chunk also carried ~250 light
        // items; with per-item claiming it carries only itself. We can't
        // assert wall-clock robustly, but we can assert correctness under
        // heavy skew.
        let items: Vec<u64> = (0..1000).collect();
        let out = map(
            &items,
            |&x| {
                let spins = if x == 0 { 100_000 } else { 100 };
                (0..spins).fold(x, |acc, i| acc.wrapping_add(i ^ acc.rotate_left(3)))
            },
            4,
        );
        let expected = map(
            &items,
            |&x| {
                let spins = if x == 0 { 100_000 } else { 100 };
                (0..spins).fold(x, |acc, i| acc.wrapping_add(i ^ acc.rotate_left(3)))
            },
            1,
        );
        assert_eq!(out, expected);
    }

    #[test]
    fn reduce_matches_sequential_fold() {
        // String concatenation is associative but NOT commutative: the
        // tree shape must preserve item order exactly.
        let items: Vec<String> = (0..37).map(|i| format!("{i};")).collect();
        let expected = items.concat();
        for parallelism in [1, 3, 8] {
            let got = reduce(items.clone(), |a, b| a + &b, parallelism);
            assert_eq!(got.as_deref(), Some(expected.as_str()), "p={parallelism}");
        }
    }

    #[test]
    fn reduce_handles_tiny_inputs() {
        assert_eq!(reduce(Vec::<u32>::new(), |a, b| a + b, 4), None);
        assert_eq!(reduce(vec![7u32], |a, b| a + b, 4), Some(7));
        assert_eq!(reduce(vec![3u32, 4], |a, b| a + b, 4), Some(7));
    }

    #[test]
    fn reduce_odd_tail_passes_through() {
        let items: Vec<u64> = (1..=9).collect();
        assert_eq!(reduce(items, |a, b| a * b, 4), Some(362880));
    }

    #[test]
    fn worker_panic_propagates_original_payload() {
        let items: Vec<u32> = (0..64).collect();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            map(
                &items,
                |&x| {
                    if x == 13 {
                        panic!("boom on item {x}");
                    }
                    x
                },
                4,
            )
        }))
        .expect_err("map must propagate the worker panic");
        let message = caught
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| caught.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("payload is the original panic message");
        assert_eq!(message, "boom on item 13");
    }

    #[test]
    fn panic_in_sequential_mode_also_propagates() {
        let items = vec![1u8];
        let caught = catch_unwind(AssertUnwindSafe(|| {
            map(&items, |_| -> u8 { panic!("inline boom") }, 1)
        }))
        .expect_err("inline panic propagates");
        assert_eq!(*caught.downcast_ref::<&str>().unwrap(), "inline boom");
    }
}
