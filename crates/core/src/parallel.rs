//! A deterministic work-stealing parallel-map helper.
//!
//! Both learning and checking parallelize over configurations (§4 exposes a
//! parallelism flag). Workers claim items one at a time from a shared
//! atomic cursor, so a skewed item (one huge configuration among many
//! small ones) occupies a single worker while the rest drain the remaining
//! items — unlike the earlier fixed-chunk splitter, which stalled every
//! worker behind the slowest chunk. Results are reassembled in input
//! order, so outputs are identical at every parallelism level.
//!
//! Worker panics are caught, all workers are joined, and the *first*
//! worker's original panic payload is re-raised on the calling thread, so
//! `assert!` messages and `panic!` payloads inside the mapped closure
//! survive intact.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Maps `f` over `items` using up to `parallelism` worker threads.
///
/// Results are returned in input order. `parallelism <= 1` (or a tiny
/// input) runs inline with no thread overhead.
///
/// # Panics
///
/// If `f` panics on any item, the panic payload of the first failing
/// worker is re-raised after all workers have stopped.
pub fn map<T, R, F>(items: &[T], f: F, parallelism: usize) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if parallelism <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let workers = parallelism.min(items.len());

    // The scheduler: a shared cursor over item indices. Claiming is
    // first-come-first-served (work stealing degenerates to an atomic
    // fetch-add when every worker steals from one global deque), while
    // output order is restored by scattering on the claimed index.
    let next = AtomicUsize::new(0);
    let poisoned = AtomicBool::new(false);

    type WorkerOutcome<R> = Result<Vec<(usize, R)>, Box<dyn std::any::Any + Send + 'static>>;

    let outcomes: Vec<WorkerOutcome<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let poisoned = &poisoned;
                let f = &f;
                scope.spawn(move || {
                    catch_unwind(AssertUnwindSafe(|| {
                        let mut local = Vec::new();
                        loop {
                            if poisoned.load(Ordering::Relaxed) {
                                break;
                            }
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= items.len() {
                                break;
                            }
                            local.push((i, f(&items[i])));
                        }
                        local
                    }))
                    .inspect_err(|_| poisoned.store(true, Ordering::Relaxed))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker caught its own unwind"))
            .collect()
    });

    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let mut first_panic = None;
    for outcome in outcomes {
        match outcome {
            Ok(pairs) => {
                for (i, r) in pairs {
                    slots[i] = Some(r);
                }
            }
            Err(payload) => {
                if first_panic.is_none() {
                    first_panic = Some(payload);
                }
            }
        }
    }
    if let Some(payload) = first_panic {
        resume_unwind(payload);
    }

    slots
        .into_iter()
        .map(|r| r.expect("every index claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = map(&items, |&x| x * 2, 4);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_fallback() {
        let items = vec![1, 2, 3];
        assert_eq!(map(&items, |&x| x + 1, 1), vec![2, 3, 4]);
        assert_eq!(map(&items, |&x| x + 1, 0), vec![2, 3, 4]);
    }

    #[test]
    fn more_workers_than_items() {
        let items = vec![5, 6];
        assert_eq!(map(&items, |&x| x, 16), vec![5, 6]);
    }

    #[test]
    fn empty_input() {
        let items: Vec<u32> = vec![];
        assert!(map(&items, |&x| x, 8).is_empty());
    }

    #[test]
    fn parallel_equals_sequential() {
        let items: Vec<u64> = (0..997).collect();
        let seq = map(&items, |&x| x.wrapping_mul(31).rotate_left(7), 1);
        let par = map(&items, |&x| x.wrapping_mul(31).rotate_left(7), 8);
        assert_eq!(seq, par);
    }

    #[test]
    fn skewed_items_do_not_serialize_the_rest() {
        // One item 100x heavier than the others: with chunked scheduling
        // at 4 workers the heavy item's chunk also carried ~250 light
        // items; with per-item claiming it carries only itself. We can't
        // assert wall-clock robustly, but we can assert correctness under
        // heavy skew.
        let items: Vec<u64> = (0..1000).collect();
        let out = map(
            &items,
            |&x| {
                let spins = if x == 0 { 100_000 } else { 100 };
                (0..spins).fold(x, |acc, i| acc.wrapping_add(i ^ acc.rotate_left(3)))
            },
            4,
        );
        let expected = map(
            &items,
            |&x| {
                let spins = if x == 0 { 100_000 } else { 100 };
                (0..spins).fold(x, |acc, i| acc.wrapping_add(i ^ acc.rotate_left(3)))
            },
            1,
        );
        assert_eq!(out, expected);
    }

    #[test]
    fn worker_panic_propagates_original_payload() {
        let items: Vec<u32> = (0..64).collect();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            map(
                &items,
                |&x| {
                    if x == 13 {
                        panic!("boom on item {x}");
                    }
                    x
                },
                4,
            )
        }))
        .expect_err("map must propagate the worker panic");
        let message = caught
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| caught.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("payload is the original panic message");
        assert_eq!(message, "boom on item 13");
    }

    #[test]
    fn panic_in_sequential_mode_also_propagates() {
        let items = vec![1u8];
        let caught = catch_unwind(AssertUnwindSafe(|| {
            map(&items, |_| -> u8 { panic!("inline boom") }, 1)
        }))
        .expect_err("inline panic propagates");
        assert_eq!(*caught.downcast_ref::<&str>().unwrap(), "inline boom");
    }
}
