#![warn(missing_docs)]

//! Concord's contract model, learning engine, and checking engine.
//!
//! This crate is the paper's primary contribution: given example network
//! configurations it *learns* lightweight configuration contracts (§3), and
//! given contracts it *checks* new or changed configurations, reporting
//! line-localized violations (§3.8) and configuration coverage (§3.9).
//!
//! The pipeline:
//!
//! ```text
//! text ──▶ format inference ──▶ context embedding ──▶ lexing ──▶ Dataset
//!            (concord-formats)                      (concord-lexer)
//! Dataset ──▶ learn(&Dataset, &LearnParams) ──▶ ContractSet
//! ContractSet + Dataset ──▶ check(..) ──▶ CheckReport { violations, coverage }
//! ```
//!
//! # Examples
//!
//! ```
//! use concord_core::{learn, check, Dataset, LearnParams};
//!
//! // Three tiny "devices" sharing an invariant: every loopback address is
//! // permitted by the prefix list.
//! let mk = |n: u8| {
//!     format!(
//!         "interface Loopback0\n ip address 10.0.0.{n}\nip prefix-list lo\n seq 10 permit 10.0.0.{n}/32\n"
//!     )
//! };
//! let configs: Vec<(String, String)> =
//!     (1..=6).map(|n| (format!("dev{n}"), mk(n))).collect();
//! let dataset = Dataset::from_named_texts(&configs, &[]).unwrap();
//!
//! let mut params = LearnParams::default();
//! params.support = 3;
//! let contracts = learn(&dataset, &params);
//! assert!(!contracts.is_empty());
//!
//! // A buggy device: loopback address missing from the prefix list.
//! let bad = vec![(
//!     "dev-bad".to_string(),
//!     "interface Loopback0\n ip address 10.0.0.9\nip prefix-list lo\n seq 10 permit 10.0.0.7/32\n".to_string(),
//! )];
//! let test = Dataset::from_named_texts(&bad, &[]).unwrap();
//! let report = check(&contracts, &test);
//! assert!(!report.violations.is_empty());
//! ```

mod check;
mod contract;
mod fxhash;
mod ir;
mod learn;
#[cfg(any(test, feature = "legacy-ir"))]
mod legacy;
pub mod parallel;
mod params;
mod stats;

pub use check::coverage::{ConfigCoverage, CoverageReport, CoverageSummary};
pub use check::{
    check, check_parallel, check_parallel_with_stats, replay_unique_tables, CheckCounters,
    CheckProgram, CheckReport, ConfigOutcome, UniqueTable, Violation,
};
#[cfg(any(test, feature = "naive-check"))]
pub use check::{check_naive, check_naive_parallel};
pub use contract::{Contract, ContractSet, PatternRef, RelationKind, RelationalContract};
pub use ir::{
    Arenas, ConfigIr, Dataset, DatasetError, LineRef, ParamArena, ParamSliceId, PatternId,
    PatternTable, StrArena, StrId,
};
pub use learn::indexes::{
    AffixStructure, ContainsStructure, Entry, EqualityStructure, NodeKey, PrefixTrie,
    RelationStructure, StrTrie, TransformTag, ValueIndex,
};
#[cfg(any(test, feature = "reference-learn"))]
pub use learn::learn_reference;
pub use learn::{
    finalize_sketches, learn, learn_with_stats, sketch_config, sketch_params_fingerprint,
    ConfigSketch, LearnStats, SKETCH_FORMAT_VERSION,
};
#[cfg(any(test, feature = "legacy-ir"))]
pub use legacy::{LegacyConfig, LegacyDataset, LegacyLineRecord};
pub use params::LearnParams;
pub use stats::{
    BuildStats, CheckStats, EngineCheckStats, EngineStats, FleetReplicaStats, FleetShardStats,
    FleetStats, FleetTotals, LearnDeltaStats, MemoryStats, PipelineStats, RobustnessStats,
    ServeTransportStats, StorageStats, STATS_SCHEMA,
};
