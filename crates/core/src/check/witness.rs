//! Indexed relational witness lookup for the compiled check engine.
//!
//! The naive checker answers "does any consequent value relate to this
//! antecedent value?" by scanning every consequent
//! ([`find_witnesses`](crate::check::find_witnesses) — O(consequents) per
//! probe). A [`WitnessIndex`] is built once per `(config, consequent
//! node, relation)` and answers the same question in O(1) or
//! O(log consequents), reusing the relation-structure machinery of
//! [`learn::indexes`](crate::learn::indexes):
//!
//! - `equals`: a hash map from value to witness lines,
//! - `contains`: the binary [`PrefixTrie`] per address family (Figure 4),
//! - `startswith` / `endswith`: sorted string tables probed by binary
//!   search (every string with prefix `p` occupies a contiguous run in
//!   byte-lexicographic order; `endswith` stores char-reversed strings).
//!
//! One fused query serves both consumers ([`WitnessIndex::probe`]):
//! checking needs *any* witness, coverage needs the *sole* witness when
//! exactly one exists. Counting witnesses capped at two answers both in
//! a single index walk, so the check pass probes each antecedent once.

use concord_types::Value;

use crate::contract::RelationKind;
use crate::fxhash::FxHashMap;
use crate::learn::indexes::PrefixTrie;

/// A per-configuration index over one consequent node's transformed
/// values, specialized to one relation kind.
pub(crate) enum WitnessIndex {
    /// `equals`: value → line indices carrying it.
    Equals(FxHashMap<Value, Vec<u32>>),
    /// `contains`: prefix tries per address family over consequent
    /// networks; trie items are line indices.
    Contains {
        /// IPv4 networks.
        v4: PrefixTrie,
        /// IPv6 networks.
        v6: PrefixTrie,
        /// Number of indexed networks (for stats).
        entries: usize,
    },
    /// `startswith` / `endswith`: consequent strings sorted
    /// byte-lexicographically (char-reversed when `reverse`), paired with
    /// their line indices.
    Affix {
        /// Sorted `(string form, line index)` pairs.
        entries: Vec<(String, u32)>,
        /// `true` for `endswith` (strings stored reversed).
        reverse: bool,
    },
}

/// The result of one fused witness probe: how many consequent
/// occurrences relate to the antecedent value, capped at two.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WitnessProbe {
    /// No witness: the contract is violated at this antecedent.
    Zero,
    /// Exactly one witness (its line index) — coverage's "sole witness".
    One(u32),
    /// Two or more witnesses.
    Many,
}

impl WitnessIndex {
    /// Builds the index for `relation` over a consequent node's
    /// `(transformed value, line index)` collection.
    pub fn build(relation: RelationKind, consequents: &[(Value, usize)]) -> Self {
        match relation {
            RelationKind::Equals => {
                let mut map: FxHashMap<Value, Vec<u32>> = FxHashMap::default();
                for (v, li) in consequents {
                    map.entry(v.clone()).or_default().push(*li as u32);
                }
                WitnessIndex::Equals(map)
            }
            RelationKind::Contains => {
                let mut v4 = PrefixTrie::default();
                let mut v6 = PrefixTrie::default();
                let mut entries = 0usize;
                for (v, li) in consequents {
                    if let Value::Net(net) = v {
                        if net.is_v4() {
                            v4.insert(*net, *li as u32);
                        } else {
                            v6.insert(*net, *li as u32);
                        }
                        entries += 1;
                    }
                }
                WitnessIndex::Contains { v4, v6, entries }
            }
            RelationKind::StartsWith | RelationKind::EndsWith => {
                let reverse = relation == RelationKind::EndsWith;
                let mut entries: Vec<(String, u32)> = consequents
                    .iter()
                    .filter_map(|(v, li)| {
                        let s = v.as_str()?;
                        let key = if reverse {
                            s.chars().rev().collect()
                        } else {
                            s.to_string()
                        };
                        Some((key, *li as u32))
                    })
                    .collect();
                entries.sort_unstable();
                WitnessIndex::Affix { entries, reverse }
            }
        }
    }

    /// Number of indexed consequent occurrences (stats).
    pub fn len(&self) -> usize {
        match self {
            WitnessIndex::Equals(map) => map.values().map(Vec::len).sum(),
            WitnessIndex::Contains { entries, .. } => *entries,
            WitnessIndex::Affix { entries, .. } => entries.len(),
        }
    }

    /// Fused witness query: counts the consequent occurrences relating
    /// to `v1`, capped at two, returning the sole witness's line index
    /// when there is exactly one. Checking consumes "zero vs non-zero";
    /// coverage consumes the `One` identity — one index walk serves both.
    pub fn probe(&self, v1: &Value) -> WitnessProbe {
        match self {
            WitnessIndex::Equals(map) => match map.get(v1).map(Vec::as_slice) {
                None | Some([]) => WitnessProbe::Zero,
                Some([li]) => WitnessProbe::One(*li),
                Some(_) => WitnessProbe::Many,
            },
            WitnessIndex::Contains { v4, v6, .. } => {
                let (count, first) = match v1 {
                    Value::Ip(addr) => {
                        let trie = if addr.is_v4() { v4 } else { v6 };
                        trie.covering_first2(addr.bits(), addr.family_bits())
                    }
                    Value::Net(net) => {
                        let trie = if net.is_v4() { v4 } else { v6 };
                        trie.covering_first2(net.bits(), net.prefix_len())
                    }
                    _ => (0, 0),
                };
                match count {
                    0 => WitnessProbe::Zero,
                    1 => WitnessProbe::One(first),
                    _ => WitnessProbe::Many,
                }
            }
            WitnessIndex::Affix { entries, reverse } => {
                let Some(probe) = affix_probe(v1, *reverse) else {
                    return WitnessProbe::Zero;
                };
                let probe = probe.as_ref();
                let start = entries.partition_point(|(s, _)| s.as_str() < probe);
                let mut run = entries[start..]
                    .iter()
                    .take_while(|(s, _)| s.starts_with(probe));
                match (run.next(), run.next()) {
                    (None, _) => WitnessProbe::Zero,
                    (Some((_, li)), None) => WitnessProbe::One(*li),
                    _ => WitnessProbe::Many,
                }
            }
        }
    }
}

/// The string form an affix probe compares under (reversed for
/// `endswith`); `None` when the antecedent value has no string form.
/// Forward probes borrow — only `endswith` pays a per-probe reversal.
fn affix_probe(v1: &Value, reverse: bool) -> Option<std::borrow::Cow<'_, str>> {
    let s = v1.as_str()?;
    Some(if reverse {
        std::borrow::Cow::Owned(s.chars().rev().collect())
    } else {
        std::borrow::Cow::Borrowed(s)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::find_witnesses;
    use concord_types::ValueType;

    fn val(ty: ValueType, s: &str) -> Value {
        Value::parse_as(&ty, s).unwrap()
    }

    /// Differential check: the fused probe must agree with the naive
    /// scan's witness count (capped at two) for every probe, and name
    /// the same line when the witness is sole.
    fn assert_matches_naive(
        relation: RelationKind,
        consequents: &[(Value, usize)],
        probes: &[Value],
    ) {
        let index = WitnessIndex::build(relation, consequents);
        for probe in probes {
            let naive = find_witnesses(relation, probe, consequents);
            let expected = match naive.as_slice() {
                [] => WitnessProbe::Zero,
                [li] => WitnessProbe::One(*li as u32),
                _ => WitnessProbe::Many,
            };
            assert_eq!(
                index.probe(probe),
                expected,
                "{relation:?} probe({probe:?})"
            );
        }
    }

    #[test]
    fn equals_index_matches_naive() {
        let consequents = vec![
            (val(ValueType::Num, "10"), 0),
            (val(ValueType::Num, "10"), 3),
            (val(ValueType::Num, "20"), 5),
            (Value::Str("x".into()), 7),
        ];
        let probes = vec![
            val(ValueType::Num, "10"),
            val(ValueType::Num, "20"),
            val(ValueType::Num, "30"),
            Value::Str("x".into()),
            Value::Bool(true),
        ];
        assert_matches_naive(RelationKind::Equals, &consequents, &probes);
    }

    #[test]
    fn contains_index_matches_naive() {
        let consequents = vec![
            (val(ValueType::Pfx4, "10.0.0.0/8"), 0),
            (val(ValueType::Pfx4, "10.14.0.0/16"), 1),
            (val(ValueType::Pfx4, "192.168.0.0/16"), 2),
            (val(ValueType::Pfx6, "2001:db8::/32"), 3),
            (val(ValueType::Num, "99"), 4), // non-network: never a witness
        ];
        let probes = vec![
            val(ValueType::Ip4, "10.14.3.4"),
            val(ValueType::Ip4, "11.0.0.1"),
            val(ValueType::Pfx4, "10.14.8.0/24"),
            val(ValueType::Pfx4, "10.16.0.0/12"),
            val(ValueType::Ip6, "2001:db8::1"),
            val(ValueType::Ip6, "::1"),
            val(ValueType::Num, "10"),
        ];
        assert_matches_naive(RelationKind::Contains, &consequents, &probes);
    }

    #[test]
    fn affix_indexes_match_naive() {
        let consequents = vec![
            (Value::Str("10251".into()), 0),
            (Value::Str("251".into()), 1),
            (Value::Str("251x".into()), 2),
            (Value::Str("2".into()), 3),
            (Value::Str(String::new()), 4),
            (val(ValueType::Num, "251"), 5), // numbers have no string form
        ];
        let probes = vec![
            Value::Str("251".into()),
            Value::Str("25".into()),
            Value::Str("10251".into()),
            Value::Str("zzz".into()),
            Value::Str(String::new()),
            val(ValueType::Num, "251"),
        ];
        assert_matches_naive(RelationKind::StartsWith, &consequents, &probes);
        assert_matches_naive(RelationKind::EndsWith, &consequents, &probes);
    }

    #[test]
    fn len_counts_indexed_occurrences() {
        let consequents = vec![
            (val(ValueType::Num, "10"), 0),
            (val(ValueType::Num, "10"), 1),
            (val(ValueType::Pfx4, "10.0.0.0/8"), 2),
        ];
        assert_eq!(
            WitnessIndex::build(RelationKind::Equals, &consequents).len(),
            3
        );
        // Only the network is indexable for `contains`.
        assert_eq!(
            WitnessIndex::build(RelationKind::Contains, &consequents).len(),
            1
        );
        // Numbers have no string form; nothing is affix-indexable.
        assert_eq!(
            WitnessIndex::build(RelationKind::StartsWith, &consequents).len(),
            0
        );
    }
}
