//! The compiled check engine.
//!
//! [`CheckProgram::compile`] turns a `ContractSet` + `Dataset` into an
//! executable program, once; [`CheckProgram::check_config`] then runs it
//! against each configuration. Compilation inverts the naive
//! contracts × lines loop:
//!
//! - **pattern dispatch**: type, range, and ordering checks are grouped
//!   by the dataset [`PatternId`] they apply to, so one pass over a
//!   configuration's lines visits, per line, only the contracts that can
//!   fire on it (the naive engine scans every line once *per type
//!   contract*);
//! - **indexed witnesses**: each relational contract's consequent node is
//!   compiled to a [`WitnessIndex`] spec — deduplicated across contracts
//!   sharing the node — and built lazily per configuration, turning every
//!   antecedent probe from O(consequents) into O(1)/O(log) with one fused
//!   query that answers checking ("any witness?") and coverage ("the sole
//!   witness?") in a single index walk;
//! - **single-pass uniques**: unique contracts are grouped by pattern id
//!   and evaluated in one pass over the dataset
//!   ([`CheckProgram::check_unique`]), instead of one full dataset
//!   re-scan per unique contract.
//!
//! Coverage ([`coverage::config_coverage`]) executes against the same
//! program and per-configuration context, so checking and coverage share
//! the transformed-value cache and the witness indexes.

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::rc::Rc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use concord_types::Transform;

use crate::contract::{Contract, ContractSet, RelationKind};
use crate::ir::{ConfigIr, Dataset, PatternId};
use crate::learn::indexes::TransformTag;
use crate::learn::sequence_is_sequential;

use super::coverage::{self, ConfigCoverage};
use super::witness::{WitnessIndex, WitnessProbe};
use super::{ConfigContext, Resolved, ResolvedContract, Violation};

/// A check dispatched per line by the line's pattern id.
#[derive(Debug, Clone, Copy)]
enum LineOp {
    /// A `Type` contract whose agnostic pattern set contains this id.
    Type { idx: usize },
    /// A `Range` contract on this pattern.
    Range { idx: usize },
    /// An `Ordering` contract whose `first` pattern is this id; the
    /// resolved `second` id rides along (`None` when `second` never
    /// occurs in the dataset — every instance then violates).
    Ordering {
        idx: usize,
        second: Option<PatternId>,
    },
}

/// One compiled relational contract: the antecedent probe node plus the
/// id of the (shared) witness index over its consequent node.
#[derive(Debug, Clone)]
struct CompiledRelational {
    /// Contract index in the checked set.
    idx: usize,
    /// Resolved antecedent pattern id.
    antecedent: Option<PatternId>,
    /// Index into [`CheckProgram::index_specs`].
    index_id: usize,
}

/// The consequent node + relation a [`WitnessIndex`] is built over.
/// Deduplicated: contracts sharing `(pattern, param, transform,
/// relation)` share one index per configuration.
#[derive(Debug, Clone)]
struct IndexSpec {
    relation: RelationKind,
    pattern: Option<PatternId>,
    param: u16,
    transform: Transform,
}

/// A contract set compiled against one dataset's pattern table.
///
/// Compile once, execute per configuration — the shape of the
/// deployment story where contracts are long-lived and every config
/// change is checked on commit.
pub struct CheckProgram<'c> {
    pub(crate) contracts: &'c ContractSet,
    pub(crate) resolved: Resolved,
    pub(crate) dataset: &'c Dataset,
    /// `Present` contracts: `(idx, resolved pattern id)`.
    pub(crate) present: Vec<(usize, Option<PatternId>)>,
    /// `PresentExact` contracts.
    pub(crate) present_exact: Vec<usize>,
    /// Per-pattern dispatched line checks (type / range / ordering).
    line_ops: HashMap<PatternId, Vec<LineOp>>,
    /// `Ordering` contracts (for coverage): `(idx, first, second)`.
    pub(crate) ordering: Vec<(usize, PatternId, Option<PatternId>)>,
    /// `Sequence` contracts: `(idx, resolved pattern id)`.
    pub(crate) sequence: Vec<(usize, Option<PatternId>)>,
    /// Resolved `Unique` contracts: `(idx, pattern id)`.
    pub(crate) unique: Vec<(usize, PatternId)>,
    /// Unique contract indices grouped by pattern id (single-pass check).
    unique_ops: HashMap<PatternId, Vec<usize>>,
    /// Compiled relational contracts.
    relational: Vec<CompiledRelational>,
    /// Deduplicated witness-index specs.
    index_specs: Vec<IndexSpec>,
    /// Wall-clock time spent compiling.
    pub compile_time: Duration,
}

/// Per-configuration execution state: the shared [`ConfigContext`]
/// (occurrence maps + transformed-value cache) plus lazily built witness
/// indexes and probe counters. Checking builds it; coverage reuses it.
pub(crate) struct ProgramContext<'a> {
    /// Occurrence maps and the transformed-value cache.
    pub ctx: ConfigContext<'a>,
    config: &'a ConfigIr,
    /// Lazily built witness indexes, one slot per [`IndexSpec`].
    witness: RefCell<Vec<Option<Rc<WitnessIndex>>>>,
    /// Sole-witness lines recorded by the check pass's fused probes:
    /// `(contract index, consequent line index)`. Coverage consumes this
    /// instead of re-probing every antecedent.
    relational_cover: RefCell<Vec<(usize, u32)>>,
    /// Stats counters (witness probes and index sizes).
    pub counters: ExecCounters,
}

/// Per-configuration execution counters, aggregated into
/// [`CheckStats`](crate::CheckStats).
#[derive(Debug, Default)]
pub(crate) struct ExecCounters {
    /// Witness indexes actually built (lazy: unprobed specs cost nothing).
    pub indexes_built: Cell<u64>,
    /// Total consequent occurrences indexed.
    pub index_entries: Cell<u64>,
    /// Antecedent probes issued.
    pub probes: Cell<u64>,
    /// Probes that found a witness (non-violations).
    pub probe_hits: Cell<u64>,
}

impl ExecCounters {
    /// The plain (cacheable) snapshot of these counters.
    fn snapshot(&self) -> CheckCounters {
        CheckCounters {
            indexes_built: self.indexes_built.get(),
            index_entries: self.index_entries.get(),
            probes: self.probes.get(),
            probe_hits: self.probe_hits.get(),
        }
    }
}

/// Execution counters of one configuration's check run, in plain
/// cloneable form. Deterministic for a given configuration and compiled
/// program, so the incremental engine caches them alongside violations
/// and coverage and replays them into aggregate [`CheckStats`] without
/// re-running the configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckCounters {
    /// Witness indexes built for this configuration.
    pub indexes_built: u64,
    /// Total consequent occurrences indexed.
    pub index_entries: u64,
    /// Relational antecedent probes issued.
    pub probes: u64,
    /// Probes that found a witness (non-violations).
    pub probe_hits: u64,
}

impl CheckCounters {
    /// Accumulates `other` into `self`.
    pub fn accumulate(&mut self, other: &CheckCounters) {
        self.indexes_built += other.indexes_built;
        self.index_entries += other.index_entries;
        self.probes += other.probes;
        self.probe_hits += other.probe_hits;
    }
}

/// Everything one configuration contributes to a check run, minus the
/// global unique pass (see [`CheckProgram::unique_table`]): the unit of
/// work `check_parallel` fans out — and the unit of caching for the
/// incremental engine, which recomputes outcomes only for edited
/// configurations.
#[derive(Debug, Clone)]
pub struct ConfigOutcome {
    /// Violations found in this configuration, in emission order.
    pub violations: Vec<Violation>,
    /// The configuration's coverage.
    pub coverage: ConfigCoverage,
    /// Execution counters (witness indexes / probes).
    pub counters: CheckCounters,
    /// Per-phase wall-clock times (not cacheable — timing only).
    pub(crate) phases: PhaseTimes,
}

/// Wall-clock time per check phase for one configuration.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct PhaseTimes {
    pub present: Duration,
    pub pattern: Duration,
    pub sequence: Duration,
    pub relational: Duration,
    pub coverage: Duration,
}

impl<'a> ProgramContext<'a> {
    pub(crate) fn new(program: &CheckProgram<'a>, config: &'a ConfigIr) -> Self {
        ProgramContext {
            ctx: ConfigContext::new(config, program.dataset, &program.resolved),
            config,
            witness: RefCell::new(vec![None; program.index_specs.len()]),
            relational_cover: RefCell::new(Vec::new()),
            counters: ExecCounters::default(),
        }
    }

    /// The `(contract index, consequent line)` pairs where the check
    /// pass found exactly one witness covering a distinct line.
    pub(crate) fn take_relational_cover(&self) -> Vec<(usize, u32)> {
        std::mem::take(&mut self.relational_cover.borrow_mut())
    }

    /// Returns the witness index for spec `id`, building it on first use
    /// from the context's (memoized) transformed-value collection.
    pub(crate) fn witness_index(&self, program: &CheckProgram<'_>, id: usize) -> Rc<WitnessIndex> {
        if let Some(built) = &self.witness.borrow()[id] {
            return built.clone();
        }
        let spec = &program.index_specs[id];
        let values = self
            .ctx
            .values_of(self.config, spec.pattern, spec.param, &spec.transform);
        let index = Rc::new(WitnessIndex::build(spec.relation, &values));
        self.counters
            .indexes_built
            .set(self.counters.indexes_built.get() + 1);
        self.counters
            .index_entries
            .set(self.counters.index_entries.get() + index.len() as u64);
        self.witness.borrow_mut()[id] = Some(index.clone());
        index
    }
}

impl<'c> CheckProgram<'c> {
    /// Compiles `contracts` against `dataset`'s pattern table.
    pub fn compile(contracts: &'c ContractSet, dataset: &'c Dataset) -> Self {
        let start = Instant::now();
        let resolved = super::resolve(contracts, dataset);

        let mut present = Vec::new();
        let mut present_exact = Vec::new();
        let mut line_ops: HashMap<PatternId, Vec<LineOp>> = HashMap::new();
        let mut ordering = Vec::new();
        let mut sequence = Vec::new();
        let mut unique = Vec::new();
        let mut unique_ops: HashMap<PatternId, Vec<usize>> = HashMap::new();
        let mut relational = Vec::new();
        let mut index_specs: Vec<IndexSpec> = Vec::new();
        let mut index_ids: HashMap<(Option<PatternId>, u16, TransformTag, RelationKind), usize> =
            HashMap::new();

        for (idx, (contract, rc)) in contracts
            .contracts
            .iter()
            .zip(&resolved.by_contract)
            .enumerate()
        {
            match (contract, rc) {
                (Contract::Present { .. }, ResolvedContract::Present(id)) => {
                    present.push((idx, *id));
                }
                (Contract::PresentExact { .. }, ResolvedContract::PresentExact) => {
                    present_exact.push(idx);
                }
                (Contract::Ordering { .. }, ResolvedContract::Ordering(f, s)) => {
                    if let Some(f) = f {
                        line_ops
                            .entry(*f)
                            .or_default()
                            .push(LineOp::Ordering { idx, second: *s });
                        ordering.push((idx, *f, *s));
                    }
                }
                (Contract::Type { .. }, ResolvedContract::Type(ids)) => {
                    for id in ids {
                        line_ops.entry(*id).or_default().push(LineOp::Type { idx });
                    }
                }
                (Contract::Sequence { .. }, ResolvedContract::Sequence(id)) => {
                    sequence.push((idx, *id));
                }
                (Contract::Unique { .. }, ResolvedContract::Unique(id)) => {
                    if let Some(id) = id {
                        unique.push((idx, *id));
                        unique_ops.entry(*id).or_default().push(idx);
                    }
                }
                (Contract::Range { .. }, ResolvedContract::Range(id)) => {
                    if let Some(id) = id {
                        line_ops.entry(*id).or_default().push(LineOp::Range { idx });
                    }
                }
                (Contract::Relational(r), ResolvedContract::Relational(a, c)) => {
                    let key = (
                        *c,
                        r.consequent.param,
                        TransformTag::from_transform(&r.consequent.transform),
                        r.relation,
                    );
                    let index_id = *index_ids.entry(key).or_insert_with(|| {
                        index_specs.push(IndexSpec {
                            relation: r.relation,
                            pattern: *c,
                            param: r.consequent.param,
                            transform: r.consequent.transform.clone(),
                        });
                        index_specs.len() - 1
                    });
                    relational.push(CompiledRelational {
                        idx,
                        antecedent: *a,
                        index_id,
                    });
                }
                _ => unreachable!("resolved variant mismatch"),
            }
        }

        // Per-pattern op lists are probed per line: keep each list in
        // contract order so violation emission order matches the naive
        // engine's (stable sort ties on identical keys).
        CheckProgram {
            contracts,
            resolved,
            dataset,
            present,
            present_exact,
            line_ops,
            ordering,
            sequence,
            unique,
            unique_ops,
            relational,
            index_specs,
            compile_time: start.elapsed(),
        }
    }

    /// Number of deduplicated witness-index specs (stats).
    pub fn witness_specs(&self) -> usize {
        self.index_specs.len()
    }

    /// Checks one configuration and computes its coverage against the
    /// same per-configuration context (shared value cache and witness
    /// indexes).
    pub fn check_config(&self, config: &ConfigIr) -> (Vec<Violation>, ConfigCoverage) {
        let pctx = ProgramContext::new(self, config);
        let (violations, _) = self.run_checks(config, &pctx);
        let coverage = coverage::config_coverage(self, config, &pctx);
        (violations, coverage)
    }

    /// Full per-configuration execution returning the configuration's
    /// [`ConfigOutcome`]: violations, coverage, and counters (the
    /// `check_parallel` work item, and the incremental engine's cached
    /// unit).
    ///
    /// The outcome depends only on the configuration's lines and this
    /// program's contract resolution
    /// ([`CheckProgram::resolution_fingerprint`]) — not on any other
    /// configuration — which is what makes per-configuration caching
    /// sound.
    pub fn run_config(&self, config: &ConfigIr) -> ConfigOutcome {
        let pctx = ProgramContext::new(self, config);
        let (violations, mut phases) = self.run_checks(config, &pctx);
        let t = Instant::now();
        let coverage = coverage::config_coverage(self, config, &pctx);
        phases.coverage = t.elapsed();
        ConfigOutcome {
            violations,
            coverage,
            counters: pctx.counters.snapshot(),
            phases,
        }
    }

    /// A stable fingerprint of this program's contract resolution: how
    /// every contract pattern resolved against the dataset's interner
    /// (including type-agnostic pattern sets).
    ///
    /// Per-configuration outcomes ([`CheckProgram::run_config`]) and
    /// unique tables ([`CheckProgram::unique_table`]) are functions of
    /// `(configuration lines, resolution)` alone, so a cached result is
    /// valid exactly as long as this fingerprint is unchanged. Editing a
    /// dataset only grows the interner; the fingerprint moves only when a
    /// new pattern makes a previously unresolved contract resolve (or
    /// joins a type-agnostic set), at which point every cached outcome
    /// must be recomputed.
    pub fn resolution_fingerprint(&self) -> u64 {
        let mut h = crate::fxhash::FxHasher::default();
        for rc in &self.resolved.by_contract {
            match rc {
                super::ResolvedContract::Present(id) => {
                    0u8.hash(&mut h);
                    id.hash(&mut h);
                }
                super::ResolvedContract::PresentExact => 1u8.hash(&mut h),
                super::ResolvedContract::Ordering(a, b) => {
                    2u8.hash(&mut h);
                    a.hash(&mut h);
                    b.hash(&mut h);
                }
                super::ResolvedContract::Type(ids) => {
                    3u8.hash(&mut h);
                    let mut sorted: Vec<PatternId> = ids.iter().copied().collect();
                    sorted.sort_unstable();
                    sorted.hash(&mut h);
                }
                super::ResolvedContract::Sequence(id) => {
                    4u8.hash(&mut h);
                    id.hash(&mut h);
                }
                super::ResolvedContract::Unique(id) => {
                    5u8.hash(&mut h);
                    id.hash(&mut h);
                }
                super::ResolvedContract::Range(id) => {
                    6u8.hash(&mut h);
                    id.hash(&mut h);
                }
                super::ResolvedContract::Relational(a, c) => {
                    7u8.hash(&mut h);
                    a.hash(&mut h);
                    c.hash(&mut h);
                }
            }
        }
        h.finish()
    }

    /// Runs all per-configuration checks (everything except the global
    /// unique pass and coverage).
    fn run_checks(
        &self,
        config: &ConfigIr,
        pctx: &ProgramContext<'_>,
    ) -> (Vec<Violation>, PhaseTimes) {
        let mut out = Vec::new();
        let mut phases = PhaseTimes::default();
        let ctx = &pctx.ctx;
        let arenas = &self.dataset.arenas;
        let config_name = self.dataset.name_of(config);

        // Presence: O(1) per contract.
        let t = Instant::now();
        for &(idx, id) in &self.present {
            let present = id
                .map(|id| ctx.lines_by_pattern.contains_key(&id))
                .unwrap_or(false);
            if !present {
                let Contract::Present { pattern } = &self.contracts.contracts[idx] else {
                    unreachable!("present op on non-present contract")
                };
                out.push(Violation {
                    contract_index: idx,
                    category: self.contracts.contracts[idx].category().to_string(),
                    config: config_name.to_string(),
                    line_no: None,
                    line: pattern.clone(),
                    message: format!("missing required line matching {pattern}"),
                });
            }
        }
        for &idx in &self.present_exact {
            let Contract::PresentExact { line } = &self.contracts.contracts[idx] else {
                unreachable!("present-exact op on non-exact contract")
            };
            if !ctx.filled_lines.contains(line) {
                out.push(Violation {
                    contract_index: idx,
                    category: self.contracts.contracts[idx].category().to_string(),
                    config: config_name.to_string(),
                    line_no: None,
                    line: line.clone(),
                    message: format!("missing required exact line {line:?}"),
                });
            }
        }
        phases.present = t.elapsed();

        // Pattern-dispatched line checks: one pass over the pattern
        // column; a line is materialized only when an op fires on its id.
        let t = Instant::now();
        if !self.line_ops.is_empty() {
            for li in 0..config.len() {
                let Some(ops) = self.line_ops.get(&config.pattern(li)) else {
                    continue;
                };
                let line = config.line(arenas, li);
                for op in ops {
                    match *op {
                        LineOp::Type { idx } => {
                            let Contract::Type {
                                pattern,
                                hole,
                                valid,
                            } = &self.contracts.contracts[idx]
                            else {
                                unreachable!("type op on non-type contract")
                            };
                            let Some(param) = line.params.get(usize::from(*hole)) else {
                                continue;
                            };
                            if !valid.contains(&param.ty) {
                                out.push(Violation {
                                    contract_index: idx,
                                    category: self.contracts.contracts[idx].category().to_string(),
                                    config: config_name.to_string(),
                                    line_no: Some(line.line_no),
                                    line: line.original.to_string(),
                                    message: format!(
                                        "type [{}] is not allowed at hole {hole} of {pattern}",
                                        param.ty.name()
                                    ),
                                });
                            }
                        }
                        LineOp::Range { idx } => {
                            let Contract::Range {
                                pattern,
                                param,
                                min,
                                max,
                            } = &self.contracts.contracts[idx]
                            else {
                                unreachable!("range op on non-range contract")
                            };
                            let Some(p) = line.params.get(usize::from(*param)) else {
                                continue;
                            };
                            let Some(n) = p.value.as_num() else { continue };
                            if n < min || n > max {
                                out.push(Violation {
                                    contract_index: idx,
                                    category: self.contracts.contracts[idx].category().to_string(),
                                    config: config_name.to_string(),
                                    line_no: Some(line.line_no),
                                    line: line.original.to_string(),
                                    message: format!(
                                        "value {n} of param {param} of {pattern} is outside [{min}, {max}]"
                                    ),
                                });
                            }
                        }
                        LineOp::Ordering { idx, second } => {
                            let Contract::Ordering {
                                first,
                                second: second_text,
                            } = &self.contracts.contracts[idx]
                            else {
                                unreachable!("ordering op on non-ordering contract")
                            };
                            let ok = match second {
                                Some(s) if li + 1 < config.len() => {
                                    config.pattern(li + 1) == s
                                        && config.is_meta(li + 1) == line.is_meta
                                }
                                _ => false,
                            };
                            if !ok {
                                out.push(Violation {
                                    contract_index: idx,
                                    category: self.contracts.contracts[idx].category().to_string(),
                                    config: config_name.to_string(),
                                    line_no: Some(line.line_no),
                                    line: line.original.to_string(),
                                    message: format!(
                                        "line matching {first} must be immediately followed by a line matching {second_text}"
                                    ),
                                });
                            }
                        }
                    }
                }
            }
        }
        phases.pattern = t.elapsed();

        // Sequences: per contract, over the node's memoized values.
        let t = Instant::now();
        for &(idx, id) in &self.sequence {
            let Contract::Sequence { pattern, param } = &self.contracts.contracts[idx] else {
                unreachable!("sequence op on non-sequence contract")
            };
            let values = ctx.values_of(config, id, *param, &Transform::Id);
            let nums: Vec<&concord_types::BigNum> =
                values.iter().filter_map(|(v, _)| v.as_num()).collect();
            if nums.len() >= 2 && !sequence_is_sequential(&nums) {
                let step = nums[1].abs_diff(nums[0]);
                let break_at = nums
                    .windows(2)
                    .position(|w| w[1] <= w[0] || w[1].abs_diff(w[0]) != step)
                    .map(|i| i + 1)
                    .unwrap_or(1);
                let li = values[break_at].1;
                let line = config.line(arenas, li);
                out.push(Violation {
                    contract_index: idx,
                    category: self.contracts.contracts[idx].category().to_string(),
                    config: config_name.to_string(),
                    line_no: Some(line.line_no),
                    line: line.original.to_string(),
                    message: format!("values of param {param} of {pattern} are not equidistant"),
                });
            }
        }
        phases.sequence = t.elapsed();

        // Relational: indexed antecedent probes. Each fused probe also
        // resolves the coverage rule (a sole witness on a distinct line
        // covers that line), stashed for `config_coverage` to consume.
        let t = Instant::now();
        for compiled in &self.relational {
            let Contract::Relational(r) = &self.contracts.contracts[compiled.idx] else {
                unreachable!("relational op on non-relational contract")
            };
            let antecedents = ctx.values_of(
                config,
                compiled.antecedent,
                r.antecedent.param,
                &r.antecedent.transform,
            );
            if antecedents.is_empty() {
                continue;
            }
            let index = pctx.witness_index(self, compiled.index_id);
            let mut cover = pctx.relational_cover.borrow_mut();
            let mut probes = 0u64;
            let mut hits = 0u64;
            for (v1, li) in antecedents.iter() {
                probes += 1;
                match index.probe(v1) {
                    WitnessProbe::Zero => {
                        let line = config.line(arenas, *li);
                        out.push(Violation {
                            contract_index: compiled.idx,
                            category: self.contracts.contracts[compiled.idx]
                                .category()
                                .to_string(),
                            config: config_name.to_string(),
                            line_no: Some(line.line_no),
                            line: line.original.to_string(),
                            message: format!(
                                "no line matching {} satisfies {} for value {}",
                                r.consequent.pattern,
                                r.relation.name(),
                                v1.render(),
                            ),
                        });
                    }
                    WitnessProbe::One(w) => {
                        hits += 1;
                        if w as usize != *li {
                            cover.push((compiled.idx, w));
                        }
                    }
                    WitnessProbe::Many => hits += 1,
                }
            }
            pctx.counters
                .probes
                .set(pctx.counters.probes.get() + probes);
            pctx.counters
                .probe_hits
                .set(pctx.counters.probe_hits.get() + hits);
        }
        phases.relational = t.elapsed();

        (out, phases)
    }

    /// Whether any unique contract resolved against the dataset — i.e.
    /// whether the global unique pass has work to do.
    pub fn has_unique(&self) -> bool {
        !self.unique.is_empty()
    }

    /// Extracts one configuration's [`UniqueTable`]: every event the
    /// configuration contributes to the global unique pass, in line
    /// order. Like [`CheckProgram::run_config`], the table depends only
    /// on the configuration's lines and the contract resolution, so the
    /// incremental engine caches it per configuration and re-extracts it
    /// only after an edit.
    pub fn unique_table(&self, config: &ConfigIr) -> UniqueTable {
        let mut events = Vec::new();
        if self.unique.is_empty() {
            return UniqueTable { events };
        }
        for li in 0..config.len() {
            let Some(ops) = self.unique_ops.get(&config.pattern(li)) else {
                continue;
            };
            let line = config.line(&self.dataset.arenas, li);
            for &idx in ops {
                let Contract::Unique { param, .. } = &self.contracts.contracts[idx] else {
                    unreachable!("unique op on non-unique contract")
                };
                let rendered = line
                    .params
                    .get(usize::from(*param))
                    .map(|p| p.value.render());
                events.push(UniqueEvent {
                    contract: idx,
                    line_no: line.line_no,
                    line: Arc::from(line.original),
                    rendered,
                });
            }
        }
        UniqueTable { events }
    }

    /// Replays per-configuration [`UniqueTable`]s in dataset order,
    /// reproducing the global unique pass byte for byte: reuse violations
    /// surface in line order against cross-configuration first-seen
    /// state, and `once_per_config` "found none" violations follow each
    /// configuration in compiled contract order.
    pub fn check_unique_tables(&self, tables: &[(&str, &UniqueTable)]) -> Vec<Violation> {
        let indices: Vec<usize> = self.unique.iter().map(|&(idx, _)| idx).collect();
        replay_unique_tables(self.contracts, &indices, tables)
    }

    /// Contract indices of the unique contracts that resolved against
    /// this program's dataset, in compiled (contract-set) order. A fleet
    /// of shards unions these per-shard lists to recover the global
    /// resolution before replaying tables with
    /// [`replay_unique_tables`].
    pub fn unique_indices(&self) -> Vec<usize> {
        self.unique.iter().map(|&(idx, _)| idx).collect()
    }

    /// Checks all unique contracts in a single pass over the dataset —
    /// expressed as "extract every configuration's table, replay them in
    /// dataset order", so the batch path and the incremental engine share
    /// one implementation.
    pub(crate) fn check_unique(&self, dataset: &Dataset) -> Vec<Violation> {
        if self.unique.is_empty() {
            return Vec::new();
        }
        let tables: Vec<UniqueTable> = dataset
            .configs
            .iter()
            .map(|c| self.unique_table(c))
            .collect();
        let refs: Vec<(&str, &UniqueTable)> = dataset
            .configs
            .iter()
            .zip(&tables)
            .map(|(c, t)| (dataset.name_of(c), t))
            .collect();
        self.check_unique_tables(&refs)
    }
}

/// Replays per-configuration [`UniqueTable`]s in dataset order against
/// an explicit contract set and list of resolved unique-contract
/// indices, reproducing the global unique pass byte for byte. This is
/// the program-independent core of
/// [`CheckProgram::check_unique_tables`]: a sharded fleet extracts
/// tables with per-shard programs, unions the shards' resolved indices
/// (each stays in compiled order, so a sorted merge preserves it), and
/// replays here to recover exactly the single-engine unique pass.
pub fn replay_unique_tables(
    contracts: &ContractSet,
    unique_indices: &[usize],
    tables: &[(&str, &UniqueTable)],
) -> Vec<Violation> {
    if unique_indices.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    // Per-contract cross-config seen sets, keyed by contract index.
    let mut seen: HashMap<usize, HashSet<String>> = HashMap::new();
    let mut counts: HashMap<usize, u32> = HashMap::new();
    for &(name, table) in tables {
        counts.clear();
        for event in &table.events {
            let idx = event.contract;
            let Contract::Unique { pattern, param, .. } = &contracts.contracts[idx] else {
                unreachable!("unique event on non-unique contract")
            };
            *counts.entry(idx).or_insert(0) += 1;
            let Some(rendered) = &event.rendered else {
                continue;
            };
            let seen_set = seen.entry(idx).or_default();
            if seen_set.contains(rendered) {
                out.push(Violation {
                    contract_index: idx,
                    category: contracts.contracts[idx].category().to_string(),
                    config: name.to_string(),
                    line_no: Some(event.line_no),
                    line: event.line.to_string(),
                    message: format!("value {rendered} of param {param} of {pattern} is reused"),
                });
            } else {
                seen_set.insert(rendered.clone());
            }
        }
        for &idx in unique_indices {
            let Contract::Unique {
                pattern,
                once_per_config,
                ..
            } = &contracts.contracts[idx]
            else {
                unreachable!("unique op on non-unique contract")
            };
            if *once_per_config && counts.get(&idx).copied().unwrap_or(0) == 0 {
                out.push(Violation {
                    contract_index: idx,
                    category: contracts.contracts[idx].category().to_string(),
                    config: name.to_string(),
                    line_no: None,
                    line: pattern.clone(),
                    message: format!("expected exactly one line matching {pattern}, found none"),
                });
            }
        }
    }
    out
}

/// One configuration's contribution to the global unique pass: an event
/// per (unique contract, matching line), in line order. Extracted by
/// [`CheckProgram::unique_table`] and replayed by
/// [`CheckProgram::check_unique_tables`].
#[derive(Debug, Clone, Default)]
pub struct UniqueTable {
    events: Vec<UniqueEvent>,
}

impl UniqueTable {
    /// Number of events in this table.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether this configuration contributes nothing to the unique pass.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// One matching line of one unique contract.
#[derive(Debug, Clone)]
struct UniqueEvent {
    /// Contract index in the checked set.
    contract: usize,
    /// 1-based source line number.
    line_no: u32,
    /// The line's original text (shared with the dataset record).
    line: Arc<str>,
    /// The rendered parameter value; `None` when the line lacks the
    /// contract's parameter (counts toward presence, contributes no
    /// value).
    rendered: Option<String>,
}
