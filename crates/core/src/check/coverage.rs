//! Configuration coverage (§3.9).
//!
//! > A configuration line is covered if removing it would violate at least
//! > one contract.
//!
//! Rather than literally re-checking the configuration once per line,
//! coverage is computed analytically per contract category (each rule
//! below states exactly when removing a line flips a contract from
//! satisfied to violated):
//!
//! - **present**: a line is covered when it is the *only* line matching
//!   the required pattern (or exact text) in its configuration;
//! - **ordering**: a line matching `second`, preceded by a `first` line,
//!   is covered when the line after it does not also match `second`;
//! - **type**: never covers (removing a line cannot introduce a mistyped
//!   line — the paper calls this out explicitly);
//! - **sequence**: interior elements of an arithmetic progression of
//!   length ≥ 4 are covered (removing one tears a hole; endpoints shorten
//!   the progression without breaking it, and at length 3 the two
//!   survivors of an interior removal still form a valid progression);
//! - **unique**: covered only for `once_per_config` uniques, where removal
//!   leaves the configuration without its mandatory single instance;
//! - **relational**: a consequent line is covered when it is the *sole
//!   witness* of some antecedent instance (other than itself).

use std::collections::{BTreeMap, HashMap, HashSet};

use concord_types::Transform;

use crate::check::{find_witnesses, ConfigContext, Resolved, ResolvedContract};
use crate::contract::{Contract, ContractSet};
use crate::ir::ConfigIr;
use crate::learn::sequence_is_sequential;

/// Coverage of one configuration.
#[derive(Debug, Clone)]
pub struct ConfigCoverage {
    /// The configuration name.
    pub name: String,
    /// Number of (non-metadata) lines.
    pub total_lines: usize,
    /// Covered line indices (into the configuration's line list).
    pub covered: HashSet<usize>,
    /// Covered line indices per contract category.
    pub by_category: BTreeMap<String, HashSet<usize>>,
}

/// Coverage of a whole dataset.
#[derive(Debug, Clone)]
pub struct CoverageReport {
    /// Per-configuration coverage, in dataset order.
    pub per_config: Vec<ConfigCoverage>,
}

/// Aggregated coverage numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageSummary {
    /// Total lines across all configurations.
    pub total_lines: usize,
    /// Lines covered by at least one contract.
    pub covered_lines: usize,
    /// `covered_lines / total_lines` (0 when empty).
    pub fraction: f64,
    /// Fraction of all lines covered by each category individually.
    pub by_category: BTreeMap<String, f64>,
}

impl CoverageReport {
    /// Aggregates per-config coverage into dataset totals.
    pub fn summary(&self) -> CoverageSummary {
        let total: usize = self.per_config.iter().map(|c| c.total_lines).sum();
        let covered: usize = self.per_config.iter().map(|c| c.covered.len()).sum();
        let mut by_category: BTreeMap<String, usize> = BTreeMap::new();
        for config in &self.per_config {
            for (cat, lines) in &config.by_category {
                *by_category.entry(cat.clone()).or_insert(0) += lines.len();
            }
        }
        let frac = |n: usize| {
            if total == 0 {
                0.0
            } else {
                n as f64 / total as f64
            }
        };
        CoverageSummary {
            total_lines: total,
            covered_lines: covered,
            fraction: frac(covered),
            by_category: by_category.into_iter().map(|(k, v)| (k, frac(v))).collect(),
        }
    }
}

/// Computes coverage of one configuration under `contracts`.
pub(crate) fn config_coverage(
    contracts: &ContractSet,
    config: &ConfigIr,
    resolved: &Resolved,
    ctx: &ConfigContext,
) -> ConfigCoverage {
    let mut covered: HashSet<usize> = HashSet::new();
    let mut by_category: BTreeMap<String, HashSet<usize>> = BTreeMap::new();
    let mut cover = |cat: &str, li: usize, config: &ConfigIr, covered: &mut HashSet<usize>| {
        if config.lines[li].is_meta {
            return;
        }
        covered.insert(li);
        by_category.entry(cat.to_string()).or_default().insert(li);
    };

    // Exact-line groups are only needed for PresentExact contracts.
    let filled_groups: HashMap<&str, Vec<usize>> = if resolved.need_filled_lines {
        let mut map: HashMap<&str, Vec<usize>> = HashMap::new();
        for (li, filled) in ctx.filled_by_line.iter().enumerate() {
            map.entry(filled.as_str()).or_default().push(li);
        }
        map
    } else {
        HashMap::new()
    };

    for (idx, contract) in contracts.contracts.iter().enumerate() {
        let category = contract.category();
        match (contract, &resolved.by_contract[idx]) {
            (Contract::Present { .. }, ResolvedContract::Present(id)) => {
                let Some(id) = id else { continue };
                if let Some(idxs) = ctx.lines_by_pattern.get(id) {
                    if idxs.len() == 1 {
                        cover(category, idxs[0], config, &mut covered);
                    }
                }
            }
            (Contract::PresentExact { line }, ResolvedContract::PresentExact) => {
                if let Some(idxs) = filled_groups.get(line.as_str()) {
                    if idxs.len() == 1 {
                        cover(category, idxs[0], config, &mut covered);
                    }
                }
            }
            (Contract::Ordering { .. }, ResolvedContract::Ordering(f, s)) => {
                let (Some(f), Some(s)) = (f, s) else { continue };
                for li in 0..config.lines.len() {
                    if config.lines[li].pattern != *s {
                        continue;
                    }
                    let prev_matches = li > 0
                        && config.lines[li - 1].pattern == *f
                        && config.lines[li - 1].is_meta == config.lines[li].is_meta;
                    if !prev_matches {
                        continue;
                    }
                    let next_also_matches = config
                        .lines
                        .get(li + 1)
                        .is_some_and(|n| n.pattern == *s && n.is_meta == config.lines[li].is_meta);
                    if !next_also_matches {
                        cover(category, li, config, &mut covered);
                    }
                }
            }
            (Contract::Type { .. }, ResolvedContract::Type(_))
            | (Contract::Range { .. }, ResolvedContract::Range(_)) => {
                // Type and range contracts flag existing lines; removal
                // cannot violate them, so they cover nothing (§3.9).
            }
            (Contract::Sequence { param, .. }, ResolvedContract::Sequence(id)) => {
                let values = ctx.values_of(config, *id, *param, &Transform::Id);
                let nums: Vec<&concord_types::BigNum> =
                    values.iter().filter_map(|(v, _)| v.as_num()).collect();
                if nums.len() >= 4 && sequence_is_sequential(&nums) {
                    for (v, li) in &values[1..values.len() - 1] {
                        let _ = v;
                        cover(category, *li, config, &mut covered);
                    }
                }
            }
            (
                Contract::Unique {
                    once_per_config, ..
                },
                ResolvedContract::Unique(id),
            ) => {
                if !once_per_config {
                    continue;
                }
                let Some(id) = id else { continue };
                if let Some(idxs) = ctx.lines_by_pattern.get(id) {
                    if idxs.len() == 1 {
                        cover(category, idxs[0], config, &mut covered);
                    }
                }
            }
            (Contract::Relational(r), ResolvedContract::Relational(a, c)) => {
                let antecedents =
                    ctx.values_of(config, *a, r.antecedent.param, &r.antecedent.transform);
                if antecedents.is_empty() {
                    continue;
                }
                let consequents =
                    ctx.values_of(config, *c, r.consequent.param, &r.consequent.transform);
                for (v1, li) in antecedents.iter() {
                    let wits = find_witnesses(r.relation, v1, &consequents);
                    if wits.len() == 1 && wits[0] != *li {
                        cover(category, wits[0], config, &mut covered);
                    }
                }
            }
            _ => unreachable!("resolved variant mismatch"),
        }
    }

    ConfigCoverage {
        name: config.name.clone(),
        total_lines: config.own_line_count(),
        covered,
        by_category,
    }
}
