//! Configuration coverage (§3.9).
//!
//! > A configuration line is covered if removing it would violate at least
//! > one contract.
//!
//! Rather than literally re-checking the configuration once per line,
//! coverage is computed analytically per contract category (each rule
//! below states exactly when removing a line flips a contract from
//! satisfied to violated):
//!
//! - **present**: a line is covered when it is the *only* line matching
//!   the required pattern (or exact text) in its configuration;
//! - **ordering**: a line matching `second`, preceded by a `first` line,
//!   is covered when the line after it does not also match `second`;
//! - **type**: never covers (removing a line cannot introduce a mistyped
//!   line — the paper calls this out explicitly);
//! - **sequence**: interior elements of an arithmetic progression of
//!   length ≥ 4 are covered (removing one tears a hole; endpoints shorten
//!   the progression without breaking it, and at length 3 the two
//!   survivors of an interior removal still form a valid progression);
//! - **unique**: covered only for `once_per_config` uniques, where removal
//!   leaves the configuration without its mandatory single instance;
//! - **relational**: a consequent line is covered when it is the *sole
//!   witness* of some antecedent instance (other than itself).

//!
//! Coverage executes against the compiled [`CheckProgram`]: it reuses the
//! per-configuration [`ProgramContext`] that checking built, so the
//! transformed-value cache is shared and the relational rule costs no
//! extra probes — the check pass's fused witness queries already stashed
//! every sole-witness line. The naive variant
//! ([`config_coverage_naive`]) is retained behind the `naive-check`
//! feature as the equivalence oracle.

use std::collections::{BTreeMap, HashMap, HashSet};

use concord_types::Transform;

use crate::check::program::{CheckProgram, ProgramContext};
#[cfg(any(test, feature = "naive-check"))]
use crate::check::{find_witnesses, ConfigContext, Resolved, ResolvedContract};
use crate::contract::Contract;
#[cfg(any(test, feature = "naive-check"))]
use crate::contract::ContractSet;
use crate::ir::ConfigIr;
#[cfg(any(test, feature = "naive-check"))]
use crate::ir::Dataset;
use crate::learn::sequence_is_sequential;

/// Coverage of one configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigCoverage {
    /// The configuration name.
    pub name: String,
    /// Number of (non-metadata) lines.
    pub total_lines: usize,
    /// Covered line indices (into the configuration's line list).
    pub covered: HashSet<usize>,
    /// Covered line indices per contract category.
    pub by_category: BTreeMap<String, HashSet<usize>>,
}

/// Coverage of a whole dataset.
#[derive(Debug, Clone)]
pub struct CoverageReport {
    /// Per-configuration coverage, in dataset order.
    pub per_config: Vec<ConfigCoverage>,
}

/// Aggregated coverage numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageSummary {
    /// Total lines across all configurations.
    pub total_lines: usize,
    /// Lines covered by at least one contract.
    pub covered_lines: usize,
    /// `covered_lines / total_lines` (0 when empty).
    pub fraction: f64,
    /// Fraction of all lines covered by each category individually.
    pub by_category: BTreeMap<String, f64>,
}

impl CoverageReport {
    /// Aggregates per-config coverage into dataset totals.
    pub fn summary(&self) -> CoverageSummary {
        let total: usize = self.per_config.iter().map(|c| c.total_lines).sum();
        let covered: usize = self.per_config.iter().map(|c| c.covered.len()).sum();
        let mut by_category: BTreeMap<String, usize> = BTreeMap::new();
        for config in &self.per_config {
            for (cat, lines) in &config.by_category {
                *by_category.entry(cat.clone()).or_insert(0) += lines.len();
            }
        }
        let frac = |n: usize| {
            if total == 0 {
                0.0
            } else {
                n as f64 / total as f64
            }
        };
        CoverageSummary {
            total_lines: total,
            covered_lines: covered,
            fraction: frac(covered),
            by_category: by_category.into_iter().map(|(k, v)| (k, frac(v))).collect(),
        }
    }
}

/// Computes coverage of one configuration against the compiled program,
/// reusing the per-configuration context (value cache + witness indexes)
/// the check pass built.
pub(crate) fn config_coverage(
    program: &CheckProgram<'_>,
    config: &ConfigIr,
    pctx: &ProgramContext<'_>,
) -> ConfigCoverage {
    let contracts = &program.contracts.contracts;
    let ctx = &pctx.ctx;
    // Accumulate in bitsets: a covered line is reported many times (every
    // relational sole witness, every contract sharing it), and hashing
    // each duplicate dwarfs the probes themselves. The public
    // `HashSet`/`BTreeMap` shape is materialized once at the end, paying
    // one insert per *unique* covered line instead of one per report.
    let mut bits = CoverBits::new(config.len());
    let cover = |cat: &'static str, li: usize, config: &ConfigIr, bits: &mut CoverBits| {
        if config.is_meta(li) {
            return;
        }
        bits.set(cat, li);
    };

    // Exact-line groups are only needed for PresentExact contracts.
    let filled_groups: HashMap<&str, Vec<usize>> = if program.resolved.need_filled_lines {
        let mut map: HashMap<&str, Vec<usize>> = HashMap::new();
        for (li, filled) in ctx.filled_by_line.iter().enumerate() {
            map.entry(filled.as_str()).or_default().push(li);
        }
        map
    } else {
        HashMap::new()
    };

    // Present: the only line matching the pattern is covered.
    for &(idx, id) in &program.present {
        let Some(id) = id else { continue };
        if let Some(idxs) = ctx.lines_by_pattern.get(&id) {
            if idxs.len() == 1 {
                cover(contracts[idx].category(), idxs[0], config, &mut bits);
            }
        }
    }
    for &idx in &program.present_exact {
        let Contract::PresentExact { line } = &contracts[idx] else {
            unreachable!("present-exact op on non-exact contract")
        };
        if let Some(idxs) = filled_groups.get(line.as_str()) {
            if idxs.len() == 1 {
                cover(contracts[idx].category(), idxs[0], config, &mut bits);
            }
        }
    }

    // Ordering: a `second` line preceded by `first` and not followed by
    // another `second` is the sole adjacency witness. Dispatched on the
    // second pattern's occurrence list instead of scanning every line.
    for &(idx, f, s) in &program.ordering {
        let Some(s) = s else { continue };
        let Some(seconds) = ctx.lines_by_pattern.get(&s) else {
            continue;
        };
        for &li in seconds {
            let prev_matches = li > 0
                && config.pattern(li - 1) == f
                && config.is_meta(li - 1) == config.is_meta(li);
            if !prev_matches {
                continue;
            }
            let next_also_matches = li + 1 < config.len()
                && config.pattern(li + 1) == s
                && config.is_meta(li + 1) == config.is_meta(li);
            if !next_also_matches {
                cover(contracts[idx].category(), li, config, &mut bits);
            }
        }
    }

    // Type and range contracts flag existing lines; removal cannot
    // violate them, so they cover nothing (§3.9).

    // Sequence: interior elements of a valid progression of length ≥ 4.
    for &(idx, id) in &program.sequence {
        let Contract::Sequence { param, .. } = &contracts[idx] else {
            unreachable!("sequence op on non-sequence contract")
        };
        let values = ctx.values_of(config, id, *param, &Transform::Id);
        let nums: Vec<&concord_types::BigNum> =
            values.iter().filter_map(|(v, _)| v.as_num()).collect();
        if nums.len() >= 4 && sequence_is_sequential(&nums) {
            for (_, li) in &values[1..values.len() - 1] {
                cover(contracts[idx].category(), *li, config, &mut bits);
            }
        }
    }

    // Unique: only `once_per_config` uniques cover their single instance.
    for &(idx, id) in &program.unique {
        let Contract::Unique {
            once_per_config, ..
        } = &contracts[idx]
        else {
            unreachable!("unique op on non-unique contract")
        };
        if !once_per_config {
            continue;
        }
        if let Some(idxs) = ctx.lines_by_pattern.get(&id) {
            if idxs.len() == 1 {
                cover(contracts[idx].category(), idxs[0], config, &mut bits);
            }
        }
    }

    // Relational: a consequent line that is the sole witness of some
    // antecedent instance (other than itself) is covered. The check
    // pass's fused probes already identified these lines — consume the
    // stash instead of re-probing every antecedent.
    for (idx, w) in pctx.take_relational_cover() {
        cover(contracts[idx].category(), w as usize, config, &mut bits);
    }

    let (covered, by_category) = bits.materialize();
    ConfigCoverage {
        name: program.dataset.name_of(config).to_string(),
        total_lines: config.own_line_count(),
        covered,
        by_category,
    }
}

/// Per-line coverage bitsets: one overall, one per category seen. The
/// category list stays tiny (one entry per contract category, ≤ 7), so a
/// linear scan on an interned `&'static str` beats hashing.
struct CoverBits {
    lines: usize,
    all: Vec<bool>,
    per_category: Vec<(&'static str, Vec<bool>)>,
}

impl CoverBits {
    fn new(lines: usize) -> Self {
        CoverBits {
            lines,
            all: vec![false; lines],
            per_category: Vec::new(),
        }
    }

    fn set(&mut self, cat: &'static str, li: usize) {
        self.all[li] = true;
        match self.per_category.iter_mut().find(|(c, _)| *c == cat) {
            Some((_, bits)) => bits[li] = true,
            None => {
                let mut bits = vec![false; self.lines];
                bits[li] = true;
                self.per_category.push((cat, bits));
            }
        }
    }

    fn materialize(self) -> (HashSet<usize>, BTreeMap<String, HashSet<usize>>) {
        let covered = self
            .all
            .iter()
            .enumerate()
            .filter_map(|(li, &c)| c.then_some(li))
            .collect();
        let by_category = self
            .per_category
            .into_iter()
            .map(|(cat, bits)| {
                let lines = bits
                    .iter()
                    .enumerate()
                    .filter_map(|(li, &c)| c.then_some(li))
                    .collect();
                (cat.to_string(), lines)
            })
            .collect();
        (covered, by_category)
    }
}

/// Computes coverage of one configuration under `contracts` with the
/// naive per-contract scans (the equivalence oracle for
/// [`config_coverage`]).
#[cfg(any(test, feature = "naive-check"))]
pub(crate) fn config_coverage_naive(
    contracts: &ContractSet,
    dataset: &Dataset,
    config: &ConfigIr,
    resolved: &Resolved,
    ctx: &ConfigContext<'_>,
) -> ConfigCoverage {
    let mut covered: HashSet<usize> = HashSet::new();
    let mut by_category: BTreeMap<String, HashSet<usize>> = BTreeMap::new();
    let mut cover = |cat: &str, li: usize, config: &ConfigIr, covered: &mut HashSet<usize>| {
        if config.is_meta(li) {
            return;
        }
        covered.insert(li);
        // Hot path: look up by `&str` first so the per-line call does not
        // allocate a key (categories repeat across thousands of lines).
        match by_category.get_mut(cat) {
            Some(lines) => {
                lines.insert(li);
            }
            None => {
                by_category.entry(cat.to_string()).or_default().insert(li);
            }
        }
    };

    // Exact-line groups are only needed for PresentExact contracts.
    let filled_groups: HashMap<&str, Vec<usize>> = if resolved.need_filled_lines {
        let mut map: HashMap<&str, Vec<usize>> = HashMap::new();
        for (li, filled) in ctx.filled_by_line.iter().enumerate() {
            map.entry(filled.as_str()).or_default().push(li);
        }
        map
    } else {
        HashMap::new()
    };

    for (idx, contract) in contracts.contracts.iter().enumerate() {
        let category = contract.category();
        match (contract, &resolved.by_contract[idx]) {
            (Contract::Present { .. }, ResolvedContract::Present(id)) => {
                let Some(id) = id else { continue };
                if let Some(idxs) = ctx.lines_by_pattern.get(id) {
                    if idxs.len() == 1 {
                        cover(category, idxs[0], config, &mut covered);
                    }
                }
            }
            (Contract::PresentExact { line }, ResolvedContract::PresentExact) => {
                if let Some(idxs) = filled_groups.get(line.as_str()) {
                    if idxs.len() == 1 {
                        cover(category, idxs[0], config, &mut covered);
                    }
                }
            }
            (Contract::Ordering { .. }, ResolvedContract::Ordering(f, s)) => {
                let (Some(f), Some(s)) = (f, s) else { continue };
                for li in 0..config.len() {
                    if config.pattern(li) != *s {
                        continue;
                    }
                    let prev_matches = li > 0
                        && config.pattern(li - 1) == *f
                        && config.is_meta(li - 1) == config.is_meta(li);
                    if !prev_matches {
                        continue;
                    }
                    let next_also_matches = li + 1 < config.len()
                        && config.pattern(li + 1) == *s
                        && config.is_meta(li + 1) == config.is_meta(li);
                    if !next_also_matches {
                        cover(category, li, config, &mut covered);
                    }
                }
            }
            (Contract::Type { .. }, ResolvedContract::Type(_))
            | (Contract::Range { .. }, ResolvedContract::Range(_)) => {
                // Type and range contracts flag existing lines; removal
                // cannot violate them, so they cover nothing (§3.9).
            }
            (Contract::Sequence { param, .. }, ResolvedContract::Sequence(id)) => {
                let values = ctx.values_of(config, *id, *param, &Transform::Id);
                let nums: Vec<&concord_types::BigNum> =
                    values.iter().filter_map(|(v, _)| v.as_num()).collect();
                if nums.len() >= 4 && sequence_is_sequential(&nums) {
                    for (v, li) in &values[1..values.len() - 1] {
                        let _ = v;
                        cover(category, *li, config, &mut covered);
                    }
                }
            }
            (
                Contract::Unique {
                    once_per_config, ..
                },
                ResolvedContract::Unique(id),
            ) => {
                if !once_per_config {
                    continue;
                }
                let Some(id) = id else { continue };
                if let Some(idxs) = ctx.lines_by_pattern.get(id) {
                    if idxs.len() == 1 {
                        cover(category, idxs[0], config, &mut covered);
                    }
                }
            }
            (Contract::Relational(r), ResolvedContract::Relational(a, c)) => {
                let antecedents =
                    ctx.values_of(config, *a, r.antecedent.param, &r.antecedent.transform);
                if antecedents.is_empty() {
                    continue;
                }
                let consequents =
                    ctx.values_of(config, *c, r.consequent.param, &r.consequent.transform);
                for (v1, li) in antecedents.iter() {
                    let wits = find_witnesses(r.relation, v1, &consequents);
                    if wits.len() == 1 && wits[0] != *li {
                        cover(category, wits[0], config, &mut covered);
                    }
                }
            }
            _ => unreachable!("resolved variant mismatch"),
        }
    }

    ConfigCoverage {
        name: dataset.name_of(config).to_string(),
        total_lines: config.own_line_count(),
        covered,
        by_category,
    }
}
