//! Contract checking (§3.8).
//!
//! [`check`] evaluates a [`ContractSet`] against a [`Dataset`] of test
//! configurations, reporting every violation with the configuration name,
//! line number, and offending values — the "actionable" property of
//! contracts. It also measures configuration coverage (§3.9) via
//! [`coverage`].
//!
//! Checking runs on the compiled engine ([`program::CheckProgram`]):
//! contracts are compiled once per (contract set, dataset) into
//! pattern-dispatched checks with indexed relational witnesses, then
//! executed per configuration. The original naive engine is retained
//! behind the `naive-check` feature (and in tests) as the equivalence
//! oracle and benchmark baseline — see `check_naive`.

pub mod coverage;
pub mod program;
mod witness;

pub use program::{replay_unique_tables, CheckCounters, CheckProgram, ConfigOutcome, UniqueTable};

use std::collections::{HashMap, HashSet};

use crate::fxhash::FxHashMap;
use std::time::Instant;

use concord_lexer::type_agnostic_pattern;
use concord_types::{Transform, Value};

use crate::contract::{Contract, ContractSet};
#[cfg(any(test, feature = "naive-check"))]
use crate::contract::{RelationKind, RelationalContract};
use crate::ir::{ConfigIr, Dataset, PatternId};
#[cfg(any(test, feature = "naive-check"))]
use crate::learn::sequence_is_sequential;
use crate::parallel;
use crate::stats::CheckStats;

/// One contract violation, localized to a configuration and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Index of the violated contract in the checked [`ContractSet`].
    pub contract_index: usize,
    /// The contract's category name.
    pub category: String,
    /// Name of the configuration the violation occurred in.
    pub config: String,
    /// 1-based line number, when the violation points at a line (missing
    /// lines have no number).
    pub line_no: Option<u32>,
    /// The offending line's text (or the missing pattern).
    pub line: String,
    /// Human-readable explanation.
    pub message: String,
}

impl concord_json::ToJson for Violation {
    fn to_json(&self) -> concord_json::Json {
        concord_json::Json::Object(vec![
            ("contract_index".to_string(), self.contract_index.to_json()),
            ("category".to_string(), self.category.to_json()),
            ("config".to_string(), self.config.to_json()),
            ("line_no".to_string(), self.line_no.to_json()),
            ("line".to_string(), self.line.to_json()),
            ("message".to_string(), self.message.to_json()),
        ])
    }
}

impl concord_json::FromJson for Violation {
    fn from_json(value: &concord_json::Json) -> Result<Self, concord_json::Error> {
        let field = |key: &str| {
            value
                .get(key)
                .ok_or_else(|| concord_json::Error::custom(format!("missing field {key:?}")))
        };
        Ok(Violation {
            contract_index: usize::from_json(field("contract_index")?)?,
            category: String::from_json(field("category")?)?,
            config: String::from_json(field("config")?)?,
            line_no: Option::<u32>::from_json(field("line_no")?)?,
            line: String::from_json(field("line")?)?,
            message: String::from_json(field("message")?)?,
        })
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.line_no {
            Some(n) => write!(
                f,
                "{}:{n}: {} [{}]",
                self.config, self.message, self.category
            ),
            None => write!(f, "{}: {} [{}]", self.config, self.message, self.category),
        }
    }
}

/// The result of checking contracts against a dataset.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// All violations found, ordered by (config, line, contract).
    pub violations: Vec<Violation>,
    /// Configuration coverage of the checked contracts (§3.9).
    pub coverage: coverage::CoverageReport,
}

impl CheckReport {
    /// Counts violations per contract category.
    pub fn violations_by_category(&self) -> std::collections::BTreeMap<String, usize> {
        let mut out = std::collections::BTreeMap::new();
        for v in &self.violations {
            *out.entry(v.category.clone()).or_insert(0) += 1;
        }
        out
    }

    /// Counts violations per configuration, in order of each
    /// configuration's first appearance in the violation list.
    pub fn violations_by_config(&self) -> Vec<(String, usize)> {
        let mut out: Vec<(String, usize)> = Vec::new();
        let mut slot: HashMap<&str, usize> = HashMap::new();
        for v in &self.violations {
            match slot.get(v.config.as_str()) {
                Some(&i) => out[i].1 += 1,
                None => {
                    slot.insert(&v.config, out.len());
                    out.push((v.config.clone(), 1));
                }
            }
        }
        out
    }
}

/// Checks `contracts` against every configuration of `dataset`.
pub fn check(contracts: &ContractSet, dataset: &Dataset) -> CheckReport {
    check_parallel(contracts, dataset, 1)
}

/// Checks with an explicit parallelism level (workers across configs).
pub fn check_parallel(
    contracts: &ContractSet,
    dataset: &Dataset,
    parallelism: usize,
) -> CheckReport {
    check_parallel_with_stats(contracts, dataset, parallelism).0
}

/// Checks with an explicit parallelism level, also reporting
/// [`CheckStats`]: compile time, witness index/probe counters, and
/// per-phase wall-clock times.
///
/// With `parallelism > 1` the per-phase times are summed across workers
/// (CPU time, not wall-clock); `check_time` is the end-to-end wall-clock.
pub fn check_parallel_with_stats(
    contracts: &ContractSet,
    dataset: &Dataset,
    parallelism: usize,
) -> (CheckReport, CheckStats) {
    let start = Instant::now();
    let program = CheckProgram::compile(contracts, dataset);

    let per_config = parallel::map(
        &dataset.configs,
        |config| program.run_config(config),
        parallelism,
    );

    let mut violations = Vec::new();
    let mut coverages = Vec::new();
    let mut phases = program::PhaseTimes::default();
    let mut counters = CheckCounters::default();
    for outcome in per_config {
        violations.extend(outcome.violations);
        coverages.push(outcome.coverage);
        counters.accumulate(&outcome.counters);
        phases.present += outcome.phases.present;
        phases.pattern += outcome.phases.pattern;
        phases.sequence += outcome.phases.sequence;
        phases.relational += outcome.phases.relational;
        phases.coverage += outcome.phases.coverage;
    }

    // Unique contracts are global: one pass across all configs at once.
    let unique_start = Instant::now();
    violations.extend(program.check_unique(dataset));
    let unique_time = unique_start.elapsed();

    violations.sort_by(|a, b| {
        (&a.config, a.line_no, a.contract_index).cmp(&(&b.config, b.line_no, b.contract_index))
    });

    let stats = CheckStats {
        contracts: contracts.len(),
        violations: violations.len(),
        parallelism: parallelism.max(1),
        check_time: start.elapsed(),
        compile_time: program.compile_time,
        witness_indexes: counters.indexes_built,
        witness_entries: counters.index_entries,
        witness_probes: counters.probes,
        witness_probe_hits: counters.probe_hits,
        category_times: vec![
            ("present".to_string(), phases.present),
            ("pattern".to_string(), phases.pattern),
            ("sequence".to_string(), phases.sequence),
            ("relational".to_string(), phases.relational),
            ("unique".to_string(), unique_time),
            ("coverage".to_string(), phases.coverage),
        ],
    };

    (
        CheckReport {
            violations,
            coverage: coverage::CoverageReport {
                per_config: coverages,
            },
        },
        stats,
    )
}

/// The naive reference checker: every contract scans for its pattern and
/// every relational probe scans all consequents. Retained as the
/// equivalence oracle for the compiled engine and as the benchmark
/// baseline (`check_scaling`); output is byte-identical to
/// [`check_parallel`] by construction (and pinned by the golden test).
#[cfg(any(test, feature = "naive-check"))]
pub fn check_naive(contracts: &ContractSet, dataset: &Dataset) -> CheckReport {
    check_naive_parallel(contracts, dataset, 1)
}

/// Naive checking with an explicit parallelism level.
#[cfg(any(test, feature = "naive-check"))]
pub fn check_naive_parallel(
    contracts: &ContractSet,
    dataset: &Dataset,
    parallelism: usize,
) -> CheckReport {
    let resolved = resolve(contracts, dataset);

    let per_config: Vec<(Vec<Violation>, coverage::ConfigCoverage)> = parallel::map(
        &dataset.configs,
        |config| {
            let ctx = ConfigContext::new(config, dataset, &resolved);
            let violations = check_config(contracts, dataset, config, &resolved, &ctx);
            let cov = coverage::config_coverage_naive(contracts, dataset, config, &resolved, &ctx);
            (violations, cov)
        },
        parallelism,
    );

    let mut violations = Vec::new();
    let mut coverages = Vec::new();
    for (v, c) in per_config {
        violations.extend(v);
        coverages.push(c);
    }

    // Unique contracts are global: check across all configs at once.
    violations.extend(check_unique_global(contracts, dataset, &resolved));

    violations.sort_by(|a, b| {
        (&a.config, a.line_no, a.contract_index).cmp(&(&b.config, b.line_no, b.contract_index))
    });

    CheckReport {
        violations,
        coverage: coverage::CoverageReport {
            per_config: coverages,
        },
    }
}

/// Contract pattern texts resolved against the test dataset's interner.
pub(crate) struct Resolved {
    /// For each contract, its patterns resolved to the dataset's ids
    /// (`None` when the pattern never occurs in the dataset).
    pub by_contract: Vec<ResolvedContract>,
    /// Whether any `PresentExact` contract exists (enables filled-line
    /// sets).
    pub need_filled_lines: bool,
}

pub(crate) enum ResolvedContract {
    Present(Option<PatternId>),
    PresentExact,
    Ordering(Option<PatternId>, Option<PatternId>),
    /// All dataset pattern ids whose type-agnostic form equals the
    /// contract's pattern.
    Type(HashSet<PatternId>),
    Sequence(Option<PatternId>),
    Unique(Option<PatternId>),
    Range(Option<PatternId>),
    Relational(Option<PatternId>, Option<PatternId>),
}

fn resolve(contracts: &ContractSet, dataset: &Dataset) -> Resolved {
    let mut need_filled_lines = false;
    // The agnostic rewrite is pattern-count work; compute it once only if
    // any type contract exists.
    let agnostic_index: HashMap<String, HashSet<PatternId>> = if contracts
        .contracts
        .iter()
        .any(|c| matches!(c, Contract::Type { .. }))
    {
        let mut map: HashMap<String, HashSet<PatternId>> = HashMap::new();
        for (id, text) in dataset.table.iter() {
            map.entry(type_agnostic_pattern(text))
                .or_default()
                .insert(id);
        }
        map
    } else {
        HashMap::new()
    };
    let by_contract = contracts
        .contracts
        .iter()
        .map(|c| match c {
            Contract::Present { pattern } => ResolvedContract::Present(dataset.table.get(pattern)),
            Contract::PresentExact { .. } => {
                need_filled_lines = true;
                ResolvedContract::PresentExact
            }
            Contract::Ordering { first, second } => {
                ResolvedContract::Ordering(dataset.table.get(first), dataset.table.get(second))
            }
            Contract::Type { pattern, .. } => {
                ResolvedContract::Type(agnostic_index.get(pattern).cloned().unwrap_or_default())
            }
            Contract::Sequence { pattern, .. } => {
                ResolvedContract::Sequence(dataset.table.get(pattern))
            }
            Contract::Unique { pattern, .. } => {
                ResolvedContract::Unique(dataset.table.get(pattern))
            }
            Contract::Range { pattern, .. } => ResolvedContract::Range(dataset.table.get(pattern)),
            Contract::Relational(r) => ResolvedContract::Relational(
                dataset.table.get(&r.antecedent.pattern),
                dataset.table.get(&r.consequent.pattern),
            ),
        })
        .collect();
    Resolved {
        by_contract,
        need_filled_lines,
    }
}

/// Per-configuration evaluation context: occurrence maps and cached
/// transformed-value collections. Borrows the dataset's arenas so line
/// parameters can be resolved from SoA ids on demand.
pub(crate) struct ConfigContext<'d> {
    /// The dataset's shared arenas (param/text resolution).
    arenas: &'d crate::ir::Arenas,
    /// Pattern id → line indices.
    pub lines_by_pattern: FxHashMap<PatternId, Vec<usize>>,
    /// Per-line filled exact text (empty unless `PresentExact` contracts
    /// exist).
    pub filled_by_line: Vec<String>,
    /// Filled exact line texts as a set (derived from `filled_by_line`).
    pub filled_lines: HashSet<String>,
    /// Memoized transformed-value collections: many contracts share the
    /// same `(pattern, param, transform)` node, and coverage re-reads
    /// what checking already computed.
    values_cache: std::cell::RefCell<FxHashMap<NodeCacheKey, SharedValues>>,
}

/// Cache key for transformed-value collections.
type NodeCacheKey = (PatternId, u16, crate::learn::indexes::TransformTag);

/// A shared, immutable collection of transformed values with their line
/// indices.
pub(crate) type SharedValues = std::rc::Rc<Vec<(Value, usize)>>;

impl<'d> ConfigContext<'d> {
    pub(crate) fn new(config: &ConfigIr, dataset: &'d Dataset, resolved: &Resolved) -> Self {
        let mut lines_by_pattern: FxHashMap<PatternId, Vec<usize>> = FxHashMap::default();
        for (i, &pattern) in config.patterns().iter().enumerate() {
            lines_by_pattern.entry(pattern).or_default().push(i);
        }
        let filled_by_line: Vec<String> = if resolved.need_filled_lines {
            config
                .lines(&dataset.arenas)
                .map(|l| crate::learn::fill_pattern(dataset.table.text(l.pattern), l.params))
                .collect()
        } else {
            Vec::new()
        };
        let filled_lines = filled_by_line.iter().cloned().collect();
        ConfigContext {
            arenas: &dataset.arenas,
            lines_by_pattern,
            filled_by_line,
            filled_lines,
            values_cache: std::cell::RefCell::new(FxHashMap::default()),
        }
    }

    /// Collects the transformed values of `(pattern, param)` with
    /// `transform`, paired with their line indices. Results are memoized
    /// per context.
    pub(crate) fn values_of(
        &self,
        config: &ConfigIr,
        pattern: Option<PatternId>,
        param: u16,
        transform: &Transform,
    ) -> SharedValues {
        let Some(pattern) = pattern else {
            return std::rc::Rc::new(Vec::new());
        };
        let key = (
            pattern,
            param,
            crate::learn::indexes::TransformTag::from_transform(transform),
        );
        if let Some(cached) = self.values_cache.borrow().get(&key) {
            return cached.clone();
        }
        let values: Vec<(Value, usize)> = self
            .lines_by_pattern
            .get(&pattern)
            .map(|idxs| {
                idxs.iter()
                    .filter_map(|&li| {
                        let params = self.arenas.params.slice(config.params_id(li));
                        let value = params.get(usize::from(param))?;
                        Some((transform.apply(&value.value)?, li))
                    })
                    .collect()
            })
            .unwrap_or_default();
        let rc = std::rc::Rc::new(values);
        self.values_cache.borrow_mut().insert(key, rc.clone());
        rc
    }
}

/// Evaluates one relational witness: does any consequent value relate to
/// `v1`? The naive O(consequents) scan — the compiled engine answers the
/// same question through a [`witness::WitnessIndex`].
#[cfg(any(test, feature = "naive-check"))]
pub(crate) fn find_witnesses(
    relation: RelationKind,
    v1: &Value,
    consequents: &[(Value, usize)],
) -> Vec<usize> {
    let mut out = Vec::new();
    for (v2, li) in consequents {
        let holds = match relation {
            RelationKind::Equals => v1 == v2,
            RelationKind::Contains => match (v1, v2) {
                (Value::Ip(a), Value::Net(n)) => n.contains(*a),
                (Value::Net(inner), Value::Net(outer)) => outer.contains_net(inner),
                _ => false,
            },
            RelationKind::StartsWith => match (v1.as_str(), v2.as_str()) {
                (Some(s1), Some(s2)) => s2.starts_with(s1),
                _ => false,
            },
            RelationKind::EndsWith => match (v1.as_str(), v2.as_str()) {
                (Some(s1), Some(s2)) => s2.ends_with(s1),
                _ => false,
            },
        };
        if holds {
            out.push(*li);
        }
    }
    out
}

#[cfg(any(test, feature = "naive-check"))]
fn check_config(
    contracts: &ContractSet,
    dataset: &Dataset,
    config: &ConfigIr,
    resolved: &Resolved,
    ctx: &ConfigContext<'_>,
) -> Vec<Violation> {
    let arenas = &dataset.arenas;
    let config_name = dataset.name_of(config);
    let mut out = Vec::new();
    for (idx, contract) in contracts.contracts.iter().enumerate() {
        match (contract, &resolved.by_contract[idx]) {
            (Contract::Present { pattern }, ResolvedContract::Present(id)) => {
                let present = id
                    .map(|id| ctx.lines_by_pattern.contains_key(&id))
                    .unwrap_or(false);
                if !present {
                    out.push(Violation {
                        contract_index: idx,
                        category: contract.category().to_string(),
                        config: config_name.to_string(),
                        line_no: None,
                        line: pattern.clone(),
                        message: format!("missing required line matching {pattern}"),
                    });
                }
            }
            (Contract::PresentExact { line }, ResolvedContract::PresentExact) => {
                if !ctx.filled_lines.contains(line) {
                    out.push(Violation {
                        contract_index: idx,
                        category: contract.category().to_string(),
                        config: config_name.to_string(),
                        line_no: None,
                        line: line.clone(),
                        message: format!("missing required exact line {line:?}"),
                    });
                }
            }
            (Contract::Ordering { first, second }, ResolvedContract::Ordering(f, s)) => {
                let Some(f) = f else { continue };
                let Some(line_idxs) = ctx.lines_by_pattern.get(f) else {
                    continue;
                };
                for &li in line_idxs {
                    let line = config.line(arenas, li);
                    let ok = match s {
                        Some(s) if li + 1 < config.len() => {
                            config.pattern(li + 1) == *s && config.is_meta(li + 1) == line.is_meta
                        }
                        _ => false,
                    };
                    if !ok {
                        out.push(Violation {
                            contract_index: idx,
                            category: contract.category().to_string(),
                            config: config_name.to_string(),
                            line_no: Some(line.line_no),
                            line: line.original.to_string(),
                            message: format!(
                                "line matching {first} must be immediately followed by a line matching {second}"
                            ),
                        });
                    }
                }
            }
            (
                Contract::Type {
                    pattern,
                    hole,
                    valid,
                },
                ResolvedContract::Type(ids),
            ) => {
                // Any line whose agnostic pattern matches but whose hole
                // type is not in the valid set.
                for line in config.lines(arenas) {
                    if !ids.contains(&line.pattern) {
                        continue;
                    }
                    let Some(param) = line.params.get(usize::from(*hole)) else {
                        continue;
                    };
                    if !valid.contains(&param.ty) {
                        out.push(Violation {
                            contract_index: idx,
                            category: contract.category().to_string(),
                            config: config_name.to_string(),
                            line_no: Some(line.line_no),
                            line: line.original.to_string(),
                            message: format!(
                                "type [{}] is not allowed at hole {hole} of {pattern}",
                                param.ty.name()
                            ),
                        });
                    }
                }
            }
            (Contract::Sequence { pattern, param }, ResolvedContract::Sequence(id)) => {
                let values = ctx.values_of(config, *id, *param, &Transform::Id);
                let nums: Vec<&concord_types::BigNum> =
                    values.iter().filter_map(|(v, _)| v.as_num()).collect();
                if nums.len() >= 2 && !sequence_is_sequential(&nums) {
                    // Report the first line where the progression breaks.
                    let step = nums[1].abs_diff(nums[0]);
                    let break_at = nums
                        .windows(2)
                        .position(|w| w[1] <= w[0] || w[1].abs_diff(w[0]) != step)
                        .map(|i| i + 1)
                        .unwrap_or(1);
                    let li = values[break_at].1;
                    let line = config.line(arenas, li);
                    out.push(Violation {
                        contract_index: idx,
                        category: contract.category().to_string(),
                        config: config_name.to_string(),
                        line_no: Some(line.line_no),
                        line: line.original.to_string(),
                        message: format!(
                            "values of param {param} of {pattern} are not equidistant"
                        ),
                    });
                }
            }
            (Contract::Unique { .. }, ResolvedContract::Unique(_)) => {
                // Handled globally in `check_unique_global`.
            }
            (
                Contract::Range {
                    pattern,
                    param,
                    min,
                    max,
                },
                ResolvedContract::Range(id),
            ) => {
                let values = ctx.values_of(config, *id, *param, &Transform::Id);
                for (value, li) in values.iter() {
                    let Some(n) = value.as_num() else { continue };
                    if n < min || n > max {
                        let line = config.line(arenas, *li);
                        out.push(Violation {
                            contract_index: idx,
                            category: contract.category().to_string(),
                            config: config_name.to_string(),
                            line_no: Some(line.line_no),
                            line: line.original.to_string(),
                            message: format!(
                                "value {n} of param {param} of {pattern} is outside [{min}, {max}]"
                            ),
                        });
                    }
                }
            }
            (Contract::Relational(r), ResolvedContract::Relational(a, c)) => {
                out.extend(check_relational(
                    idx,
                    r,
                    contract.category(),
                    dataset,
                    config,
                    ctx,
                    *a,
                    *c,
                ));
            }
            _ => unreachable!("resolved variant mismatch"),
        }
    }
    out
}

#[cfg(any(test, feature = "naive-check"))]
#[allow(clippy::too_many_arguments)]
fn check_relational(
    idx: usize,
    r: &RelationalContract,
    category: &'static str,
    dataset: &Dataset,
    config: &ConfigIr,
    ctx: &ConfigContext<'_>,
    antecedent: Option<PatternId>,
    consequent: Option<PatternId>,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let antecedents = ctx.values_of(
        config,
        antecedent,
        r.antecedent.param,
        &r.antecedent.transform,
    );
    if antecedents.is_empty() {
        return out;
    }
    let consequents = ctx.values_of(
        config,
        consequent,
        r.consequent.param,
        &r.consequent.transform,
    );
    for (v1, li) in antecedents.iter() {
        if find_witnesses(r.relation, v1, &consequents).is_empty() {
            let line = config.line(&dataset.arenas, *li);
            out.push(Violation {
                contract_index: idx,
                category: category.to_string(),
                config: dataset.name_of(config).to_string(),
                line_no: Some(line.line_no),
                line: line.original.to_string(),
                message: format!(
                    "no line matching {} satisfies {} for value {}",
                    r.consequent.pattern,
                    r.relation.name(),
                    v1.render(),
                ),
            });
        }
    }
    out
}

#[cfg(any(test, feature = "naive-check"))]
fn check_unique_global(
    contracts: &ContractSet,
    dataset: &Dataset,
    resolved: &Resolved,
) -> Vec<Violation> {
    let mut out = Vec::new();
    for (idx, contract) in contracts.contracts.iter().enumerate() {
        let (
            Contract::Unique {
                pattern,
                param,
                once_per_config,
            },
            ResolvedContract::Unique(id),
        ) = (contract, &resolved.by_contract[idx])
        else {
            continue;
        };
        let Some(id) = id else { continue };
        let mut seen: HashSet<String> = HashSet::new();
        for config in &dataset.configs {
            let config_name = dataset.name_of(config);
            let mut count_here = 0u32;
            for line in config.lines(&dataset.arenas) {
                if line.pattern != *id {
                    continue;
                }
                count_here += 1;
                let Some(p) = line.params.get(usize::from(*param)) else {
                    continue;
                };
                let rendered = p.value.render();
                if seen.contains(&rendered) {
                    out.push(Violation {
                        contract_index: idx,
                        category: contract.category().to_string(),
                        config: config_name.to_string(),
                        line_no: Some(line.line_no),
                        line: line.original.to_string(),
                        message: format!(
                            "value {rendered} of param {param} of {pattern} is reused"
                        ),
                    });
                } else {
                    seen.insert(rendered);
                }
            }
            if *once_per_config && count_here == 0 {
                out.push(Violation {
                    contract_index: idx,
                    category: contract.category().to_string(),
                    config: config_name.to_string(),
                    line_no: None,
                    line: pattern.clone(),
                    message: format!("expected exactly one line matching {pattern}, found none"),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_dataset() -> Dataset {
        let configs = vec![(
            "dev0".to_string(),
            "interface Loopback0\n ip address 10.0.0.1\n ip address 10.0.0.2\n".to_string(),
        )];
        Dataset::from_named_texts(&configs, &[]).unwrap()
    }

    fn empty_set() -> ContractSet {
        ContractSet {
            contracts: Vec::new(),
            relational_before_minimization: 0,
        }
    }

    fn ip_address_pattern(ds: &Dataset) -> PatternId {
        ds.table
            .iter()
            .find(|(_, text)| text.contains("ip address"))
            .map(|(id, _)| id)
            .expect("ip address pattern interned")
    }

    #[test]
    fn values_of_memoizes_per_node() {
        let ds = toy_dataset();
        let config = &ds.configs[0];
        let resolved = resolve(&empty_set(), &ds);
        let ctx = ConfigContext::new(config, &ds, &resolved);

        // The pattern with an IP parameter (the `ip address` lines).
        let pattern = ip_address_pattern(&ds);

        let first = ctx.values_of(config, Some(pattern), 0, &Transform::Id);
        assert_eq!(first.len(), 2, "both ip address lines collected");
        let second = ctx.values_of(config, Some(pattern), 0, &Transform::Id);
        assert!(
            std::rc::Rc::ptr_eq(&first, &second),
            "cache hit must return the same allocation"
        );

        // A different transform is a different cache node.
        let other = ctx.values_of(config, Some(pattern), 0, &Transform::Str);
        assert!(!std::rc::Rc::ptr_eq(&first, &other));
    }

    #[test]
    fn values_of_out_of_domain_is_empty() {
        let ds = toy_dataset();
        let config = &ds.configs[0];
        let resolved = resolve(&empty_set(), &ds);
        let ctx = ConfigContext::new(config, &ds, &resolved);
        let pattern = ip_address_pattern(&ds);

        // Unresolved pattern: nothing to collect.
        assert!(ctx.values_of(config, None, 0, &Transform::Id).is_empty());
        // Parameter index past the line's arity.
        assert!(ctx
            .values_of(config, Some(pattern), 99, &Transform::Id)
            .is_empty());
        // Transform outside the value's domain (hex of an IP address)
        // drops every occurrence.
        assert!(ctx
            .values_of(config, Some(pattern), 0, &Transform::Hex)
            .is_empty());
        // The empty results are memoized too.
        let a = ctx.values_of(config, Some(pattern), 99, &Transform::Id);
        let b = ctx.values_of(config, Some(pattern), 99, &Transform::Id);
        assert!(std::rc::Rc::ptr_eq(&a, &b));
    }
}
