//! A minimal Fx-style hasher for the checking and learning hot paths.
//!
//! The compiled check engine and the learn engine hash millions of tiny
//! keys per run (pattern ids, candidate keys, parameter values): the
//! standard library's DoS-resistant SipHash costs more than the lookups
//! themselves. This is the multiply-xor construction used by rustc's
//! `FxHasher` — excellent distribution on short keys, a fraction of the
//! cost, and safe here because every hashed key derives from the
//! operator's own configurations, not attacker-chosen input.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hash, Hasher};

/// Multiply-xor hasher (the rustc `FxHasher` construction).
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

/// `u64::from_bits(golden ratio)`-derived odd multiplier.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// A `HashMap` keyed through [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` keyed through [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// Hashes one value through [`FxHasher`] (the learn engine's witness
/// fingerprint — replaces per-witness `DefaultHasher` construction).
#[inline]
pub fn fx_hash_one<T: Hash>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distributes_small_keys() {
        let mut buckets = std::collections::HashSet::new();
        for i in 0u32..1000 {
            let mut h = FxHasher::default();
            h.write_u32(i);
            buckets.insert(h.finish());
        }
        assert_eq!(buckets.len(), 1000, "no collisions on sequential u32s");
    }

    #[test]
    fn handles_unaligned_tails() {
        let mut a = FxHasher::default();
        a.write(b"abcdefghi"); // 8-byte chunk + 1-byte tail
        let mut b = FxHasher::default();
        b.write(b"abcdefghj");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn hash_one_is_stable_and_discriminating() {
        assert_eq!(fx_hash_one(&42u64), fx_hash_one(&42u64));
        assert_ne!(fx_hash_one(&42u64), fx_hash_one(&43u64));
        let mut set: FxHashSet<u32> = FxHashSet::default();
        assert!(set.insert(7));
        assert!(!set.insert(7));
    }

    #[test]
    fn map_works_end_to_end() {
        let mut map: FxHashMap<String, usize> = FxHashMap::default();
        map.insert("a".into(), 1);
        map.insert("b".into(), 2);
        assert_eq!(map.get("a"), Some(&1));
        assert_eq!(map.get("c"), None);
    }
}
