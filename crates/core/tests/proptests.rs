//! Property-based tests for the learning and checking engines.

// NOTE: the hermetic build has no `proptest`; enable the `proptests`
// feature after vendoring it to run this suite.
#![cfg(feature = "proptests")]

use concord_core::{check, learn, ConfigIr, Contract, ContractSet, Dataset, LearnParams};
use proptest::prelude::*;

/// Builds a dataset from generated config texts.
fn dataset(texts: Vec<String>) -> Dataset {
    let configs: Vec<(String, String)> = texts
        .into_iter()
        .enumerate()
        .map(|(i, t)| (format!("dev{i}"), t))
        .collect();
    Dataset::from_named_texts(&configs, &[]).unwrap()
}

/// A strategy producing small fleets of template-driven configs: shared
/// structure with per-device values, plus optional per-device noise.
fn arb_fleet() -> impl Strategy<Value = Vec<String>> {
    (
        6usize..10,          // devices
        1u32..6,             // vlan count
        0u32..200,           // vlan base
        proptest::bool::ANY, // include prefix list
        proptest::bool::ANY, // include bgp block
    )
        .prop_map(|(devices, vlan_count, vlan_base, with_plist, with_bgp)| {
            (0..devices)
                .map(|d| {
                    let mut text = format!("hostname DEV{}\n", 1000 + d);
                    text.push_str(&format!("interface Loopback0\n ip address 10.7.{d}.34\n"));
                    if with_plist {
                        text.push_str("ip prefix-list lo\n");
                        text.push_str(&format!(" seq 10 permit 10.7.{d}.34/32\n"));
                        text.push_str(" seq 20 permit 0.0.0.0/0\n");
                    }
                    if with_bgp {
                        text.push_str("router bgp 65001\n");
                        for v in 0..vlan_count {
                            let vlan = 100 + vlan_base + v;
                            text.push_str(&format!(
                                " vlan {vlan}\n  rd 10.7.250.1:10{vlan}\n  vni {vlan}\n"
                            ));
                        }
                    }
                    text
                })
                .collect()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Learning is deterministic and its output survives JSON.
    #[test]
    fn learn_deterministic_and_serializable(texts in arb_fleet()) {
        let ds = dataset(texts);
        let params = LearnParams::default();
        let a = learn(&ds, &params);
        let b = learn(&ds, &params);
        prop_assert_eq!(&a.contracts, &b.contracts);
        let back = ContractSet::from_json(&a.to_json()).unwrap();
        prop_assert_eq!(back.contracts, a.contracts);
    }

    /// Contracts learned from a template fleet hold on that fleet.
    #[test]
    fn learned_contracts_hold_on_training_set(texts in arb_fleet()) {
        let ds = dataset(texts);
        let contracts = learn(&ds, &LearnParams::default());
        let report = check(&contracts, &ds);
        prop_assert!(
            report.violations.is_empty(),
            "self-check violations: {:#?}",
            &report.violations[..report.violations.len().min(3)]
        );
    }

    /// §3.9 equivalence: a line is covered iff removing it (at the IR
    /// level) produces at least one violation.
    #[test]
    fn coverage_agrees_with_removal_simulation(texts in arb_fleet()) {
        let ds = dataset(texts);
        let contracts = learn(&ds, &LearnParams::default());
        let report = check(&contracts, &ds);
        prop_assert!(report.violations.is_empty());
        for (ci, cov) in report.coverage.per_config.iter().enumerate() {
            let config = &ds.configs[ci];
            for li in 0..config.lines.len() {
                if config.lines[li].is_meta {
                    continue;
                }
                let mut without = ds.clone();
                without.configs[ci].lines.remove(li);
                let removed_report = check(&contracts, &without);
                let violates = !removed_report.violations.is_empty();
                prop_assert_eq!(
                    cov.covered.contains(&li),
                    violates,
                    "config {} line {} ({}): covered={} but removal violations={:#?}",
                    config.name,
                    config.lines[li].line_no,
                    config.lines[li].original,
                    cov.covered.contains(&li),
                    &removed_report.violations[..removed_report.violations.len().min(3)]
                );
            }
        }
    }

    /// Parallel checking matches sequential checking exactly.
    #[test]
    fn check_parallel_matches_sequential(texts in arb_fleet()) {
        let ds = dataset(texts);
        let contracts = learn(&ds, &LearnParams::default());
        let seq = concord_core::check_parallel(&contracts, &ds, 1);
        let par = concord_core::check_parallel(&contracts, &ds, 4);
        prop_assert_eq!(seq.violations, par.violations);
        prop_assert_eq!(
            seq.coverage.summary().covered_lines,
            par.coverage.summary().covered_lines
        );
    }

    /// Coverage accounting is internally consistent: per-category sets
    /// are subsets of the total, and fractions are within [0, 1].
    #[test]
    fn coverage_accounting_consistent(texts in arb_fleet()) {
        let ds = dataset(texts);
        let contracts = learn(&ds, &LearnParams::default());
        let report = check(&contracts, &ds);
        for cov in &report.coverage.per_config {
            prop_assert!(cov.covered.len() <= cov.total_lines);
            for lines in cov.by_category.values() {
                for li in lines {
                    prop_assert!(cov.covered.contains(li));
                }
            }
        }
        let summary = report.coverage.summary();
        prop_assert!((0.0..=1.0).contains(&summary.fraction));
        for fraction in summary.by_category.values() {
            prop_assert!((0.0..=1.0).contains(fraction));
        }
    }

    /// Minimization preserves checking outcomes on the training set and
    /// never grows the relational contract count.
    #[test]
    fn minimization_preserves_clean_check(texts in arb_fleet()) {
        let ds = dataset(texts);
        let minimized = learn(&ds, &LearnParams::default());
        let full = learn(
            &ds,
            &LearnParams { minimize: false, ..LearnParams::default() },
        );
        let count = |set: &ContractSet| {
            set.contracts
                .iter()
                .filter(|c| matches!(c, Contract::Relational(_)))
                .count()
        };
        prop_assert!(count(&minimized) <= count(&full));
        prop_assert!(check(&minimized, &ds).violations.is_empty());
        prop_assert!(check(&full, &ds).violations.is_empty());
    }

    /// Checking never panics on mismatched contract/dataset pairs: any
    /// learned set can be applied to any other fleet.
    #[test]
    fn check_total_on_foreign_datasets(train in arb_fleet(), test in arb_fleet()) {
        let contracts = learn(&dataset(train), &LearnParams::default());
        let report = check(&contracts, &dataset(test));
        // Violations must reference valid contract indices.
        for v in &report.violations {
            prop_assert!(v.contract_index < contracts.len());
        }
    }
}

/// Removing a whole config from the dataset must never create violations
/// in other configs (checking is per-config except `unique`, which only
/// gets easier).
#[test]
fn removing_a_config_never_hurts_others() {
    let texts: Vec<String> = (0..8)
        .map(|d| {
            format!(
                "hostname DEV{}\nvlan {}\nvni {}\n",
                1000 + d,
                100 + d,
                100 + d
            )
        })
        .collect();
    let ds = dataset(texts);
    let contracts = learn(&ds, &LearnParams::default());
    assert!(check(&contracts, &ds).violations.is_empty());
    let mut smaller = ds.clone();
    smaller.configs.remove(0);
    assert!(check(&contracts, &smaller).violations.is_empty());
}

/// The public IR is clonable/inspectable for downstream tooling.
#[test]
fn dataset_ir_is_inspectable() {
    let ds = dataset(vec!["vlan 7\n".to_string()]);
    let config: &ConfigIr = &ds.configs[0];
    assert_eq!(config.lines.len(), 1);
    assert_eq!(ds.table.text(config.lines[0].pattern), "/vlan [a:num]");
}
