//! Tests for metadata ingestion (§3.7): metadata lines join every
//! configuration, relations are learned across the boundary, and
//! violations caused by config↔metadata divergence are localized.

use concord_core::{check, learn, Dataset, LearnParams};

type NamedFiles = Vec<(String, String)>;

fn fleet_with_metadata(vlans: &[u32]) -> (NamedFiles, NamedFiles) {
    let configs: Vec<(String, String)> = (0..6)
        .map(|d| {
            let mut text = format!("hostname DEV{}\n", 4000 + d);
            for v in vlans {
                text.push_str(&format!("vlan {v}\n   vni {v}\n"));
            }
            (format!("dev{d}"), text)
        })
        .collect();
    let mut meta = String::from("vlans:\n");
    for v in vlans {
        meta.push_str(&format!("  - {v}\n"));
    }
    (configs, vec![("intent.yaml".to_string(), meta)])
}

#[test]
fn metadata_lines_are_marked_and_shared() {
    let (configs, metadata) = fleet_with_metadata(&[210, 220]);
    let ds = Dataset::from_named_texts(&configs, &metadata).unwrap();
    for config in &ds.configs {
        let meta_lines: Vec<_> = config.lines(&ds.arenas).filter(|l| l.is_meta).collect();
        assert_eq!(meta_lines.len(), 3, "{}", ds.name_of(config)); // `vlans` + 2 ids.
        for line in meta_lines {
            assert!(ds.table.text(line.pattern).starts_with("@meta/"));
        }
    }
    // Metadata never counts toward configuration line totals.
    assert_eq!(ds.total_lines(), 6 * 5);
}

#[test]
fn config_to_metadata_relation_catches_rogue_vlan() {
    let (configs, metadata) = fleet_with_metadata(&[210, 220, 230]);
    let train = Dataset::from_named_texts(&configs, &metadata).unwrap();
    let params = LearnParams {
        support: 3,
        ..LearnParams::default()
    };
    let contracts = learn(&train, &params);
    assert!(check(&contracts, &train).violations.is_empty());

    // A device grows a VLAN the intent metadata does not declare.
    let mut bad_configs = configs.clone();
    bad_configs[0].1.push_str("vlan 999\n   vni 999\n");
    let test = Dataset::from_named_texts(&bad_configs, &metadata).unwrap();
    let report = check(&contracts, &test);
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.config == "dev0" && v.message.contains("999")),
        "{:#?}",
        report.violations
    );
}

#[test]
fn metadata_divergence_flags_every_device() {
    // The opposite §5.5 direction: intent declares a VLAN no device
    // carries. The metadata-side forall fails in every config.
    let (configs, _) = fleet_with_metadata(&[210, 220]);
    let (_, metadata) = fleet_with_metadata(&[210, 220]);
    let train = Dataset::from_named_texts(&configs, &metadata).unwrap();
    let params = LearnParams {
        support: 3,
        ..LearnParams::default()
    };
    let contracts = learn(&train, &params);

    let (_, grown_meta) = fleet_with_metadata(&[210, 220, 250]);
    let test = Dataset::from_named_texts(&configs, &grown_meta).unwrap();
    let report = check(&contracts, &test);
    let has_meta_side = contracts.contracts.iter().any(|c| {
        let d = c.describe();
        d.starts_with("forall l1 ~ @meta")
    });
    if has_meta_side {
        assert!(
            report.violations.iter().any(|v| v.message.contains("250")),
            "{:#?}",
            report.violations
        );
    }
}

#[test]
fn checking_without_metadata_skips_meta_contracts_gracefully() {
    let (configs, metadata) = fleet_with_metadata(&[210, 220, 230]);
    let train = Dataset::from_named_texts(&configs, &metadata).unwrap();
    let params = LearnParams {
        support: 3,
        ..LearnParams::default()
    };
    let contracts = learn(&train, &params);

    // Check with no metadata files at all: metadata-consequent contracts
    // now fail (their witnesses are gone) — which is the desired signal
    // that the operator forgot `--metadata` — while nothing panics.
    let test = Dataset::from_named_texts(&configs, &[]).unwrap();
    let report = check(&contracts, &test);
    for v in &report.violations {
        assert!(v.contract_index < contracts.len());
    }
}
