//! Rendering tests: `Contract::describe` must reproduce the paper's
//! notation exactly, including argument order conventions.

use concord_core::{Contract, PatternRef, RelationKind, RelationalContract};
use concord_types::Transform;

fn relational(
    a: (&str, u16, Transform),
    c: (&str, u16, Transform),
    relation: RelationKind,
) -> Contract {
    Contract::Relational(RelationalContract {
        antecedent: PatternRef {
            pattern: a.0.to_string(),
            param: a.1,
            transform: a.2,
        },
        consequent: PatternRef {
            pattern: c.0.to_string(),
            param: c.1,
            transform: c.2,
        },
        relation,
    })
}

#[test]
fn figure_1_contract_1_notation() {
    // forall l1 ~ interface Port-Channel[a:num]
    // exists l2 ~ route-target import [b:mac]
    // equals(hex(l1.a), segment(l2.b, 6))
    let contract = relational(
        ("interface Port-Channel[a:num]", 0, Transform::Hex),
        ("route-target import [b:mac]", 0, Transform::Segment(6)),
        RelationKind::Equals,
    );
    assert_eq!(
        contract.describe(),
        "forall l1 ~ interface Port-Channel[a:num]\n\
         exists l2 ~ route-target import [b:mac]\n\
         equals(hex(l1.a), segment(l2.b, 6))"
    );
}

#[test]
fn figure_1_contract_2_notation() {
    // contains(l2.b, l1.a): the container comes first.
    let contract = relational(
        ("ip address [a:ip4]", 0, Transform::Id),
        ("seq [a:num] permit [b:pfx4]", 1, Transform::Id),
        RelationKind::Contains,
    );
    assert_eq!(
        contract.describe(),
        "forall l1 ~ ip address [a:ip4]\n\
         exists l2 ~ seq [a:num] permit [b:pfx4]\n\
         contains(l2.b, l1.a)"
    );
}

#[test]
fn figure_1_contract_3_notation() {
    // endswith(str(l2.b), str(l1.a)): the longer string comes first.
    let contract = relational(
        ("vlan [a:num]", 0, Transform::Str),
        ("rd [a:ip4]:[b:num]", 1, Transform::Str),
        RelationKind::EndsWith,
    );
    assert_eq!(
        contract.describe(),
        "forall l1 ~ vlan [a:num]\n\
         exists l2 ~ rd [a:ip4]:[b:num]\n\
         endswith(str(l2.b), str(l1.a))"
    );
}

#[test]
fn present_contracts_match_figure_1_bottom_row() {
    assert_eq!(
        Contract::Present {
            pattern: "ip prefix-list loopback".to_string()
        }
        .describe(),
        "exists l ~ ip prefix-list loopback"
    );
    assert_eq!(
        Contract::Present {
            pattern: "interface Loopback[a:num]".to_string()
        }
        .describe(),
        "exists l ~ interface Loopback[a:num]"
    );
}

#[test]
fn ordering_contract_uses_index_notation() {
    let contract = Contract::Ordering {
        first: "evpn ethernet-segment".to_string(),
        second: "route-target import [a:mac]".to_string(),
    };
    assert_eq!(
        contract.describe(),
        "forall l1 ~ evpn ethernet-segment\n\
         exists l2 ~ route-target import [a:mac]\n\
         equals(index(l1) + 1, index(l2))"
    );
}

#[test]
fn display_matches_describe() {
    let contract = Contract::Present {
        pattern: "/x [a:num]".to_string(),
    };
    assert_eq!(contract.to_string(), contract.describe());
}

#[test]
fn positional_fallback_names_for_anonymous_holes() {
    // A consequent hole without a bound name falls back to a positional
    // name rather than panicking.
    let contract = relational(
        ("left [a:num]", 0, Transform::Id),
        ("right-with-no-holes", 3, Transform::Id),
        RelationKind::Equals,
    );
    let text = contract.describe();
    assert!(text.contains("l2.p3"), "{text}");
}
