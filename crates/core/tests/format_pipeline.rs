//! End-to-end learning and checking over non-CLI configuration formats:
//! JSON and YAML device configurations (Concord accepts any format, §4).

use concord_core::{check, learn, Dataset, LearnParams};

fn dataset(texts: Vec<String>) -> Dataset {
    let configs: Vec<(String, String)> = texts
        .into_iter()
        .enumerate()
        .map(|(i, t)| (format!("dev{i}"), t))
        .collect();
    Dataset::from_named_texts(&configs, &[]).unwrap()
}

fn json_device(d: usize, vlan: usize) -> String {
    format!(
        r#"{{
  "hostname": "DEV{}",
  "interfaces": {{
    "loopback0": {{ "address": "10.9.{d}.1" }},
    "eth1": {{ "address": "10.9.{d}.2", "mtu": 9214 }}
  }},
  "bgp": {{
    "asn": 65010,
    "vlans": [ {{ "id": {vlan}, "vni": {vlan} }} ]
  }}
}}"#,
        1000 + d
    )
}

#[test]
fn learns_from_json_configs() {
    let texts: Vec<String> = (0..8).map(|d| json_device(d, 200 + d)).collect();
    let ds = dataset(texts);
    // The embedder must classify every config as JSON and produce
    // key-path patterns.
    let pattern_texts: Vec<&str> = ds.table.iter().map(|(_, t)| t).collect();
    assert!(
        pattern_texts
            .iter()
            .any(|t| t.contains("/interfaces/loopback[num]/address [a:ip4]")),
        "missing JSON key-path pattern: {pattern_texts:#?}"
    );

    let contracts = learn(&ds, &LearnParams::default());
    assert!(!contracts.is_empty());
    let descriptions: Vec<String> = contracts.contracts.iter().map(|c| c.describe()).collect();
    // The vlan id / vni equality survives JSON nesting.
    assert!(
        descriptions.iter().any(|d| {
            d.starts_with("forall") && d.contains("/bgp/vlans/id") && d.contains("vni")
        }),
        "no vlan/vni relation learned: {descriptions:#?}"
    );

    // Checking a broken JSON device flags it.
    let mut bad = vec![json_device(0, 250)];
    bad[0] = bad[0].replace("\"vni\": 250", "\"vni\": 999");
    let test = dataset(bad);
    let report = check(&contracts, &test);
    assert!(
        report
            .violations
            .iter()
            .any(|v| matches!(v.category.as_str(), "equality" | "contains" | "affix")),
        "{:#?}",
        report.violations
    );
}

#[test]
fn learns_from_yaml_configs() {
    let texts: Vec<String> = (0..8)
        .map(|d| {
            format!(
                "hostname: DEV{}\nloopback: 10.8.{d}.1\nbgp:\n  asn: 65020\n  router-id: 10.8.{d}.1\n",
                2000 + d
            )
        })
        .collect();
    let ds = dataset(texts);
    let contracts = learn(&ds, &LearnParams::default());
    let descriptions: Vec<String> = contracts.contracts.iter().map(|c| c.describe()).collect();
    // Loopback equals router-id through the YAML hierarchy.
    assert!(
        descriptions.iter().any(|d| {
            d.starts_with("forall") && d.contains("loopback") && d.contains("router-id")
        }),
        "no loopback/router-id relation: {descriptions:#?}"
    );

    // A device whose router-id diverges is flagged.
    let bad = vec![
        "hostname: DEV9999\nloopback: 10.8.99.1\nbgp:\n  asn: 65020\n  router-id: 10.8.0.7\n"
            .to_string(),
    ];
    let report = check(&contracts, &dataset(bad));
    assert!(
        report
            .violations
            .iter()
            .any(|v| matches!(v.category.as_str(), "equality" | "contains" | "affix")),
        "{:#?}",
        report.violations
    );
}

#[test]
fn mixed_format_fleet_is_fine() {
    // Half the fleet is JSON, half indent-style: patterns simply do not
    // collide, and learning still succeeds per sub-population when
    // support allows.
    let mut texts: Vec<String> = (0..6).map(|d| json_device(d, 300)).collect();
    texts.extend((0..6).map(|d| format!("hostname DEV{}\nvlan 300\n", 3000 + d)));
    let ds = dataset(texts);
    let contracts = learn(&ds, &LearnParams::default());
    assert!(!contracts.is_empty());
    assert!(check(&contracts, &ds).violations.is_empty());
}
