//! End-to-end tests of the check engine and coverage measurement.

use concord_core::{check, learn, Contract, ContractSet, Dataset, LearnParams};
use concord_types::ValueType;

fn dataset(texts: &[String]) -> Dataset {
    let configs: Vec<(String, String)> = texts
        .iter()
        .enumerate()
        .map(|(i, t)| (format!("dev{i}"), t.clone()))
        .collect();
    Dataset::from_named_texts(&configs, &[]).unwrap()
}

fn single(text: &str) -> Dataset {
    dataset(&[text.to_string()])
}

fn contracts(list: Vec<Contract>) -> ContractSet {
    ContractSet {
        contracts: list,
        relational_before_minimization: 0,
    }
}

#[test]
fn present_violation_reports_missing_pattern() {
    let set = contracts(vec![Contract::Present {
        pattern: "/router bgp [a:num]".to_string(),
    }]);
    let report = check(&set, &single("hostname X1\n"));
    assert_eq!(report.violations.len(), 1);
    let v = &report.violations[0];
    assert_eq!(v.category, "present");
    assert_eq!(v.config, "dev0");
    assert_eq!(v.line_no, None);
    assert!(v.message.contains("missing"));
}

#[test]
fn present_satisfied_is_quiet() {
    let set = contracts(vec![Contract::Present {
        pattern: "/router bgp [a:num]".to_string(),
    }]);
    let report = check(&set, &single("router bgp 65000\n"));
    assert!(report.violations.is_empty());
}

#[test]
fn ordering_violation_localizes_line() {
    let set = contracts(vec![Contract::Ordering {
        first: "/evpn ether-segment".to_string(),
        second: "/route-target import [a:mac]".to_string(),
    }]);
    // Flat config (no indentation) so patterns stay top-level.
    let good = single("evpn ether-segment\nroute-target import 00:00:0c:d3:00:6e\n");
    assert!(check(&set, &good).violations.is_empty());

    let bad = single("evpn ether-segment\nmtu 9214\n");
    let report = check(&set, &bad);
    assert_eq!(report.violations.len(), 1);
    assert_eq!(report.violations[0].line_no, Some(1));
    assert_eq!(report.violations[0].category, "ordering");
}

#[test]
fn type_violation_flags_mistyped_line() {
    let set = contracts(vec![Contract::Type {
        pattern: "/ip address [?]".to_string(),
        hole: 0,
        valid: vec![ValueType::Ip4],
    }]);
    let bad = single("ip address 10.0.0.0/24\n");
    let report = check(&set, &bad);
    assert_eq!(report.violations.len(), 1);
    assert!(report.violations[0].message.contains("[pfx4]"));
    assert_eq!(report.violations[0].line_no, Some(1));

    let good = single("ip address 10.0.0.1\n");
    assert!(check(&set, &good).violations.is_empty());
}

#[test]
fn sequence_violation_reports_break_point() {
    let set = contracts(vec![Contract::Sequence {
        pattern: "/seq [a:num] permit [b:pfx4]".to_string(),
        param: 0,
    }]);
    let bad =
        single("seq 10 permit 10.0.0.0/8\nseq 20 permit 10.1.0.0/16\nseq 40 permit 10.2.0.0/16\n");
    let report = check(&set, &bad);
    assert_eq!(report.violations.len(), 1);
    assert_eq!(report.violations[0].line_no, Some(3));

    let good =
        single("seq 10 permit 10.0.0.0/8\nseq 20 permit 10.1.0.0/16\nseq 30 permit 10.2.0.0/16\n");
    assert!(check(&set, &good).violations.is_empty());
}

#[test]
fn unique_violation_flags_reuse_across_configs() {
    let set = contracts(vec![Contract::Unique {
        pattern: "/hostname DEV[a:num]".to_string(),
        param: 0,
        once_per_config: false,
    }]);
    let ds = dataset(&[
        "hostname DEV100\n".to_string(),
        "hostname DEV100\n".to_string(),
    ]);
    let report = check(&set, &ds);
    assert_eq!(report.violations.len(), 1);
    assert_eq!(report.violations[0].config, "dev1");
    assert!(report.violations[0].message.contains("reused"));
}

#[test]
fn unique_once_per_config_flags_missing() {
    let set = contracts(vec![Contract::Unique {
        pattern: "/hostname DEV[a:num]".to_string(),
        param: 0,
        once_per_config: true,
    }]);
    let ds = dataset(&["hostname DEV1\n".to_string(), "vlan 5\n".to_string()]);
    let report = check(&set, &ds);
    assert_eq!(report.violations.len(), 1);
    assert_eq!(report.violations[0].config, "dev1");
    assert!(report.violations[0].message.contains("found none"));
}

#[test]
fn relational_violation_names_value() {
    // Learn Figure 1 contract 2 from clean configs, then break one.
    let train: Vec<String> = (0..8)
        .map(|i| {
            format!(
                "interface Loopback0\n ip address 10.14.14.{i}\nip prefix-list lo\n seq 10 permit 10.14.14.{i}/32\n"
            )
        })
        .collect();
    let learned = learn(&dataset(&train), &LearnParams::default());

    let bad = single(
        "interface Loopback0\n ip address 10.14.14.99\nip prefix-list lo\n seq 10 permit 10.14.14.1/32\n",
    );
    let report = check(&learned, &bad);
    // Relational violations carry the relation's real category name
    // (equality / contains / affix), never a generic "relational".
    let relational: Vec<_> = report
        .violations
        .iter()
        .filter(|v| matches!(v.category.as_str(), "equality" | "contains" | "affix"))
        .collect();
    assert!(
        !relational.is_empty(),
        "violations: {:#?}",
        report.violations
    );
    assert!(relational.iter().any(|v| v.message.contains("10.14.14.99")));
    assert!(relational.iter().any(|v| v.line_no == Some(2)));
}

#[test]
fn vacuous_contracts_pass_on_unrelated_configs() {
    let set = contracts(vec![
        Contract::Ordering {
            first: "/never seen".to_string(),
            second: "/also never".to_string(),
        },
        Contract::Sequence {
            pattern: "/absent [a:num]".to_string(),
            param: 0,
        },
    ]);
    let report = check(&set, &single("something else entirely\n"));
    assert!(report.violations.is_empty());
}

#[test]
fn present_exact_checks_constant_lines() {
    let set = contracts(vec![Contract::PresentExact {
        line: "/seq 20 permit 0.0.0.0/0".to_string(),
    }]);
    assert!(check(&set, &single("seq 20 permit 0.0.0.0/0\n"))
        .violations
        .is_empty());
    let report = check(&set, &single("seq 20 permit 10.0.0.0/8\n"));
    assert_eq!(report.violations.len(), 1);
    assert_eq!(report.violations[0].category, "present");
}

#[test]
fn violations_sorted_by_config_and_line() {
    let set = contracts(vec![Contract::Present {
        pattern: "/needed".to_string(),
    }]);
    let ds = dataset(&["x\n".to_string(), "y\n".to_string()]);
    let report = check(&set, &ds);
    let configs: Vec<&str> = report
        .violations
        .iter()
        .map(|v| v.config.as_str())
        .collect();
    assert_eq!(configs, vec!["dev0", "dev1"]);
}

// --- Coverage (§3.9) ---

#[test]
fn coverage_present_covers_sole_line() {
    let set = contracts(vec![Contract::Present {
        pattern: "/router bgp [a:num]".to_string(),
    }]);
    let ds = single("router bgp 65000\nvlan 5\n");
    let report = check(&set, &ds);
    let summary = report.coverage.summary();
    assert_eq!(summary.total_lines, 2);
    assert_eq!(summary.covered_lines, 1);
    assert!((summary.fraction - 0.5).abs() < 1e-9);
    assert!((summary.by_category["present"] - 0.5).abs() < 1e-9);
}

#[test]
fn coverage_present_not_covered_when_duplicated() {
    // Two lines match the pattern: removing either leaves one.
    let set = contracts(vec![Contract::Present {
        pattern: "/vlan [a:num]".to_string(),
    }]);
    let report = check(&set, &single("vlan 5\nvlan 6\n"));
    assert_eq!(report.coverage.summary().covered_lines, 0);
}

#[test]
fn coverage_ordering_covers_followers() {
    let set = contracts(vec![Contract::Ordering {
        first: "/evpn ether-segment".to_string(),
        second: "/route-target import [a:mac]".to_string(),
    }]);
    let report = check(
        &set,
        &single("evpn ether-segment\nroute-target import 00:00:0c:d3:00:6e\nmtu 9214\n"),
    );
    let summary = report.coverage.summary();
    assert_eq!(summary.covered_lines, 1);
    // The covered line is the route-target (index 1).
    assert!(report.coverage.per_config[0].covered.contains(&1));
}

#[test]
fn coverage_type_contract_covers_nothing() {
    let set = contracts(vec![Contract::Type {
        pattern: "/ip address [?]".to_string(),
        hole: 0,
        valid: vec![ValueType::Ip4],
    }]);
    let report = check(&set, &single("ip address 10.0.0.1\n"));
    assert_eq!(report.coverage.summary().covered_lines, 0);
}

#[test]
fn coverage_sequence_covers_interior() {
    let set = contracts(vec![Contract::Sequence {
        pattern: "/seq [a:num] permit [b:pfx4]".to_string(),
        param: 0,
    }]);
    // Length 4: the two interior lines are covered.
    let report = check(
        &set,
        &single("seq 10 permit 10.0.0.0/8\nseq 20 permit 10.1.0.0/16\nseq 30 permit 10.2.0.0/16\nseq 40 permit 10.3.0.0/16\n"),
    );
    let cov = &report.coverage.per_config[0];
    assert_eq!(cov.covered.len(), 2);
    assert!(cov.covered.contains(&1) && cov.covered.contains(&2));

    // Length 3: removing the middle leaves a valid 2-progression, so
    // nothing is covered.
    let report = check(
        &set,
        &single("seq 10 permit 10.0.0.0/8\nseq 20 permit 10.1.0.0/16\nseq 30 permit 10.2.0.0/16\n"),
    );
    assert!(report.coverage.per_config[0].covered.is_empty());
}

#[test]
fn coverage_unique_once_per_config() {
    let once = contracts(vec![Contract::Unique {
        pattern: "/hostname DEV[a:num]".to_string(),
        param: 0,
        once_per_config: true,
    }]);
    let report = check(&once, &single("hostname DEV7\nvlan 5\n"));
    assert_eq!(report.coverage.summary().covered_lines, 1);

    let multi = contracts(vec![Contract::Unique {
        pattern: "/hostname DEV[a:num]".to_string(),
        param: 0,
        once_per_config: false,
    }]);
    let report = check(&multi, &single("hostname DEV7\nvlan 5\n"));
    assert_eq!(report.coverage.summary().covered_lines, 0);
}

#[test]
fn coverage_relational_covers_sole_witness() {
    let train: Vec<String> = (0..8)
        .map(|i| {
            format!(
                "interface Loopback0\n ip address 10.14.14.{i}\nip prefix-list lo\n seq 10 permit 10.14.14.{i}/32\n"
            )
        })
        .collect();
    let ds = dataset(&train);
    let learned = learn(&ds, &LearnParams::default());
    let report = check(&learned, &ds);
    // The prefix-list entry (the sole witness for the loopback address)
    // must be covered by the contains contract in every config.
    let summary = report.coverage.summary();
    assert!(summary.by_category.contains_key("contains"), "{summary:#?}");
    assert!(summary.by_category["contains"] > 0.0);
    assert!(report.violations.is_empty(), "training set is clean");
}

#[test]
fn full_pipeline_coverage_is_high_on_regular_dataset() {
    let train: Vec<String> = (0..10)
        .map(|i| {
            format!(
                "hostname DEV{}\ninterface Loopback0\n ip address 10.14.14.{i}\nip prefix-list lo\n seq 10 permit 10.14.14.{i}/32\nrouter bgp 65015\n vlan {}\n  rd 10.14.14.117:10{}\n",
                1000 + i,
                250 + i,
                250 + i
            )
        })
        .collect();
    let ds = dataset(&train);
    let learned = learn(&ds, &LearnParams::default());
    let report = check(&learned, &ds);
    assert!(report.violations.is_empty(), "{:#?}", report.violations);
    let summary = report.coverage.summary();
    assert!(
        summary.fraction > 0.5,
        "expected decent coverage, got {} ({summary:#?})",
        summary.fraction
    );
}

// --- Report summaries and stats ---

#[test]
fn report_summaries_group_violations() {
    let set = contracts(vec![
        Contract::Present {
            pattern: "/needed".to_string(),
        },
        Contract::Type {
            pattern: "/ip address [?]".to_string(),
            hole: 0,
            valid: vec![ValueType::Ip4],
        },
    ]);
    let ds = dataset(&[
        "ip address 10.0.0.0/24\n".to_string(),
        "something\n".to_string(),
    ]);
    let report = check(&set, &ds);
    let by_category = report.violations_by_category();
    assert_eq!(by_category["present"], 2);
    assert_eq!(by_category["type"], 1);
    let by_config = report.violations_by_config();
    assert_eq!(by_config.len(), 2);
    assert_eq!(by_config[0], ("dev0".to_string(), 2));
    assert_eq!(by_config[1], ("dev1".to_string(), 1));
}

#[test]
fn learn_with_stats_reports_phases() {
    let texts: Vec<String> = (0..8)
        .map(|i| format!("vlan {}\nvni {}\n", 100 + i, 100 + i))
        .collect();
    let ds = dataset(&texts);
    let (contracts, stats) = concord_core::learn_with_stats(&ds, &LearnParams::default());
    assert!(!contracts.is_empty());
    assert!(stats.relational_before_minimization >= stats.relational_after_minimization);
    assert_eq!(
        contracts.relational_before_minimization,
        stats.relational_before_minimization
    );
    // Phase durations exist (may be tiny but are measured).
    assert!(
        stats.view_time + stats.simple_miners_time + stats.relational_time
            >= std::time::Duration::ZERO
    );
}

#[test]
fn range_contracts_learn_and_check() {
    let texts: Vec<String> = (0..8)
        .map(|i| format!("mtu {}\n", if i % 2 == 0 { 1500 } else { 9214 }))
        .collect();
    let ds = dataset(&texts);
    let params = LearnParams {
        enable_range: true,
        ..LearnParams::default()
    };
    let learned = learn(&ds, &params);
    assert!(learned
        .contracts
        .iter()
        .any(|c| matches!(c, Contract::Range { .. })));
    // In-range values pass; out-of-range values are flagged.
    assert!(check(&learned, &single("mtu 1500\n")).violations.is_empty());
    let report = check(&learned, &single("mtu 64000\n"));
    assert!(
        report.violations.iter().any(|v| v.category == "range"),
        "{:#?}",
        report.violations
    );
    // Range contracts never cover lines (like type contracts).
    let cov = check(&learned, &ds).coverage.summary();
    assert!(!cov.by_category.contains_key("range"));
}

#[test]
fn violations_by_config_groups_in_first_seen_order() {
    use concord_core::{CoverageReport, Violation};
    let mk = |config: &str, line_no: u32| Violation {
        contract_index: 0,
        category: "present".to_string(),
        config: config.to_string(),
        line_no: Some(line_no),
        line: String::new(),
        message: String::new(),
    };
    let report = concord_core::CheckReport {
        violations: vec![
            mk("zeta", 1),
            mk("alpha", 1),
            mk("zeta", 2),
            mk("alpha", 2),
            mk("zeta", 3),
        ],
        coverage: CoverageReport {
            per_config: Vec::new(),
        },
    };
    // Counts aggregate per config, but the grouping preserves the order
    // in which each config first appears in the violation list.
    assert_eq!(
        report.violations_by_config(),
        vec![("zeta".to_string(), 3), ("alpha".to_string(), 2)]
    );
}

#[test]
fn violation_categories_match_their_contracts() {
    let train: Vec<String> = (0..8)
        .map(|i| {
            format!(
                "interface Loopback0\n ip address 10.14.14.{i}\nip prefix-list lo\n seq 10 permit 10.14.14.{i}/32\n"
            )
        })
        .collect();
    let mut set = learn(&dataset(&train), &LearnParams::default());
    set.contracts.push(Contract::Present {
        pattern: "/router bgp [a:num]".to_string(),
    });

    let bad = single(
        "interface Loopback0\n ip address 10.14.14.99\nip prefix-list lo\n seq 10 permit 10.14.14.1/32\n",
    );
    let report = check(&set, &bad);
    assert!(!report.violations.is_empty());
    // Every violation's category is exactly its contract's category —
    // one source of truth (Contract::category), never a literal.
    for v in &report.violations {
        assert_eq!(
            v.category,
            set.contracts[v.contract_index].category(),
            "{v:#?}"
        );
    }
    let distinct: std::collections::BTreeSet<&str> = report
        .violations
        .iter()
        .map(|v| v.category.as_str())
        .collect();
    assert!(distinct.len() >= 2, "want several categories: {distinct:?}");
}
