//! Transport-level tests for the event-driven serve loop: request
//! pipelining equivalence, BATCH-vs-singles byte equality, binary-frame
//! round-trips against the text protocol, and a seeded garbage-frame
//! soak — all over real TCP sockets.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use concord_cli::protocol::{self, opcode};
use concord_rng::{Rng, SeedableRng, StdRng};

/// A `Write` the server thread and the test can share: the test polls
/// it for the `listening on <addr>` line to learn the port.
#[derive(Clone, Default)]
struct SharedOut(Arc<Mutex<Vec<u8>>>);

impl Write for SharedOut {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl SharedOut {
    fn text(&self) -> String {
        String::from_utf8_lossy(&self.0.lock().unwrap()).into_owned()
    }
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("concord-pipeline-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_corpus(dir: &Path) -> String {
    for i in 0..6 {
        std::fs::write(
            dir.join(format!("dev{i}.cfg")),
            format!(
                "hostname DEV{}\nrouter bgp 65000\nvlan {}\n",
                100 + i,
                250 + i
            ),
        )
        .unwrap();
    }
    format!("{}/*.cfg", dir.display())
}

/// Starts an in-process server thread and waits for its address. The
/// thread is leaked (the server runs until the test process exits).
fn spawn_server(configs: &str, extra: &[&str]) -> String {
    let mut argv = vec![
        "serve".to_string(),
        "--configs".to_string(),
        configs.to_string(),
        "--listen".to_string(),
        "127.0.0.1:0".to_string(),
    ];
    argv.extend(extra.iter().map(|s| s.to_string()));
    let out = SharedOut::default();
    {
        let mut out = out.clone();
        std::thread::spawn(move || concord_cli::run(&argv, &mut out));
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let text = out.text();
        if let Some(line) = text.lines().find(|l| l.starts_with("listening on ")) {
            return line["listening on ".len()..].to_string();
        }
        assert!(Instant::now() < deadline, "server never announced: {text}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn connect(addr: &str) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
}

/// Reads everything until the server closes the connection.
fn read_to_eof(stream: &mut TcpStream) -> Vec<u8> {
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).expect("read to eof");
    buf
}

/// Reads response lines through the terminating `ok`/`err` line,
/// preserving the exact bytes (including newlines).
fn read_block(reader: &mut BufReader<TcpStream>) -> String {
    let mut block = String::new();
    loop {
        let mut line = String::new();
        assert!(
            reader.read_line(&mut line).unwrap() > 0,
            "connection closed early: {block:?}"
        );
        let done = line.starts_with("ok ") || line.starts_with("err ");
        block.push_str(&line);
        if done {
            return block;
        }
    }
}

/// The command script both the serial and the pipelined session run:
/// reads, a mutation, and a re-check, ending in QUIT.
const SCRIPT: &[&str] = &[
    "LEARN\n",
    "CHECK\n",
    "GEN dev0\n",
    "UPSERT dev0\nhostname DEV100\nvlan 250\n.\n",
    "CHECK\n",
    "CONTRACTS\n",
    "GEN ghost\n",
    "QUIT\n",
];

#[test]
fn pipelined_session_is_byte_identical_to_serial() {
    let dir = tempdir("serial");
    let configs = write_corpus(&dir);

    // Serial: send one command, wait for its full response, repeat.
    let addr = spawn_server(&configs, &["--once"]);
    let stream = connect(&addr);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut serial = String::new();
    for cmd in SCRIPT {
        writer.write_all(cmd.as_bytes()).unwrap();
        writer.flush().unwrap();
        serial.push_str(&read_block(&mut reader));
    }
    drop(writer);
    assert!(serial.ends_with("ok bye\n"), "{serial}");

    // Pipelined: the whole script in one write against a fresh server,
    // responses must come back in order, byte-identical to serial.
    let addr = spawn_server(&configs, &["--once"]);
    let mut stream = connect(&addr);
    let script: String = SCRIPT.concat();
    stream.write_all(script.as_bytes()).unwrap();
    stream.flush().unwrap();
    let pipelined = String::from_utf8(read_to_eof(&mut stream)).unwrap();
    assert_eq!(pipelined, serial, "pipelining must not reorder or alter");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn batch_over_tcp_equals_the_same_singles() {
    let dir = tempdir("batch");
    let configs = write_corpus(&dir);
    let addr = spawn_server(&configs, &[]);

    let stream = connect(&addr);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut run = |cmd: &str| -> String {
        writer.write_all(cmd.as_bytes()).unwrap();
        writer.flush().unwrap();
        read_block(&mut reader)
    };

    // Warm: learn and settle the incremental cache so the read-only
    // commands below answer identically however they are grouped.
    assert!(run("LEARN\n").contains("ok learn"));
    run("CHECK\n");

    let singles: String = ["CHECK\n", "GEN dev0\n", "CONTRACTS\n", "GEN ghost\n"]
        .iter()
        .map(|cmd| run(cmd))
        .collect();

    // The same four commands as one BATCH: the response must be the
    // concatenation of the four single responses plus the trailer.
    writer
        .write_all(b"BATCH 4\nCHECK\nGEN dev0\nCONTRACTS\nGEN ghost\n")
        .unwrap();
    writer.flush().unwrap();
    let mut batched = String::new();
    loop {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).unwrap() > 0, "{batched:?}");
        let done = line.starts_with("ok batch ");
        batched.push_str(&line);
        if done {
            break;
        }
    }
    assert_eq!(batched, format!("{singles}ok batch 4\n"));

    writer.write_all(b"QUIT\n").unwrap();
    let _ = read_block(&mut reader);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Encodes the text `SCRIPT` equivalent as binary frames.
fn binary_script() -> Vec<u8> {
    let mut buf = Vec::new();
    protocol::encode_frame(opcode::LEARN, b"", b"", &mut buf);
    protocol::encode_frame(opcode::CHECK, b"", b"", &mut buf);
    protocol::encode_frame(opcode::GEN, b"dev0", b"", &mut buf);
    protocol::encode_frame(
        opcode::UPSERT,
        b"dev0",
        b"hostname DEV100\nvlan 250\n",
        &mut buf,
    );
    protocol::encode_frame(opcode::CHECK, b"", b"", &mut buf);
    protocol::encode_frame(opcode::CONTRACTS, b"", b"", &mut buf);
    protocol::encode_frame(opcode::GEN, b"ghost", b"", &mut buf);
    protocol::encode_frame(opcode::QUIT, b"", b"", &mut buf);
    buf
}

#[test]
fn binary_frames_round_trip_matching_the_text_protocol() {
    let dir = tempdir("binary");
    let configs = write_corpus(&dir);

    // Text session for the reference bytes.
    let addr = spawn_server(&configs, &["--once"]);
    let mut stream = connect(&addr);
    stream.write_all(SCRIPT.concat().as_bytes()).unwrap();
    let text = read_to_eof(&mut stream);

    // The same session as pipelined binary frames against a fresh
    // server: payloads concatenate to the exact text-protocol bytes.
    let addr = spawn_server(&configs, &["--once"]);
    let mut stream = connect(&addr);
    stream.write_all(&binary_script()).unwrap();
    let raw = read_to_eof(&mut stream);

    let mut offset = 0;
    let mut payloads = Vec::new();
    let mut statuses = Vec::new();
    while offset < raw.len() {
        let (status, payload, used) =
            protocol::decode_response(&raw[offset..]).expect("complete response frame");
        statuses.push(status);
        payloads.extend_from_slice(payload);
        offset += used;
    }
    assert_eq!(payloads, text, "binary payloads must match text bytes");
    // GEN ghost is the only failing command in the script.
    assert_eq!(statuses.iter().filter(|&&s| s != 0).count(), 1);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn seeded_garbage_frames_never_corrupt_the_engine() {
    let dir = tempdir("fuzz");
    let configs = write_corpus(&dir);
    let addr = spawn_server(&configs, &["--workers", "2"]);

    // Establish the reference report a clean client must always see.
    let stream = connect(&addr);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    writer.write_all(b"LEARN\nCHECK\nCHECK\n").unwrap();
    let _ = read_block(&mut reader);
    let _ = read_block(&mut reader);
    let want = read_block(&mut reader);
    assert!(want.contains("ok check 0 violations"), "{want}");
    writer.write_all(b"QUIT\n").unwrap();
    let _ = read_block(&mut reader);

    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for round in 0..24 {
        // One hostile binary connection per round: a 0xC3 magic byte
        // followed by random garbage — truncated headers, absurd
        // lengths, unknown opcodes, raw noise.
        let mut frame = vec![protocol::FRAME_REQUEST];
        let len = rng.gen_range(0..64usize);
        for _ in 0..len {
            frame.push(rng.gen_range(0..=255u64) as u8);
        }
        let mut hostile = connect(&addr);
        let _ = hostile.write_all(&frame);
        if rng.gen_bool(0.5) {
            // Half the rounds also slam the connection shut mid-frame.
            drop(hostile);
        } else {
            let _ = read_to_eof(&mut hostile);
        }

        // A clean text client still sees the byte-identical report.
        let stream = connect(&addr);
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        writer.write_all(b"CHECK\nQUIT\n").unwrap();
        let after = read_block(&mut reader);
        assert_eq!(after, want, "round {round}: report drifted");
        let _ = read_block(&mut reader);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
