//! Integration tests driving the `concord` CLI end to end over generated
//! datasets written to disk — the workflow of Figure 2.

use concord_datagen::{faults, generate_role, standard_roles};

fn run(argv: &[String]) -> (i32, String) {
    let mut out = Vec::new();
    let code = concord_cli::run(argv, &mut out);
    (code, String::from_utf8(out).unwrap())
}

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

struct TempTree(std::path::PathBuf);

impl TempTree {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("concord-it-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempTree(dir)
    }

    fn path(&self, rel: &str) -> String {
        self.0.join(rel).to_string_lossy().into_owned()
    }
}

impl Drop for TempTree {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Writes a generated role to disk as the CLI expects it.
fn write_role(tree: &TempTree, sub: &str) -> concord_datagen::GeneratedRole {
    let spec = standard_roles(0.5)
        .into_iter()
        .find(|s| s.name == "E1")
        .unwrap();
    let role = generate_role(&spec, 77);
    std::fs::create_dir_all(tree.0.join(sub)).unwrap();
    for (name, text) in &role.configs {
        std::fs::write(tree.0.join(sub).join(format!("{name}.cfg")), text).unwrap();
    }
    for (name, text) in &role.metadata {
        std::fs::write(tree.0.join(sub).join(name), text).unwrap();
    }
    role
}

#[test]
fn figure_2_workflow_over_files() {
    let tree = TempTree::new("fig2");
    let role = write_role(&tree, "train");
    let contracts = tree.path("contracts.json");

    // concord learn.
    let (code, out) = run(&args(&[
        "learn",
        "--configs",
        &tree.path("train/*.cfg"),
        "--metadata",
        &tree.path("train/*.yaml"),
        "--out",
        &contracts,
        "--constants",
    ]));
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("learned"));

    // concord check on the clean training files: only the planted type
    // anomaly may be flagged.
    let (code, out) = run(&args(&[
        "check",
        "--configs",
        &tree.path("train/*.cfg"),
        "--metadata",
        &tree.path("train/*.yaml"),
        "--contracts",
        &contracts,
        "--disable-ordering",
    ]));
    let non_type: Vec<&str> = out
        .lines()
        .filter(|l| l.contains('[') && !l.contains("[type]"))
        .collect();
    assert!(non_type.is_empty(), "{out}");
    let _ = code; // 0 or 1 depending on the anomaly flag.

    // Inject the §5.5 missing-aggregate incident into one device.
    let (victim, text) = &role.configs[0];
    let injected = faults::inject(text, faults::incidents::MISSING_AGGREGATE).unwrap();
    std::fs::create_dir_all(tree.0.join("test")).unwrap();
    std::fs::write(tree.0.join(format!("test/{victim}.cfg")), injected.text).unwrap();
    for (name, text) in &role.metadata {
        std::fs::write(tree.0.join("test").join(name), text).unwrap();
    }

    let violations = tree.path("violations.json");
    let html = tree.path("report.html");
    let (code, out) = run(&args(&[
        "check",
        "--configs",
        &tree.path("test/*.cfg"),
        "--metadata",
        &tree.path("test/*.yaml"),
        "--contracts",
        &contracts,
        "--disable-ordering",
        "--out",
        &violations,
        "--html",
        &html,
    ]));
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("aggregate-address"), "{out}");
    assert!(std::fs::read_to_string(&violations)
        .unwrap()
        .contains("aggregate-address"));
    assert!(std::fs::read_to_string(&html).unwrap().contains("<table"));
}

#[test]
fn coverage_subcommand_reports() {
    let tree = TempTree::new("cov");
    write_role(&tree, "train");
    let contracts = tree.path("contracts.json");
    let (code, _) = run(&args(&[
        "learn",
        "--configs",
        &tree.path("train/*.cfg"),
        "--metadata",
        &tree.path("train/*.yaml"),
        "--out",
        &contracts,
        "--constants",
    ]));
    assert_eq!(code, 0);

    let (code, out) = run(&args(&[
        "coverage",
        "--configs",
        &tree.path("train/*.cfg"),
        "--metadata",
        &tree.path("train/*.yaml"),
        "--contracts",
        &contracts,
        "--uncovered",
        "5",
    ]));
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("coverage:"), "{out}");
    assert!(out.contains("present"), "{out}");
    assert!(out.contains("uncovered lines"), "{out}");
}

#[test]
fn parallelism_flag_produces_identical_results() {
    let tree = TempTree::new("par");
    write_role(&tree, "train");
    let c1 = tree.path("c1.json");
    let c8 = tree.path("c8.json");
    let (code, _) = run(&args(&[
        "learn",
        "--configs",
        &tree.path("train/*.cfg"),
        "--out",
        &c1,
    ]));
    assert_eq!(code, 0);
    let (code, _) = run(&args(&[
        "learn",
        "--configs",
        &tree.path("train/*.cfg"),
        "--out",
        &c8,
        "--parallelism",
        "8",
    ]));
    assert_eq!(code, 0);
    assert_eq!(
        std::fs::read_to_string(&c1).unwrap(),
        std::fs::read_to_string(&c8).unwrap()
    );
}

#[test]
fn custom_tokens_change_learned_patterns() {
    let tree = TempTree::new("tok");
    std::fs::create_dir_all(tree.0.join("cfg")).unwrap();
    for i in 0..6 {
        std::fs::write(
            tree.0.join(format!("cfg/dev{i}.cfg")),
            format!("interface Et{i}\nmtu 9214\n"),
        )
        .unwrap();
    }
    let tokens = tree.path("tokens.txt");
    std::fs::write(&tokens, "iface [eE]t[0-9]+\n").unwrap();
    let with = tree.path("with.json");
    let without = tree.path("without.json");

    let (code, _) = run(&args(&[
        "learn",
        "--configs",
        &tree.path("cfg/*.cfg"),
        "--out",
        &without,
    ]));
    assert_eq!(code, 0);
    let (code, _) = run(&args(&[
        "learn",
        "--configs",
        &tree.path("cfg/*.cfg"),
        "--tokens",
        &tokens,
        "--out",
        &with,
    ]));
    assert_eq!(code, 0);

    let with_text = std::fs::read_to_string(&with).unwrap();
    let without_text = std::fs::read_to_string(&without).unwrap();
    assert!(with_text.contains("[a:iface]"), "{with_text}");
    assert!(!without_text.contains("[a:iface]"));
}
