//! End-to-end smoke test of `concord serve --listen`: boot a real TCP
//! server on an OS-assigned port, drive a scripted session over the
//! socket, and check the deterministic protocol responses.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A `Write` the server thread and the test can share: the test polls it
/// for the `listening on <addr>` line to learn the port.
#[derive(Clone, Default)]
struct SharedOut(Arc<Mutex<Vec<u8>>>);

impl Write for SharedOut {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl SharedOut {
    fn text(&self) -> String {
        String::from_utf8_lossy(&self.0.lock().unwrap()).into_owned()
    }
}

#[test]
fn tcp_session_round_trips() {
    let dir = std::env::temp_dir().join(format!("concord-serve-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    for i in 0..6 {
        std::fs::write(
            dir.join(format!("dev{i}.cfg")),
            format!(
                "hostname DEV{}\nrouter bgp 65000\nvlan {}\n",
                100 + i,
                250 + i
            ),
        )
        .unwrap();
    }
    let configs = format!("{}/*.cfg", dir.display());

    let out = SharedOut::default();
    let server = {
        let mut out = out.clone();
        let argv: Vec<String> = [
            "serve",
            "--configs",
            &configs,
            "--listen",
            "127.0.0.1:0",
            "--once",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        std::thread::spawn(move || concord_cli::run(&argv, &mut out))
    };

    // Wait for the server to announce its port.
    let deadline = Instant::now() + Duration::from_secs(10);
    let addr = loop {
        let text = out.text();
        if let Some(line) = text.lines().find(|l| l.starts_with("listening on ")) {
            break line["listening on ".len()..].to_string();
        }
        assert!(Instant::now() < deadline, "server never announced: {text}");
        std::thread::sleep(Duration::from_millis(10));
    };

    let stream = TcpStream::connect(&addr).expect("connect to serve");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut send = |cmd: &str| {
        writer.write_all(cmd.as_bytes()).unwrap();
        writer.flush().unwrap();
    };
    let read_until_ok = |reader: &mut BufReader<TcpStream>| -> Vec<String> {
        let mut lines = Vec::new();
        loop {
            let mut line = String::new();
            assert!(
                reader.read_line(&mut line).unwrap() > 0,
                "connection closed early: {lines:?}"
            );
            let trimmed = line.trim_end().to_string();
            let done = trimmed.starts_with("ok ") || trimmed.starts_with("err ");
            lines.push(trimmed);
            if done {
                return lines;
            }
        }
    };

    send("LEARN\n");
    let learn = read_until_ok(&mut reader);
    assert!(learn.last().unwrap().starts_with("ok learn"), "{learn:?}");

    send("CHECK\n");
    let check = read_until_ok(&mut reader);
    let first_check = check.last().unwrap();
    assert!(
        first_check.starts_with("ok check 0 violations"),
        "{check:?}"
    );
    assert!(first_check.ends_with("dirty=6 reused=0"), "{check:?}");

    // Break one device over the wire, then re-check: only it is dirty.
    send("UPSERT dev0\nhostname DEV100\nvlan 250\n.\n");
    let upsert = read_until_ok(&mut reader);
    assert!(
        upsert.last().unwrap().starts_with("ok upsert dev0"),
        "{upsert:?}"
    );

    send("CHECK\n");
    let recheck = read_until_ok(&mut reader);
    assert!(
        recheck.iter().any(|l| l.contains("missing required line")),
        "{recheck:?}"
    );
    assert!(
        recheck.last().unwrap().contains("dirty=1 reused=5"),
        "{recheck:?}"
    );

    send("STATS\n");
    let stats = read_until_ok(&mut reader);
    assert!(stats.last().unwrap().starts_with("ok stats {"), "{stats:?}");
    assert!(
        stats.last().unwrap().contains("\"storage\""),
        "stats must carry the storage health object: {stats:?}"
    );

    send("HEALTH\n");
    let health = read_until_ok(&mut reader);
    assert_eq!(
        health.last().unwrap(),
        "ok health healthy faults=0 retries=0 transitions=0 recoveries=0",
        "{health:?}"
    );

    send("QUIT\n");
    let bye = read_until_ok(&mut reader);
    assert_eq!(bye.last().unwrap(), "ok bye");

    let code = server.join().expect("server thread");
    assert_eq!(code, 0, "serve --once exits cleanly: {}", out.text());
    let _ = std::fs::remove_dir_all(&dir);
}
