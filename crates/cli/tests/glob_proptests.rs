//! Differential property tests for the glob segment matcher against a
//! naive recursive reference implementation.

// NOTE: the hermetic build has no `proptest`; enable the `proptests`
// feature after vendoring it to run this suite.
#![cfg(feature = "proptests")]

use proptest::prelude::*;

/// Naive recursive wildcard matcher: the specification.
fn reference_match(pattern: &[char], name: &[char]) -> bool {
    match (pattern.split_first(), name.split_first()) {
        (None, None) => true,
        (None, Some(_)) => false,
        (Some(('*', rest)), _) => {
            // Zero characters, or one character consumed.
            reference_match(rest, name)
                || name
                    .split_first()
                    .is_some_and(|(_, tail)| reference_match(pattern, tail))
        }
        (Some(('?', rest)), Some((_, tail))) => reference_match(rest, tail),
        (Some((p, rest)), Some((n, tail))) => p == n && reference_match(rest, tail),
        (Some(_), None) => false,
    }
}

/// Drives the public glob through the filesystem: creates a file named
/// `name` and checks whether `pattern` matches it.
fn glob_matches(pattern: &str, name: &str) -> bool {
    let dir = std::env::temp_dir().join(format!(
        "concord-globprop-{}-{:x}",
        std::process::id(),
        fxhash(pattern) ^ fxhash(name)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join(name), "x").unwrap();
    let hits = concord_cli::expand_glob(&format!("{}/{pattern}", dir.display())).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    !hits.is_empty()
}

fn fxhash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The filesystem glob agrees with the reference wildcard matcher.
    #[test]
    fn glob_agrees_with_reference(
        pattern in "[ab?*]{0,6}",
        name in "[ab]{1,6}",
    ) {
        prop_assume!(!pattern.is_empty());
        let p: Vec<char> = pattern.chars().collect();
        let n: Vec<char> = name.chars().collect();
        let expected = reference_match(&p, &n);
        prop_assert_eq!(
            glob_matches(&pattern, &name),
            expected,
            "pattern {:?} vs name {:?}", pattern, name
        );
    }

    /// A literal name always matches itself and nothing with a different
    /// literal.
    #[test]
    fn literal_globs_are_exact(name in "[a-z]{1,8}", other in "[a-z]{1,8}") {
        prop_assert!(glob_matches(&name, &name));
        if name != other {
            prop_assert!(!glob_matches(&name, &other));
        }
    }
}
