//! Robustness tests for `concord serve`: concurrent clients with a
//! misbehaving peer, bounded-queue load shedding, kill -9 + restart
//! recovery through `--state-dir`, and a seeded protocol-garbage soak.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A `Write` the server thread and the test can share: the test polls
/// it for the `listening on <addr>` line to learn the port.
#[derive(Clone, Default)]
struct SharedOut(Arc<Mutex<Vec<u8>>>);

impl Write for SharedOut {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl SharedOut {
    fn text(&self) -> String {
        String::from_utf8_lossy(&self.0.lock().unwrap()).into_owned()
    }
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("concord-robust-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_corpus(dir: &Path) -> String {
    for i in 0..6 {
        std::fs::write(
            dir.join(format!("dev{i}.cfg")),
            format!(
                "hostname DEV{}\nrouter bgp 65000\nvlan {}\n",
                100 + i,
                250 + i
            ),
        )
        .unwrap();
    }
    format!("{}/*.cfg", dir.display())
}

/// Starts an in-process server thread and waits for its address. The
/// thread is leaked (the server runs until the test process exits).
fn spawn_server(argv: Vec<String>) -> (String, SharedOut) {
    let out = SharedOut::default();
    {
        let mut out = out.clone();
        std::thread::spawn(move || concord_cli::run(&argv, &mut out));
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    let addr = loop {
        let text = out.text();
        if let Some(line) = text.lines().find(|l| l.starts_with("listening on ")) {
            break line["listening on ".len()..].to_string();
        }
        assert!(Instant::now() < deadline, "server never announced: {text}");
        std::thread::sleep(Duration::from_millis(10));
    };
    (addr, out)
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    fn send(&mut self, s: &str) -> std::io::Result<()> {
        self.writer.write_all(s.as_bytes())?;
        self.writer.flush()
    }

    /// Reads response lines through the terminating `ok`/`err` line.
    fn read_block(&mut self) -> std::io::Result<Vec<String>> {
        let mut lines = Vec::new();
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    format!("connection closed early: {lines:?}"),
                ));
            }
            let trimmed = line.trim_end().to_string();
            let done = trimmed.starts_with("ok ") || trimmed.starts_with("err ") || trimmed == "ok";
            lines.push(trimmed);
            if done {
                return Ok(lines);
            }
        }
    }
}

#[test]
fn eight_clients_survive_a_misbehaving_peer() {
    let dir = tempdir("clients");
    let configs = write_corpus(&dir);
    let argv: Vec<String> = [
        "serve",
        "--configs",
        &configs,
        "--listen",
        "127.0.0.1:0",
        "--workers",
        "8",
        "--deadline-ms",
        "800",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let (addr, _out) = spawn_server(argv);

    // Setup: learn once, and capture the steady-state CHECK block every
    // well-behaved client must see byte-for-byte.
    let mut setup = Client::connect(&addr).unwrap();
    setup.send("LEARN\n").unwrap();
    assert!(setup
        .read_block()
        .unwrap()
        .last()
        .unwrap()
        .starts_with("ok learn"));
    setup.send("CHECK\n").unwrap();
    setup.read_block().unwrap(); // first check: everything dirty
    setup.send("CHECK\n").unwrap();
    let clean_check = setup.read_block().unwrap();
    assert!(
        clean_check
            .last()
            .unwrap()
            .starts_with("ok check 0 violations"),
        "{clean_check:?}"
    );
    setup.send("QUIT\n").unwrap();
    setup.read_block().unwrap();

    // Misbehaving peer 1: slow-loris. Trickles a partial command slower
    // than the deadline; the server must cut it loose, not stall a
    // worker forever.
    let loris_addr = addr.clone();
    let loris = std::thread::spawn(move || {
        let mut client = Client::connect(&loris_addr).unwrap();
        client.send("CHE").unwrap();
        let mut cut_off = false;
        for _ in 0..30 {
            std::thread::sleep(Duration::from_millis(100));
            if client.send("C").is_err() {
                cut_off = true;
                break;
            }
        }
        if !cut_off {
            // The server may have answered instead of resetting; either
            // way the connection must be finished.
            let mut buf = String::new();
            // An Err here is a reset, which also counts as a cut-off.
            if client.reader.read_to_string(&mut buf).is_ok() {
                assert!(buf.contains("err deadline"), "loris got: {buf:?}");
            }
        }
    });

    // Misbehaving peer 2: oversized request line, then a normal command
    // on the same connection (the session must survive the rejection).
    let big_addr = addr.clone();
    let oversized = std::thread::spawn(move || {
        let mut client = Client::connect(&big_addr).unwrap();
        let mut line = vec![b'x'; 128 * 1024];
        line.push(b'\n');
        client.writer.write_all(&line).unwrap();
        client.writer.flush().unwrap();
        let block = client.read_block().unwrap();
        assert!(
            block.last().unwrap().starts_with("err too-large"),
            "{block:?}"
        );
        client.send("GEN dev1\nQUIT\n").unwrap();
        let gen = client.read_block().unwrap();
        assert_eq!(gen.last().unwrap(), "ok gen dev1 0");
    });

    // Eight well-behaved clients, concurrent with the misbehaving pair.
    // `err busy` is legitimate load shedding, so clients retry.
    let mut clients = Vec::new();
    for c in 0..8 {
        let addr = addr.clone();
        let want_check = clean_check.clone();
        clients.push(std::thread::spawn(move || {
            let deadline = Instant::now() + Duration::from_secs(20);
            loop {
                assert!(Instant::now() < deadline, "client {c} starved");
                let attempt = (|| -> std::io::Result<bool> {
                    let mut client = Client::connect(&addr)?;
                    client.send("GEN dev0\nCHECK\nQUIT\n")?;
                    let gen = client.read_block()?;
                    if gen.last().map(String::as_str) == Some("err busy") {
                        return Ok(false); // shed: retry
                    }
                    assert_eq!(gen.last().unwrap(), "ok gen dev0 0", "client {c}: {gen:?}");
                    let check = client.read_block()?;
                    assert_eq!(check, want_check, "client {c}");
                    let bye = client.read_block()?;
                    assert_eq!(bye.last().unwrap(), "ok bye", "client {c}");
                    Ok(true)
                })();
                match attempt {
                    Ok(true) => return,
                    Ok(false) | Err(_) => std::thread::sleep(Duration::from_millis(50)),
                }
            }
        }));
    }

    for handle in clients {
        handle.join().expect("well-behaved client");
    }
    oversized.join().expect("oversized client");
    loris.join().expect("slow-loris client");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn saturated_pool_sheds_load_with_err_busy() {
    let dir = tempdir("busy");
    let configs = write_corpus(&dir);
    let argv: Vec<String> = [
        "serve",
        "--configs",
        &configs,
        "--listen",
        "127.0.0.1:0",
        "--workers",
        "1",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let (addr, _out) = spawn_server(argv);

    // A occupies the only worker; B fills the one-deep hand-off queue.
    let mut a = Client::connect(&addr).unwrap();
    std::thread::sleep(Duration::from_millis(200));
    let mut b = Client::connect(&addr).unwrap();
    std::thread::sleep(Duration::from_millis(100));

    // C must be shed immediately with a structured error.
    let mut c = Client::connect(&addr).unwrap();
    let shed = c.read_block().unwrap();
    assert_eq!(shed.last().unwrap(), "err busy", "{shed:?}");

    // Once A quits, the queued B is served normally.
    a.send("QUIT\n").unwrap();
    assert_eq!(a.read_block().unwrap().last().unwrap(), "ok bye");
    b.send("GEN dev0\nQUIT\n").unwrap();
    assert_eq!(b.read_block().unwrap().last().unwrap(), "ok gen dev0 0");
    assert_eq!(b.read_block().unwrap().last().unwrap(), "ok bye");

    // The shed shows up in the robustness counters.
    let mut d = Client::connect(&addr).unwrap();
    d.send("STATS\nQUIT\n").unwrap();
    let stats = d.read_block().unwrap();
    let json_part = stats
        .last()
        .unwrap()
        .strip_prefix("ok stats ")
        .expect("stats line");
    let json = concord_json::Json::parse(json_part).unwrap();
    assert!(
        json["robustness"]["requests_rejected"].as_u64().unwrap() >= 1,
        "{json_part}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Spawns the real `concord` binary serving on an OS port, returning
/// the child and its announced address.
fn spawn_binary(args: &[&str]) -> (Child, BufReader<std::process::ChildStdout>, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_concord"))
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn concord serve");
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    let addr = loop {
        line.clear();
        assert!(
            stdout.read_line(&mut line).unwrap() > 0,
            "server exited before announcing"
        );
        if let Some(rest) = line.trim_end().strip_prefix("listening on ") {
            break rest.to_string();
        }
    };
    (child, stdout, addr)
}

/// The mutation script both the interrupted and the control run apply.
fn apply_edits(client: &mut Client) {
    client.send("LEARN\n").unwrap();
    assert!(client
        .read_block()
        .unwrap()
        .last()
        .unwrap()
        .starts_with("ok learn"));
    client
        .send("UPSERT dev0\nhostname DEV100\nvlan 250\n.\n")
        .unwrap();
    assert!(client
        .read_block()
        .unwrap()
        .last()
        .unwrap()
        .starts_with("ok upsert dev0"));
    client.send("REMOVE dev5\n").unwrap();
    assert_eq!(
        client.read_block().unwrap().last().unwrap(),
        "ok remove dev5"
    );
}

/// Reads the CHECK block and the STATS generations from a session.
fn observe(client: &mut Client) -> (Vec<String>, String, concord_json::Json) {
    client.send("CHECK\n").unwrap();
    let check = client.read_block().unwrap();
    client.send("STATS\n").unwrap();
    let stats = client.read_block().unwrap();
    let json_part = stats
        .last()
        .unwrap()
        .strip_prefix("ok stats ")
        .expect("stats line")
        .to_string();
    let json = concord_json::Json::parse(&json_part).unwrap();
    let generations = json["generations"].render();
    (check, generations, json)
}

#[test]
fn kill_nine_then_restart_resumes_byte_identical() {
    let corpus_dir = tempdir("kill-corpus");
    let configs = write_corpus(&corpus_dir);
    let state_a = tempdir("kill-state-a");
    let state_b = tempdir("kill-state-b");
    let state_a_arg = state_a.display().to_string();
    let state_b_arg = state_b.display().to_string();

    // Interrupted run: apply the edits, then SIGKILL without QUIT or
    // an explicit checkpoint — recovery must come from the WAL.
    let (mut child, _stdout, addr) = spawn_binary(&[
        "serve",
        "--configs",
        &configs,
        "--state-dir",
        &state_a_arg,
        "--listen",
        "127.0.0.1:0",
    ]);
    let mut client = Client::connect(&addr).unwrap();
    apply_edits(&mut client);
    child.kill().expect("kill -9");
    child.wait().expect("reap");

    // Restart on the same state dir (no --configs: the durable state is
    // the truth) and observe.
    let (mut child, _stdout, addr) = spawn_binary(&[
        "serve",
        "--state-dir",
        &state_a_arg,
        "--listen",
        "127.0.0.1:0",
        "--once",
    ]);
    let mut client = Client::connect(&addr).unwrap();
    let (check_a, gens_a, json_a) = observe(&mut client);
    client.send("QUIT\n").unwrap();
    let _ = client.read_block();
    child.wait().expect("reap restarted server");

    // Control run: the same edits, never interrupted.
    let (mut child, _stdout, addr) = spawn_binary(&[
        "serve",
        "--configs",
        &configs,
        "--state-dir",
        &state_b_arg,
        "--listen",
        "127.0.0.1:0",
        "--once",
    ]);
    let mut client = Client::connect(&addr).unwrap();
    apply_edits(&mut client);
    let (check_b, gens_b, _json_b) = observe(&mut client);
    client.send("QUIT\n").unwrap();
    let _ = client.read_block();
    child.wait().expect("reap control server");

    assert_eq!(
        check_a, check_b,
        "post-restart CHECK must be byte-identical"
    );
    assert_eq!(gens_a, gens_b, "post-restart generations must match");
    assert!(
        check_a.iter().any(|l| l.contains("missing required line")),
        "the edit must actually trip a contract: {check_a:?}"
    );
    assert!(
        json_a["robustness"]["wal_replays"].as_u64().unwrap() >= 1,
        "restart must have replayed the WAL"
    );

    for dir in [&corpus_dir, &state_a, &state_b] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn protocol_garbage_soak_leaves_reports_byte_identical() {
    use concord_engine::fault::FaultPlan;
    use concord_engine::{EngineOptions, ResilientEngine};
    use std::io::Cursor;

    let corpus: Vec<(String, String)> = (0..6)
        .map(|i| {
            (
                format!("dev{i}"),
                format!(
                    "hostname DEV{}\nrouter bgp 65000\nvlan {}\n",
                    100 + i,
                    250 + i
                ),
            )
        })
        .collect();
    let engine = ResilientEngine::new(
        &corpus,
        &[],
        concord_lexer::Lexer::standard(),
        EngineOptions::default(),
    )
    .unwrap();
    let limits = concord_cli::ServeLimits {
        max_line: 1024,
        max_body: 4096,
        ..Default::default()
    };
    let shared = concord_cli::ServeShared::new(engine, limits, true);

    let session = |script: &[u8]| -> String {
        let mut out = Vec::new();
        concord_cli::serve_session(&shared, Cursor::new(script.to_vec()), &mut out).unwrap();
        String::from_utf8_lossy(&out).into_owned()
    };

    // The invariant signature: violations + the report summary, minus
    // the dirty/reused performance counters (a post-panic rebuild
    // legitimately recomputes everything).
    let signature = |out: &str| -> String {
        out.lines()
            .filter(|l| !l.starts_with("ok ") || l.starts_with("ok check"))
            .filter(|l| !l.starts_with("err"))
            .map(|l| l.split("; dirty=").next().unwrap())
            .collect::<Vec<_>>()
            .join("\n")
    };

    let baseline = session(b"LEARN\nCHECK\nQUIT\n");
    let want = signature(&baseline);
    assert!(want.contains("ok check 0 violations"), "{baseline}");

    let mut plan = FaultPlan::new(7);
    for step in 0..24 {
        // One hostile session per step: garbage, an oversized line, a
        // mid-UPSERT disconnect, or an injected engine panic.
        let mut script: Vec<u8> = Vec::new();
        match step % 4 {
            0 => {
                script.extend_from_slice(&plan.garbage_line(200));
                script.push(b'\n');
                script.extend_from_slice(b"QUIT\n");
            }
            1 => {
                script.extend_from_slice(&plan.oversized_line(1024));
                script.push(b'\n');
                script.extend_from_slice(b"QUIT\n");
            }
            2 => {
                // Disconnect mid-UPSERT: the script simply ends.
                script.extend_from_slice(b"UPSERT dev0\nhostname HACKED\n");
            }
            _ => {
                script.extend_from_slice(b"FAULT check\nCHECK\nQUIT\n");
            }
        }
        let hostile = session(&script);
        assert!(
            !hostile.contains("ok upsert"),
            "step {step}: hostile input mutated the engine: {hostile}"
        );

        // After every hostile session, a clean client still gets the
        // exact same report.
        let after = session(b"CHECK\nQUIT\n");
        assert_eq!(
            signature(&after),
            want,
            "step {step}: report drifted after hostile session {script:?}"
        );
    }
}
