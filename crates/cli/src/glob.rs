//! A small file glob: `*` and `?` within a path segment, `**` across
//! directories.

use std::io;
use std::path::{Path, PathBuf};

/// Expands a glob pattern into the matching file paths (sorted).
///
/// Supported syntax per path segment: `*` (any run of characters), `?`
/// (one character); a segment of exactly `**` matches zero or more
/// directories (and, as the final segment, every file at any depth).
/// Segments without metacharacters must match exactly.
///
/// A pattern without metacharacters behaves like a plain file path.
///
/// # Examples
///
/// ```no_run
/// let files = concord_cli::expand_glob("configs/**/*.cfg").unwrap();
/// ```
pub fn expand_glob(pattern: &str) -> io::Result<Vec<PathBuf>> {
    let (root, segments) = split_pattern(pattern);
    let mut out = Vec::new();
    walk(&root, &segments, &mut out)?;
    out.sort();
    out.dedup();
    Ok(out)
}

/// Splits the pattern into a literal root and the glob segments.
fn split_pattern(pattern: &str) -> (PathBuf, Vec<String>) {
    let mut root = if pattern.starts_with('/') {
        PathBuf::from("/")
    } else {
        PathBuf::from(".")
    };
    let mut segments: Vec<String> = Vec::new();
    for part in pattern.split('/') {
        if part.is_empty() {
            continue;
        }
        if segments.is_empty() && !has_meta(part) {
            root.push(part);
        } else {
            segments.push(part.to_string());
        }
    }
    (root, segments)
}

fn has_meta(segment: &str) -> bool {
    segment.contains(['*', '?'])
}

fn walk(dir: &Path, segments: &[String], out: &mut Vec<PathBuf>) -> io::Result<()> {
    let Some(segment) = segments.first() else {
        if dir.is_file() {
            out.push(dir.to_path_buf());
        }
        return Ok(());
    };
    let rest = &segments[1..];

    if segment == "**" {
        // Zero directories...
        walk(dir, rest, out)?;
        if dir.is_dir() {
            for entry in std::fs::read_dir(dir)? {
                let path = entry?.path();
                if path.is_dir() {
                    // ...or recurse into every subdirectory.
                    walk(&path, segments, out)?;
                } else if rest.is_empty() && path.is_file() {
                    // A trailing `**` matches every file at any depth.
                    out.push(path);
                }
            }
        }
        return Ok(());
    }

    if !has_meta(segment) {
        return walk(&dir.join(segment), rest, out);
    }

    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().map(|n| n.to_string_lossy().into_owned()) else {
            continue;
        };
        if segment_matches(segment, &name) {
            if rest.is_empty() {
                if path.is_file() {
                    out.push(path);
                }
            } else {
                walk(&path, rest, out)?;
            }
        }
    }
    Ok(())
}

/// Matches one glob segment against a file name (`*`, `?` wildcards).
fn segment_matches(pattern: &str, name: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let n: Vec<char> = name.chars().collect();
    // Classic iterative wildcard match with backtracking over `*`.
    let (mut pi, mut ni) = (0usize, 0usize);
    let (mut star_pi, mut star_ni) = (usize::MAX, 0usize);
    while ni < n.len() {
        if pi < p.len() && (p[pi] == n[ni] || p[pi] == '?') {
            pi += 1;
            ni += 1;
        } else if pi < p.len() && p[pi] == '*' {
            star_pi = pi;
            star_ni = ni;
            pi += 1;
        } else if star_pi != usize::MAX {
            pi = star_pi + 1;
            star_ni += 1;
            ni = star_ni;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '*' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_matching() {
        assert!(segment_matches("*.cfg", "dev1.cfg"));
        assert!(!segment_matches("*.cfg", "dev1.txt"));
        assert!(segment_matches("dev?.cfg", "dev1.cfg"));
        assert!(!segment_matches("dev?.cfg", "dev11.cfg"));
        assert!(segment_matches("*", "anything"));
        assert!(segment_matches("a*b*c", "aXXbYYc"));
        assert!(!segment_matches("a*b*c", "aXXbYY"));
        assert!(segment_matches("exact", "exact"));
        assert!(!segment_matches("exact", "exactly"));
        assert!(segment_matches("**tar", "xtar"));
    }

    #[test]
    fn expands_files_in_tree() {
        let dir = std::env::temp_dir().join(format!("concord-glob-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("sub/deeper")).unwrap();
        std::fs::write(dir.join("a.cfg"), "x").unwrap();
        std::fs::write(dir.join("b.cfg"), "x").unwrap();
        std::fs::write(dir.join("c.txt"), "x").unwrap();
        std::fs::write(dir.join("sub/d.cfg"), "x").unwrap();
        std::fs::write(dir.join("sub/deeper/e.cfg"), "x").unwrap();

        let flat = expand_glob(&format!("{}/*.cfg", dir.display())).unwrap();
        assert_eq!(flat.len(), 2);

        let deep = expand_glob(&format!("{}/**/*.cfg", dir.display())).unwrap();
        assert_eq!(deep.len(), 4);

        let one = expand_glob(&format!("{}/sub/d.cfg", dir.display())).unwrap();
        assert_eq!(one.len(), 1);

        let none = expand_glob(&format!("{}/*.yaml", dir.display())).unwrap();
        assert!(none.is_empty());

        let question = expand_glob(&format!("{}/?.cfg", dir.display())).unwrap();
        assert_eq!(question.len(), 2);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_is_empty_not_error() {
        let files = expand_glob("/definitely-not-a-dir-concord/*.cfg").unwrap();
        assert!(files.is_empty());
    }
}
