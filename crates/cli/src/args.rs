//! Hand-rolled argument parsing for the `concord` tool.

use concord_core::LearnParams;

/// The usage text printed by `concord help`.
pub const USAGE: &str = "\
concord - learn and check network configuration contracts

USAGE:
  concord learn --configs <glob> [--metadata <glob>] [--tokens <file>]
                [--out <file>] [--support N] [--confidence F]
                [--score-threshold F] [--parallelism N] [--constants]
                [--ranges] [--no-embed] [--no-minimize]
                [--stats text|json] [--disable <category>]...
  concord check --configs <glob> --contracts <file> [--metadata <glob>]
                [--tokens <file>] [--out <file>] [--html <file>]
                [--suppress <file>] [--parallelism N]
                [--disable-ordering] [--no-embed] [--stats text|json]
  concord ci    --pre <glob> --post <glob> [--metadata <glob>]
                [--tokens <file>] [--suppress <file>] [--keep-ordering]
                [--support N] [--confidence F] [--parallelism N]
  concord coverage --configs <glob> --contracts <file> [--metadata <glob>]
                [--tokens <file>] [--uncovered N] [--parallelism N]
  concord serve [--configs <glob>] [--contracts <file>] [--metadata <glob>]
                [--tokens <file>] [--support N] [--confidence F]
                [--parallelism N] [--no-embed] [--staleness F]
                [--listen <addr>] [--once] [--workers N]
                [--max-conns N] [--deadline-ms N] [--max-line-bytes N]
                [--max-body-bytes N] [--state-dir <dir>]
                [--shards N] [--replicas M]
                [--lex-cache-cap N] [--enable-fault-injection]
                [--full-relearn]
  concord help

Categories for --disable: present ordering type sequence unique relational

--stats text prints a per-stage timing summary (lexing with cache
hit/miss counts, each miner, minimization, checking); --stats json
emits the same data as one machine-readable object (schema
concord-pipeline-stats/v10, see DESIGN.md) instead of the human
summary.

serve holds a resident incremental engine and answers a request
protocol on stdin/stdout or TCP (--listen). On Linux, TCP runs on an
epoll event loop: pipelined requests on one connection execute in
order while connections proceed concurrently, read-only requests
(CHECK/GEN/CONTRACTS/STATS) share the engine lock, and --workers
executor threads run requests. Text verbs: UPSERT <name> (+ body, `.`
terminated), REMOVE <name>, LEARN, CHECK, GEN <name>, CONTRACTS,
STATS, CHECKPOINT, BATCH <n> (the next n commands under one engine
acquisition, answered in order plus an `ok batch <n>` trailer), QUIT.
A connection whose first byte is 0xC3 speaks the equivalent
length-prefixed binary framing instead (see DESIGN.md).
Requests are bounded by --max-line-bytes / --max-body-bytes and a
per-request --deadline-ms; beyond --max-conns concurrent connections
(default: twice --workers) load is shed with `err busy`. With
--state-dir the engine checkpoints snapshots and fsyncs a write-ahead
log so a killed process resumes exactly where it stopped. --shards N
consistent-hashes device names onto N engine shards (each with its own
state subdirectory under --state-dir) so an edit dirties only its
shard; answers stay byte-identical to --shards 1. --replicas M
(requires --state-dir) attaches M WAL-tailing read replicas per shard
that serve GEN at a tracked replication lag and take over CHECK when a
shard leader is recovering. LEARN folds
cached per-config miner sketches by default, re-mining only edited
configurations; --full-relearn disables the cache and re-mines the
whole corpus every time (same result, used as the equivalence
oracle). See TUTORIAL.md for a walkthrough.";

/// Per-stage statistics reporting mode (`--stats`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StatsMode {
    /// No statistics output.
    #[default]
    Off,
    /// Human-readable summary appended to normal output.
    Text,
    /// One `concord-pipeline-stats/v10` JSON object replacing the human
    /// summary.
    Json,
}

impl StatsMode {
    fn parse(raw: &str) -> Result<StatsMode, UsageError> {
        match raw {
            "text" => Ok(StatsMode::Text),
            "json" => Ok(StatsMode::Json),
            other => Err(UsageError(format!(
                "--stats expects `text` or `json`, got {other:?}"
            ))),
        }
    }
}

/// A parsed command.
#[derive(Debug)]
pub enum Command {
    /// `concord learn`.
    Learn(LearnArgs),
    /// `concord check`.
    Check(CheckArgs),
    /// `concord ci` (learn from pre-change, check post-change; Figure 10).
    Ci(CiArgs),
    /// `concord coverage` (per-line configuration coverage, §3.9).
    Coverage(CoverageArgs),
    /// `concord serve` (resident incremental engine, §3.7).
    Serve(ServeArgs),
    /// `concord help`.
    Help,
}

/// Arguments for `concord serve`.
#[derive(Debug)]
pub struct ServeArgs {
    /// Optional glob selecting the initial configuration corpus (the
    /// session starts empty without it).
    pub configs: Option<String>,
    /// Optional contracts file to preload (otherwise the session's first
    /// LEARN produces them).
    pub contracts: Option<String>,
    /// Optional glob selecting metadata files.
    pub metadata: Option<String>,
    /// Optional custom token definition file.
    pub tokens: Option<String>,
    /// Learning parameters for in-session LEARN commands.
    pub params: LearnParams,
    /// Context embedding enabled.
    pub embed: bool,
    /// Worker threads.
    pub parallelism: usize,
    /// Staleness threshold for the engine's relearn-if-stale logic.
    pub staleness: f64,
    /// TCP address to listen on (`None` serves stdin/stdout).
    pub listen: Option<String>,
    /// Exit after the first TCP connection closes (smoke tests).
    pub once: bool,
    /// TCP worker threads (the bounded connection pool).
    pub workers: usize,
    /// Concurrent connection cap before load shedding (`err busy`);
    /// 0 picks the default of twice `workers`.
    pub max_conns: usize,
    /// Per-request deadline in milliseconds.
    pub deadline_ms: u64,
    /// Maximum bytes in one protocol line.
    pub max_line_bytes: usize,
    /// Maximum bytes in one UPSERT body.
    pub max_body_bytes: usize,
    /// Durable state directory (snapshot + write-ahead log).
    pub state_dir: Option<String>,
    /// Number of engine shards device names are consistent-hashed onto
    /// (1 = the classic single resident engine).
    pub shards: usize,
    /// WAL-tailing read replicas attached to each shard (requires
    /// `--state-dir`; replicas follow the shard leader's log).
    pub replicas: usize,
    /// Lexeme cache capacity in entries (0 = unbounded).
    pub lex_cache_cap: usize,
    /// Enable the FAULT verb (deterministic panic injection for the
    /// robustness harness).
    pub enable_faults: bool,
    /// Disable the incremental sketch cache: every LEARN re-mines the
    /// whole corpus (the byte-identical equivalence oracle).
    pub full_relearn: bool,
}

/// Arguments for `concord coverage`.
#[derive(Debug)]
pub struct CoverageArgs {
    /// Glob selecting configuration files.
    pub configs: String,
    /// The contracts file produced by `concord learn`.
    pub contracts: String,
    /// Optional glob selecting metadata files.
    pub metadata: Option<String>,
    /// Optional custom token definition file.
    pub tokens: Option<String>,
    /// How many uncovered lines to list (0 = summary only).
    pub uncovered: usize,
    /// Worker threads.
    pub parallelism: usize,
}

/// Arguments for `concord ci`.
#[derive(Debug)]
pub struct CiArgs {
    /// Glob selecting pre-change configuration files (training).
    pub pre: String,
    /// Glob selecting post-change configuration files (checked).
    pub post: String,
    /// Optional glob selecting metadata files.
    pub metadata: Option<String>,
    /// Optional custom token definition file.
    pub tokens: Option<String>,
    /// Optional suppression file (operator feedback, one substring per
    /// line).
    pub suppress: Option<String>,
    /// Keep ordering contracts (the production default drops them, §5.4).
    pub keep_ordering: bool,
    /// Learning parameters.
    pub params: LearnParams,
    /// Worker threads.
    pub parallelism: usize,
}

/// Arguments for `concord learn`.
#[derive(Debug)]
pub struct LearnArgs {
    /// Glob selecting training configuration files.
    pub configs: String,
    /// Optional glob selecting metadata files.
    pub metadata: Option<String>,
    /// Optional custom token definition file.
    pub tokens: Option<String>,
    /// Output contracts file.
    pub out: String,
    /// Learning parameters.
    pub params: LearnParams,
    /// Context embedding enabled (`--no-embed` clears it).
    pub embed: bool,
    /// Worker threads.
    pub parallelism: usize,
    /// Per-stage statistics reporting.
    pub stats: StatsMode,
}

/// Arguments for `concord check`.
#[derive(Debug)]
pub struct CheckArgs {
    /// Glob selecting configuration files to check.
    pub configs: String,
    /// The contracts file produced by `concord learn`.
    pub contracts: String,
    /// Optional glob selecting metadata files.
    pub metadata: Option<String>,
    /// Optional custom token definition file.
    pub tokens: Option<String>,
    /// Optional JSON violations output.
    pub out: Option<String>,
    /// Optional HTML report output.
    pub html: Option<String>,
    /// Optional suppression file (operator feedback via the report UI,
    /// §4): contracts matching any listed substring are dropped.
    pub suppress: Option<String>,
    /// Drop ordering contracts before checking (§5.4 production default).
    pub disable_ordering: bool,
    /// Context embedding enabled.
    pub embed: bool,
    /// Worker threads.
    pub parallelism: usize,
    /// Per-stage statistics reporting.
    pub stats: StatsMode,
}

/// A usage error with its message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageError(pub String);

impl std::fmt::Display for UsageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}\n\n{}", self.0, USAGE)
    }
}

impl std::error::Error for UsageError {}

/// Parses `argv` (without the program name).
pub fn parse_args(argv: &[String]) -> Result<Command, UsageError> {
    let err = |msg: String| Err(UsageError(msg));
    match argv.first().map(String::as_str) {
        Some("learn") => parse_learn(&argv[1..]),
        Some("check") => parse_check(&argv[1..]),
        Some("ci") => parse_ci(&argv[1..]),
        Some("coverage") => parse_coverage(&argv[1..]),
        Some("serve") => parse_serve(&argv[1..]),
        Some("help") | Some("--help") | Some("-h") => Ok(Command::Help),
        Some(other) => err(format!("unknown command {other:?}")),
        None => err("missing command".to_string()),
    }
}

/// Iterates `--flag value` / `--flag` style arguments.
struct Flags<'a> {
    argv: &'a [String],
    pos: usize,
}

impl<'a> Flags<'a> {
    fn next_flag(&mut self) -> Option<&'a str> {
        let flag = self.argv.get(self.pos)?;
        self.pos += 1;
        Some(flag)
    }

    fn value(&mut self, flag: &str) -> Result<&'a str, UsageError> {
        match self.argv.get(self.pos) {
            Some(v) if !v.starts_with("--") => {
                self.pos += 1;
                Ok(v)
            }
            _ => Err(UsageError(format!("flag {flag} requires a value"))),
        }
    }

    fn parse<T: std::str::FromStr>(&mut self, flag: &str) -> Result<T, UsageError> {
        let raw = self.value(flag)?;
        raw.parse()
            .map_err(|_| UsageError(format!("invalid value {raw:?} for {flag}")))
    }
}

fn parse_learn(argv: &[String]) -> Result<Command, UsageError> {
    let mut args = LearnArgs {
        configs: String::new(),
        metadata: None,
        tokens: None,
        out: "contracts.json".to_string(),
        params: LearnParams::default(),
        embed: true,
        parallelism: 1,
        stats: StatsMode::Off,
    };
    let mut flags = Flags { argv, pos: 0 };
    while let Some(flag) = flags.next_flag() {
        match flag {
            "--configs" => args.configs = flags.value(flag)?.to_string(),
            "--metadata" => args.metadata = Some(flags.value(flag)?.to_string()),
            "--tokens" => args.tokens = Some(flags.value(flag)?.to_string()),
            "--out" => args.out = flags.value(flag)?.to_string(),
            "--stats" => args.stats = StatsMode::parse(flags.value(flag)?)?,
            "--support" => args.params.support = flags.parse(flag)?,
            "--confidence" => {
                args.params.confidence = flags.parse(flag)?;
                if !(0.0..=1.0).contains(&args.params.confidence) {
                    return Err(UsageError("--confidence must be in [0, 1]".to_string()));
                }
            }
            "--score-threshold" => args.params.score_threshold = flags.parse(flag)?,
            "--parallelism" => {
                args.parallelism = flags.parse(flag)?;
                args.params.parallelism = args.parallelism;
            }
            "--constants" => args.params.learn_constants = true,
            "--ranges" => args.params.enable_range = true,
            "--no-embed" => args.embed = false,
            "--no-minimize" => args.params.minimize = false,
            "--disable" => match flags.value(flag)? {
                "present" => args.params.enable_present = false,
                "ordering" => args.params.enable_ordering = false,
                "type" => args.params.enable_type = false,
                "sequence" => args.params.enable_sequence = false,
                "unique" => args.params.enable_unique = false,
                "relational" => args.params.enable_relational = false,
                other => {
                    return Err(UsageError(format!("unknown category {other:?}")));
                }
            },
            other => return Err(UsageError(format!("unknown flag {other:?}"))),
        }
    }
    if args.configs.is_empty() {
        return Err(UsageError("learn requires --configs".to_string()));
    }
    Ok(Command::Learn(args))
}

fn parse_check(argv: &[String]) -> Result<Command, UsageError> {
    let mut args = CheckArgs {
        configs: String::new(),
        contracts: String::new(),
        metadata: None,
        tokens: None,
        out: None,
        html: None,
        suppress: None,
        disable_ordering: false,
        embed: true,
        parallelism: 1,
        stats: StatsMode::Off,
    };
    let mut flags = Flags { argv, pos: 0 };
    while let Some(flag) = flags.next_flag() {
        match flag {
            "--configs" => args.configs = flags.value(flag)?.to_string(),
            "--contracts" => args.contracts = flags.value(flag)?.to_string(),
            "--metadata" => args.metadata = Some(flags.value(flag)?.to_string()),
            "--tokens" => args.tokens = Some(flags.value(flag)?.to_string()),
            "--out" => args.out = Some(flags.value(flag)?.to_string()),
            "--stats" => args.stats = StatsMode::parse(flags.value(flag)?)?,
            "--html" => args.html = Some(flags.value(flag)?.to_string()),
            "--suppress" => args.suppress = Some(flags.value(flag)?.to_string()),
            "--parallelism" => args.parallelism = flags.parse(flag)?,
            "--disable-ordering" => args.disable_ordering = true,
            "--no-embed" => args.embed = false,
            other => return Err(UsageError(format!("unknown flag {other:?}"))),
        }
    }
    if args.configs.is_empty() {
        return Err(UsageError("check requires --configs".to_string()));
    }
    if args.contracts.is_empty() {
        return Err(UsageError("check requires --contracts".to_string()));
    }
    Ok(Command::Check(args))
}

fn parse_ci(argv: &[String]) -> Result<Command, UsageError> {
    let mut args = CiArgs {
        pre: String::new(),
        post: String::new(),
        metadata: None,
        tokens: None,
        suppress: None,
        keep_ordering: false,
        params: LearnParams::default(),
        parallelism: 1,
    };
    let mut flags = Flags { argv, pos: 0 };
    while let Some(flag) = flags.next_flag() {
        match flag {
            "--pre" => args.pre = flags.value(flag)?.to_string(),
            "--post" => args.post = flags.value(flag)?.to_string(),
            "--metadata" => args.metadata = Some(flags.value(flag)?.to_string()),
            "--tokens" => args.tokens = Some(flags.value(flag)?.to_string()),
            "--suppress" => args.suppress = Some(flags.value(flag)?.to_string()),
            "--keep-ordering" => args.keep_ordering = true,
            "--support" => args.params.support = flags.parse(flag)?,
            "--confidence" => args.params.confidence = flags.parse(flag)?,
            "--parallelism" => {
                args.parallelism = flags.parse(flag)?;
                args.params.parallelism = args.parallelism;
            }
            other => return Err(UsageError(format!("unknown flag {other:?}"))),
        }
    }
    if args.pre.is_empty() || args.post.is_empty() {
        return Err(UsageError("ci requires --pre and --post".to_string()));
    }
    Ok(Command::Ci(args))
}

fn parse_coverage(argv: &[String]) -> Result<Command, UsageError> {
    let mut args = CoverageArgs {
        configs: String::new(),
        contracts: String::new(),
        metadata: None,
        tokens: None,
        uncovered: 10,
        parallelism: 1,
    };
    let mut flags = Flags { argv, pos: 0 };
    while let Some(flag) = flags.next_flag() {
        match flag {
            "--configs" => args.configs = flags.value(flag)?.to_string(),
            "--contracts" => args.contracts = flags.value(flag)?.to_string(),
            "--metadata" => args.metadata = Some(flags.value(flag)?.to_string()),
            "--tokens" => args.tokens = Some(flags.value(flag)?.to_string()),
            "--uncovered" => args.uncovered = flags.parse(flag)?,
            "--parallelism" => args.parallelism = flags.parse(flag)?,
            other => return Err(UsageError(format!("unknown flag {other:?}"))),
        }
    }
    if args.configs.is_empty() || args.contracts.is_empty() {
        return Err(UsageError(
            "coverage requires --configs and --contracts".to_string(),
        ));
    }
    Ok(Command::Coverage(args))
}

fn parse_serve(argv: &[String]) -> Result<Command, UsageError> {
    let mut args = ServeArgs {
        configs: None,
        contracts: None,
        metadata: None,
        tokens: None,
        params: LearnParams::default(),
        embed: true,
        parallelism: 1,
        staleness: 0.2,
        listen: None,
        once: false,
        workers: 4,
        max_conns: 0,
        deadline_ms: 5000,
        max_line_bytes: 64 * 1024,
        max_body_bytes: 1024 * 1024,
        state_dir: None,
        shards: 1,
        replicas: 0,
        lex_cache_cap: 64 * 1024,
        enable_faults: false,
        full_relearn: false,
    };
    let mut flags = Flags { argv, pos: 0 };
    while let Some(flag) = flags.next_flag() {
        match flag {
            "--configs" => args.configs = Some(flags.value(flag)?.to_string()),
            "--contracts" => args.contracts = Some(flags.value(flag)?.to_string()),
            "--metadata" => args.metadata = Some(flags.value(flag)?.to_string()),
            "--tokens" => args.tokens = Some(flags.value(flag)?.to_string()),
            "--support" => args.params.support = flags.parse(flag)?,
            "--confidence" => args.params.confidence = flags.parse(flag)?,
            "--parallelism" => {
                args.parallelism = flags.parse(flag)?;
                args.params.parallelism = args.parallelism;
            }
            "--no-embed" => args.embed = false,
            "--staleness" => {
                args.staleness = flags.parse(flag)?;
                if !(0.0..=1.0).contains(&args.staleness) {
                    return Err(UsageError("--staleness must be in [0, 1]".to_string()));
                }
            }
            "--listen" => args.listen = Some(flags.value(flag)?.to_string()),
            "--once" => args.once = true,
            "--workers" => {
                args.workers = flags.parse(flag)?;
                if args.workers == 0 {
                    return Err(UsageError("--workers must be at least 1".to_string()));
                }
            }
            "--max-conns" => args.max_conns = flags.parse(flag)?,
            "--deadline-ms" => {
                args.deadline_ms = flags.parse(flag)?;
                if args.deadline_ms == 0 {
                    return Err(UsageError("--deadline-ms must be at least 1".to_string()));
                }
            }
            "--max-line-bytes" => args.max_line_bytes = flags.parse(flag)?,
            "--max-body-bytes" => args.max_body_bytes = flags.parse(flag)?,
            "--state-dir" => args.state_dir = Some(flags.value(flag)?.to_string()),
            "--shards" => {
                args.shards = flags.parse(flag)?;
                if args.shards == 0 {
                    return Err(UsageError("--shards must be at least 1".to_string()));
                }
            }
            "--replicas" => args.replicas = flags.parse(flag)?,
            "--lex-cache-cap" => args.lex_cache_cap = flags.parse(flag)?,
            "--enable-fault-injection" => args.enable_faults = true,
            "--full-relearn" => args.full_relearn = true,
            other => return Err(UsageError(format!("unknown flag {other:?}"))),
        }
    }
    if args.replicas > 0 && args.state_dir.is_none() {
        return Err(UsageError(
            "--replicas requires --state-dir (replicas tail the shard leader's log)".to_string(),
        ));
    }
    Ok(Command::Serve(args))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_learn_defaults() {
        let cmd = parse_args(&argv(&["learn", "--configs", "cfg/*.txt"])).unwrap();
        match cmd {
            Command::Learn(a) => {
                assert_eq!(a.configs, "cfg/*.txt");
                assert_eq!(a.out, "contracts.json");
                assert_eq!(a.params.support, 5);
                assert!(a.embed);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_learn_tuning_flags() {
        let cmd = parse_args(&argv(&[
            "learn",
            "--configs",
            "c/*",
            "--support",
            "10",
            "--confidence",
            "0.9",
            "--score-threshold",
            "2.5",
            "--parallelism",
            "8",
            "--constants",
            "--no-embed",
            "--disable",
            "ordering",
            "--disable",
            "type",
        ]))
        .unwrap();
        match cmd {
            Command::Learn(a) => {
                assert_eq!(a.params.support, 10);
                assert!((a.params.confidence - 0.9).abs() < 1e-9);
                assert!((a.params.score_threshold - 2.5).abs() < 1e-9);
                assert_eq!(a.parallelism, 8);
                assert!(a.params.learn_constants);
                assert!(!a.embed);
                assert!(!a.params.enable_ordering);
                assert!(!a.params.enable_type);
                assert!(a.params.enable_present);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn learn_requires_configs() {
        assert!(parse_args(&argv(&["learn"])).is_err());
    }

    #[test]
    fn check_requires_contracts() {
        assert!(parse_args(&argv(&["check", "--configs", "x/*"])).is_err());
        assert!(parse_args(&argv(&[
            "check",
            "--configs",
            "x/*",
            "--contracts",
            "c.json"
        ]))
        .is_ok());
    }

    #[test]
    fn rejects_bad_values() {
        assert!(parse_args(&argv(&["learn", "--configs", "x", "--support", "lots"])).is_err());
        assert!(parse_args(&argv(&["learn", "--configs", "x", "--confidence", "1.5"])).is_err());
        assert!(parse_args(&argv(&["learn", "--configs", "x", "--disable", "bogus"])).is_err());
        assert!(parse_args(&argv(&["learn", "--configs"])).is_err());
    }

    #[test]
    fn parses_serve() {
        let cmd = parse_args(&argv(&[
            "serve",
            "--configs",
            "cfg/*.txt",
            "--staleness",
            "0.4",
            "--listen",
            "127.0.0.1:0",
            "--once",
            "--parallelism",
            "4",
            "--workers",
            "8",
            "--max-conns",
            "32",
            "--deadline-ms",
            "1500",
            "--max-line-bytes",
            "4096",
            "--max-body-bytes",
            "16384",
            "--state-dir",
            "/tmp/concord-state",
            "--shards",
            "4",
            "--replicas",
            "1",
            "--lex-cache-cap",
            "1024",
            "--enable-fault-injection",
            "--full-relearn",
        ]))
        .unwrap();
        match cmd {
            Command::Serve(a) => {
                assert_eq!(a.configs.as_deref(), Some("cfg/*.txt"));
                assert!((a.staleness - 0.4).abs() < 1e-9);
                assert_eq!(a.listen.as_deref(), Some("127.0.0.1:0"));
                assert!(a.once);
                assert_eq!(a.parallelism, 4);
                assert_eq!(a.params.parallelism, 4);
                assert_eq!(a.workers, 8);
                assert_eq!(a.max_conns, 32);
                assert_eq!(a.deadline_ms, 1500);
                assert_eq!(a.max_line_bytes, 4096);
                assert_eq!(a.max_body_bytes, 16384);
                assert_eq!(a.state_dir.as_deref(), Some("/tmp/concord-state"));
                assert_eq!(a.shards, 4);
                assert_eq!(a.replicas, 1);
                assert_eq!(a.lex_cache_cap, 1024);
                assert!(a.enable_faults);
                assert!(a.full_relearn);
            }
            other => panic!("unexpected {other:?}"),
        }
        // serve needs no flags at all: an empty resident session is valid.
        match parse_args(&argv(&["serve"])).unwrap() {
            Command::Serve(a) => {
                assert_eq!(a.workers, 4);
                assert_eq!(a.max_conns, 0, "0 means twice --workers at runtime");
                assert_eq!(a.deadline_ms, 5000);
                assert_eq!(a.lex_cache_cap, 64 * 1024);
                assert!(a.state_dir.is_none());
                assert_eq!(a.shards, 1, "single shard is the classic engine");
                assert_eq!(a.replicas, 0);
                assert!(!a.enable_faults);
                assert!(!a.full_relearn, "delta learn is the default");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_args(&argv(&["serve", "--staleness", "3.0"])).is_err());
        assert!(parse_args(&argv(&["serve", "--workers", "0"])).is_err());
        assert!(parse_args(&argv(&["serve", "--deadline-ms", "0"])).is_err());
        assert!(parse_args(&argv(&["serve", "--shards", "0"])).is_err());
        assert!(
            parse_args(&argv(&["serve", "--replicas", "1"])).is_err(),
            "replicas tail a WAL, so they require --state-dir"
        );
    }

    #[test]
    fn help_variants() {
        for h in ["help", "--help", "-h"] {
            assert!(matches!(parse_args(&argv(&[h])).unwrap(), Command::Help));
        }
    }
}
