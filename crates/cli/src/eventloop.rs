//! Readiness-driven TCP serving: an epoll event loop built on raw
//! syscalls (no external crates, no libc).
//!
//! One I/O thread owns the listener, every connection socket, and every
//! per-connection parser/buffer. Sockets are nonblocking; `epoll` says
//! which are ready. Parsed requests queue per connection and are handed
//! — one in-flight job per connection, whole queue at a time — to a
//! small executor pool that runs the shared request handler
//! ([`crate::serve::respond`]). Because a connection never has two jobs
//! in flight, pipelined requests execute and answer strictly in order
//! while different connections proceed concurrently (readers sharing
//! the engine lock, writers exclusive).
//!
//! Executors signal completion back through a channel plus a one-byte
//! write to a `UnixStream` self-pipe registered in the epoll set, so
//! the I/O thread never polls. A ~50 ms `epoll_wait` tick bounds the
//! slow-loris scan: a connection whose partially-received request is
//! older than the deadline is answered `err deadline` and closed.
//!
//! The syscall layer is deliberately tiny — `epoll_create1`,
//! `epoll_ctl`, `epoll_wait`/`epoll_pwait`, `close` — and is gated to
//! Linux on x86_64/aarch64; other targets use the blocking fallback in
//! `serve.rs`.
#![cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::protocol::{Framing, ParseEvent, SessionParser};
use crate::serve::{deadline_reply, respond, ServeShared};
use crate::CliError;

/// Readiness flags (uapi `eventpoll.h`).
const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: usize = 1;
const EPOLL_CTL_DEL: usize = 2;
const EPOLL_CTL_MOD: usize = 3;
const EPOLL_CLOEXEC: usize = 0x80000;

/// The kernel's epoll event record. On x86_64 the ABI packs it (no
/// padding between `events` and `data`); aarch64 uses natural layout.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

#[cfg(target_arch = "x86_64")]
mod sys {
    pub const EPOLL_CREATE1: usize = 291;
    pub const EPOLL_CTL: usize = 233;
    pub const EPOLL_WAIT: usize = 232;
    pub const CLOSE: usize = 3;

    /// Raw Linux syscall, up to four arguments. The kernel returns the
    /// result (or a negated errno) in `rax`; `rcx`/`r11` are clobbered
    /// by the `syscall` instruction itself.
    ///
    /// # Safety
    /// The caller must pass a valid syscall number and arguments whose
    /// pointees (if any) live across the call.
    pub unsafe fn syscall(nr: usize, a1: usize, a2: usize, a3: usize, a4: usize) -> isize {
        let ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") nr as isize => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
        ret
    }

    /// epoll_wait(epfd, events, maxevents, timeout_ms).
    ///
    /// # Safety
    /// `events` must point to at least `maxevents` writable records.
    pub unsafe fn epoll_wait(
        epfd: usize,
        events: usize,
        maxevents: usize,
        timeout: usize,
    ) -> isize {
        syscall(EPOLL_WAIT, epfd, events, maxevents, timeout)
    }
}

#[cfg(target_arch = "aarch64")]
mod sys {
    pub const EPOLL_CREATE1: usize = 20;
    pub const EPOLL_CTL: usize = 21;
    pub const EPOLL_PWAIT: usize = 22;
    pub const CLOSE: usize = 57;

    /// Raw Linux syscall, up to six arguments (`svc #0`, number in
    /// `x8`, result in `x0`).
    ///
    /// # Safety
    /// The caller must pass a valid syscall number and arguments whose
    /// pointees (if any) live across the call.
    pub unsafe fn syscall6(
        nr: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
        a6: usize,
    ) -> isize {
        let ret: isize;
        core::arch::asm!(
            "svc 0",
            in("x8") nr,
            inlateout("x0") a1 => ret,
            in("x1") a2,
            in("x2") a3,
            in("x3") a4,
            in("x4") a5,
            in("x5") a6,
            options(nostack)
        );
        ret
    }

    /// # Safety
    /// As for [`syscall6`].
    pub unsafe fn syscall(nr: usize, a1: usize, a2: usize, a3: usize, a4: usize) -> isize {
        syscall6(nr, a1, a2, a3, a4, 0, 0)
    }

    /// aarch64 has no `epoll_wait`; `epoll_pwait` with a null sigmask is
    /// the exact equivalent.
    ///
    /// # Safety
    /// `events` must point to at least `maxevents` writable records.
    pub unsafe fn epoll_wait(
        epfd: usize,
        events: usize,
        maxevents: usize,
        timeout: usize,
    ) -> isize {
        syscall6(EPOLL_PWAIT, epfd, events, maxevents, timeout, 0, 0)
    }
}

/// Converts a raw syscall return into an [`std::io::Result`].
fn check(ret: isize) -> std::io::Result<usize> {
    if ret < 0 {
        Err(std::io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret as usize)
    }
}

/// A minimal owned epoll instance.
struct Epoll {
    fd: RawFd,
}

impl Epoll {
    fn new() -> std::io::Result<Epoll> {
        let ret = unsafe { sys::syscall(sys::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0) };
        check(ret).map(|fd| Epoll { fd: fd as RawFd })
    }

    fn ctl(&self, op: usize, fd: RawFd, events: u32, token: u64) -> std::io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        let ret = unsafe {
            sys::syscall(
                sys::EPOLL_CTL,
                self.fd as usize,
                op,
                fd as usize,
                std::ptr::addr_of_mut!(ev) as usize,
            )
        };
        check(ret).map(|_| ())
    }

    fn add(&self, fd: RawFd, events: u32, token: u64) -> std::io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    fn modify(&self, fd: RawFd, events: u32, token: u64) -> std::io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    fn delete(&self, fd: RawFd) -> std::io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Waits for readiness, retrying on EINTR. Returns how many entries
    /// of `events` were filled.
    fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> std::io::Result<usize> {
        loop {
            let ret = unsafe {
                sys::epoll_wait(
                    self.fd as usize,
                    events.as_mut_ptr() as usize,
                    events.len(),
                    timeout_ms as usize,
                )
            };
            match check(ret) {
                Ok(n) => return Ok(n),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe {
            sys::syscall(sys::CLOSE, self.fd as usize, 0, 0, 0);
        }
    }
}

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKE: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// One job handed to the executor pool: a connection's whole pending
/// queue, executed in order.
struct Job {
    token: u64,
    framing: Framing,
    events: Vec<ParseEvent>,
}

/// What an executor produced for one job.
struct Completion {
    token: u64,
    bytes: Vec<u8>,
    quit: bool,
}

/// Per-connection state machine owned by the I/O thread.
struct Conn {
    stream: TcpStream,
    parser: SessionParser,
    /// Parsed events not yet handed to an executor.
    queue: VecDeque<ParseEvent>,
    /// One job in flight (ordering guarantee).
    busy: bool,
    /// Pending response bytes and the flushed prefix.
    out: Vec<u8>,
    out_pos: usize,
    /// Peer finished sending (EOF seen).
    read_closed: bool,
    /// Session over (QUIT/fatal/deadline): flush `out`, then close.
    closing: bool,
    /// Events currently registered with epoll, to skip redundant MODs.
    interest: u32,
}

impl Conn {
    fn new(stream: TcpStream, max_line: usize, max_body: usize) -> Conn {
        Conn {
            stream,
            parser: SessionParser::new(max_line, max_body),
            queue: VecDeque::new(),
            busy: false,
            out: Vec::new(),
            out_pos: 0,
            read_closed: false,
            closing: false,
            interest: EPOLLIN | EPOLLRDHUP,
        }
    }

    fn has_output(&self) -> bool {
        self.out_pos < self.out.len()
    }

    /// The epoll interest this connection currently needs.
    fn wanted_interest(&self) -> u32 {
        let mut events = 0;
        if !self.read_closed && !self.closing {
            events |= EPOLLIN | EPOLLRDHUP;
        }
        if self.has_output() {
            events |= EPOLLOUT;
        }
        events
    }

    /// Done when nothing remains to read, execute, or write.
    fn finished(&self) -> bool {
        if self.busy || self.has_output() {
            return false;
        }
        self.closing || (self.read_closed && self.queue.is_empty() && !self.parser.pending())
    }
}

/// Runs the epoll event loop until shutdown (`--once`: the first
/// accepted connection closing ends the process with exit code 0).
pub(crate) fn run_event_loop(
    shared: &Arc<ServeShared>,
    addr: &str,
    once: bool,
    workers: usize,
    max_conns: usize,
    out: &mut dyn Write,
) -> Result<i32, CliError> {
    let io_err = |e: std::io::Error| CliError::Io(addr.to_string(), e);
    let listener = TcpListener::bind(addr).map_err(io_err)?;
    let local = listener.local_addr().map_err(io_err)?;
    // The bound port (OS-chosen under `--listen 127.0.0.1:0`) goes to
    // stdout so a driver can connect.
    let _ = writeln!(out, "listening on {local}");
    let _ = out.flush();
    listener.set_nonblocking(true).map_err(io_err)?;

    let epoll = Epoll::new().map_err(io_err)?;
    epoll
        .add(listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)
        .map_err(io_err)?;

    // Completion signal: executors write one byte into a self-pipe the
    // epoll set watches, so the I/O thread parks in epoll_wait only.
    let (wake_tx, wake_rx) = UnixStream::pair().map_err(io_err)?;
    wake_rx.set_nonblocking(true).map_err(io_err)?;
    wake_tx.set_nonblocking(true).map_err(io_err)?;
    epoll
        .add(wake_rx.as_raw_fd(), EPOLLIN, TOKEN_WAKE)
        .map_err(io_err)?;

    let (job_tx, job_rx) = mpsc::channel::<Job>();
    let (done_tx, done_rx) = mpsc::channel::<Completion>();
    let job_rx = Arc::new(Mutex::new(job_rx));
    let mut pool = Vec::with_capacity(workers);
    for i in 0..workers {
        let shared = Arc::clone(shared);
        let job_rx = Arc::clone(&job_rx);
        let done_tx = done_tx.clone();
        let wake = wake_tx.try_clone().map_err(io_err)?;
        let handle = std::thread::Builder::new()
            .name(format!("serve-exec-{i}"))
            .spawn(move || executor(&shared, &job_rx, &done_tx, &wake))
            .map_err(io_err)?;
        pool.push(handle);
    }
    drop(done_tx);

    let limits = shared.limits();
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token = FIRST_CONN_TOKEN;
    let mut accepting = true;
    let mut once_accepted = false;
    let mut events = [EpollEvent { events: 0, data: 0 }; 64];
    // The tick bounds the slow-loris scan even when no fd fires.
    let tick_ms = (limits.deadline.min(Duration::from_millis(50)).as_millis() as i32).max(1);

    loop {
        let n = epoll.wait(&mut events, tick_ms).map_err(io_err)?;
        for slot in events.iter().take(n) {
            // Copy out of the (possibly packed) record before use.
            let token = slot.data;
            let ready = slot.events;
            match token {
                TOKEN_LISTENER => {
                    if !accepting {
                        continue;
                    }
                    accept_ready(
                        shared,
                        &listener,
                        &epoll,
                        &mut conns,
                        &mut next_token,
                        max_conns,
                        limits.max_line,
                        limits.max_body,
                    );
                    if once && next_token > FIRST_CONN_TOKEN {
                        // One connection is in: stop accepting for good.
                        accepting = false;
                        once_accepted = true;
                        let _ = epoll.delete(listener.as_raw_fd());
                    }
                }
                TOKEN_WAKE => {
                    let mut drain = [0u8; 256];
                    while let Ok(n) = (&wake_rx).read(&mut drain) {
                        if n == 0 {
                            break;
                        }
                    }
                }
                token => {
                    if ready & (EPOLLERR | EPOLLHUP) != 0 {
                        close_conn(&epoll, &mut conns, token);
                        continue;
                    }
                    if ready & (EPOLLIN | EPOLLRDHUP) != 0 {
                        read_ready(&epoll, &mut conns, token);
                    }
                    if ready & EPOLLOUT != 0 {
                        let failed = match conns.get_mut(&token) {
                            Some(conn) => flush_output(conn).is_err(),
                            None => false,
                        };
                        if failed {
                            close_conn(&epoll, &mut conns, token);
                        }
                    }
                }
            }
        }

        // Drain completions (arrive with a wake byte, but drain every
        // pass: cheap, and immune to a saturated self-pipe).
        while let Ok(done) = done_rx.try_recv() {
            let failed = match conns.get_mut(&done.token) {
                Some(conn) => {
                    conn.busy = false;
                    conn.out.extend_from_slice(&done.bytes);
                    if done.quit {
                        conn.closing = true;
                        conn.queue.clear();
                    }
                    flush_output(conn).is_err()
                }
                None => false, // connection already closed
            };
            if failed {
                close_conn(&epoll, &mut conns, done.token);
            }
        }

        // Dispatch, enforce deadlines, sync epoll interest, and reap
        // finished connections.
        let mut to_close = Vec::new();
        for (&token, conn) in conns.iter_mut() {
            if !conn.busy && !conn.closing && !conn.queue.is_empty() {
                let job = Job {
                    token,
                    framing: conn.parser.framing(),
                    events: conn.queue.drain(..).collect(),
                };
                conn.busy = true;
                if job_tx.send(job).is_err() {
                    conn.busy = false;
                    conn.closing = true;
                }
            }
            if !conn.closing {
                if let Some(since) = conn.parser.pending_since() {
                    if since.elapsed() >= limits.deadline {
                        shared.deadline_hit();
                        let framing = conn.parser.framing();
                        conn.out.extend_from_slice(&deadline_reply(framing));
                        conn.closing = true;
                        conn.queue.clear();
                    }
                }
            }
            if flush_output(conn).is_err() || conn.finished() {
                to_close.push(token);
                continue;
            }
            let wanted = conn.wanted_interest();
            if wanted != conn.interest {
                let _ = epoll.modify(conn.stream.as_raw_fd(), wanted, token);
                conn.interest = wanted;
            }
        }
        for token in to_close {
            close_conn(&epoll, &mut conns, token);
        }

        if once_accepted && conns.is_empty() {
            break;
        }
    }

    // Shut the pool down: closing the job channel ends the executors.
    drop(job_tx);
    for handle in pool {
        let _ = handle.join();
    }
    Ok(0)
}

/// Executor thread: take a job, run its events in order through the
/// shared request handler, report the concatenated response.
fn executor(
    shared: &ServeShared,
    jobs: &Mutex<mpsc::Receiver<Job>>,
    done: &mpsc::Sender<Completion>,
    wake: &UnixStream,
) {
    loop {
        let job = {
            let guard = match jobs.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            guard.recv()
        };
        let Ok(job) = job else {
            return; // channel closed: shut down
        };
        let mut bytes = Vec::new();
        let mut quit = false;
        for event in job.events {
            let reply = respond(shared, event, job.framing);
            bytes.extend_from_slice(&reply.bytes);
            if reply.quit {
                quit = true;
                break; // events after QUIT/fatal are dropped
            }
        }
        if done
            .send(Completion {
                token: job.token,
                bytes,
                quit,
            })
            .is_err()
        {
            return;
        }
        // A full pipe is fine: a wake byte is already pending and the
        // I/O thread drains the completion channel on every pass.
        let mut pipe = wake;
        let _ = pipe.write(&[1]);
    }
}

/// Accepts every pending connection, shedding with `err busy` beyond
/// the connection cap.
#[allow(clippy::too_many_arguments)]
fn accept_ready(
    shared: &Arc<ServeShared>,
    listener: &TcpListener,
    epoll: &Epoll,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
    max_conns: usize,
    max_line: usize,
    max_body: usize,
) {
    loop {
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                if conns.len() >= max_conns {
                    // Load shedding: answer before the socket ever
                    // reaches the engine, then drop (closes it).
                    shared.reject();
                    let _ = stream.write_all(b"err busy\n");
                    continue;
                }
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let token = *next_token;
                *next_token += 1;
                let conn = Conn::new(stream, max_line, max_body);
                if epoll
                    .add(conn.stream.as_raw_fd(), conn.interest, token)
                    .is_ok()
                {
                    shared.count_connection();
                    conns.insert(token, conn);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
    }
}

/// Reads everything available from a ready connection and parses it
/// into the connection's event queue.
fn read_ready(epoll: &Epoll, conns: &mut HashMap<u64, Conn>, token: u64) {
    let mut failed = false;
    if let Some(conn) = conns.get_mut(&token) {
        if conn.read_closed || conn.closing {
            return;
        }
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.parser.set_eof();
                    conn.read_closed = true;
                    break;
                }
                Ok(n) => conn.parser.push(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    failed = true;
                    break;
                }
            }
        }
        if !failed {
            while let Some(event) = conn.parser.next_event() {
                conn.queue.push_back(event);
            }
        }
    }
    if failed {
        close_conn(epoll, conns, token);
    }
}

/// Writes as much buffered output as the socket accepts right now.
fn flush_output(conn: &mut Conn) -> std::io::Result<()> {
    while conn.has_output() {
        match conn.stream.write(&conn.out[conn.out_pos..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "connection write stalled",
                ))
            }
            Ok(n) => conn.out_pos += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    conn.out.clear();
    conn.out_pos = 0;
    Ok(())
}

/// Deregisters and drops one connection.
fn close_conn(epoll: &Epoll, conns: &mut HashMap<u64, Conn>, token: u64) {
    if let Some(conn) = conns.remove(&token) {
        let _ = epoll.delete(conn.stream.as_raw_fd());
        // Dropping the stream closes the socket.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoll_reports_readiness_with_the_registered_token() {
        let epoll = Epoll::new().expect("epoll_create1");
        let (mut a, b) = UnixStream::pair().expect("socketpair");
        b.set_nonblocking(true).expect("nonblocking");
        epoll.add(b.as_raw_fd(), EPOLLIN, 42).expect("ctl add");

        let mut events = [EpollEvent { events: 0, data: 0 }; 8];
        let n = epoll.wait(&mut events, 0).expect("wait");
        assert_eq!(n, 0, "nothing ready yet");

        a.write_all(b"x").expect("write");
        let n = epoll.wait(&mut events, 1000).expect("wait");
        assert_eq!(n, 1);
        let token = events[0].data;
        let ready = events[0].events;
        assert_eq!(token, 42);
        assert_ne!(ready & EPOLLIN, 0);

        epoll.delete(b.as_raw_fd()).expect("ctl del");
        let n = epoll.wait(&mut events, 0).expect("wait after del");
        assert_eq!(n, 0);
    }

    #[test]
    fn epoll_modify_switches_interest() {
        let epoll = Epoll::new().expect("epoll_create1");
        let (mut a, b) = UnixStream::pair().expect("socketpair");
        b.set_nonblocking(true).expect("nonblocking");
        a.write_all(b"x").expect("write");
        // Registered for OUT only: the pending IN byte must not fire.
        epoll.add(b.as_raw_fd(), EPOLLOUT, 7).expect("ctl add");
        let mut events = [EpollEvent { events: 0, data: 0 }; 8];
        let n = epoll.wait(&mut events, 100).expect("wait");
        assert_eq!(n, 1);
        let ready = events[0].events;
        assert_eq!(ready & EPOLLIN, 0);
        assert_ne!(ready & EPOLLOUT, 0);

        epoll.modify(b.as_raw_fd(), EPOLLIN, 7).expect("ctl mod");
        let n = epoll.wait(&mut events, 100).expect("wait");
        assert_eq!(n, 1);
        let ready = events[0].events;
        assert_ne!(ready & EPOLLIN, 0);
    }
}
