#![warn(missing_docs)]

//! The `concord` command-line tool (§4 of the paper).
//!
//! Two modes:
//!
//! ```text
//! concord learn --configs <glob> [--metadata <glob>] [--tokens <file>]
//!               [--out contracts.json] [--support N] [--confidence F]
//!               [--score-threshold F] [--parallelism N] [--constants]
//!               [--no-embed] [--disable <category>]...
//!
//! concord check --configs <glob> --contracts contracts.json
//!               [--metadata <glob>] [--tokens <file>]
//!               [--out violations.json] [--html report.html]
//!               [--parallelism N] [--disable-ordering] [--no-embed]
//! ```
//!
//! `learn` writes the learned contract set as JSON; `check` prints
//! violations, optionally writes them as JSON and as a self-contained
//! HTML report, and exits non-zero when violations were found.

mod args;
mod ci;
mod eventloop;
mod fleet;
mod glob;
pub mod protocol;
mod report;
mod serve;
mod sync;

pub use args::{
    parse_args, CheckArgs, CiArgs, Command, CoverageArgs, LearnArgs, ServeArgs, StatsMode,
    UsageError,
};
pub use ci::{is_suppressed, load_suppressions};
pub use glob::expand_glob;
pub use serve::{serve_session, ServeLimits, ServeShared};

use std::path::Path;
use std::time::Instant;

use concord_core::{
    check_parallel, check_parallel_with_stats, learn_with_stats, BuildStats, ContractSet, Dataset,
    PipelineStats,
};
use concord_lexer::Lexer;

/// Top-level error for CLI runs.
#[derive(Debug)]
pub enum CliError {
    /// Bad usage (unknown flag, missing value, ...).
    Usage(UsageError),
    /// An I/O failure with its path context.
    Io(String, std::io::Error),
    /// Invalid input contents (token file, contracts file, ...).
    Invalid(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(e) => write!(f, "usage error: {e}"),
            CliError::Io(path, e) => write!(f, "{path}: {e}"),
            CliError::Invalid(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for CliError {}

impl From<UsageError> for CliError {
    fn from(e: UsageError) -> Self {
        CliError::Usage(e)
    }
}

/// Runs the CLI with the given arguments (excluding the program name).
///
/// Returns the process exit code: 0 on success, 1 when `check` found
/// violations, 2 on usage or input errors.
pub fn run(argv: &[String], out: &mut dyn std::io::Write) -> i32 {
    match run_inner(argv, out) {
        Ok(code) => code,
        Err(e) => {
            let _ = writeln!(out, "concord: {e}");
            2
        }
    }
}

fn run_inner(argv: &[String], out: &mut dyn std::io::Write) -> Result<i32, CliError> {
    match parse_args(argv)? {
        Command::Learn(args) => run_learn(&args, out),
        Command::Check(args) => run_check(&args, out),
        Command::Ci(args) => ci::run_ci(&args, out),
        Command::Coverage(args) => run_coverage(&args, out),
        Command::Serve(args) => serve::run_serve(&args, out),
        Command::Help => {
            let _ = writeln!(out, "{}", args::USAGE);
            Ok(0)
        }
    }
}

fn run_learn(args: &LearnArgs, out: &mut dyn std::io::Write) -> Result<i32, CliError> {
    let total = Instant::now();
    let (dataset, build_stats) = load_dataset_with_stats(
        &args.configs,
        args.metadata.as_deref(),
        args.tokens.as_deref(),
        args.embed,
        args.parallelism,
    )?;
    let (contracts, learn_stats) = learn_with_stats(&dataset, &args.params);
    let json = contracts.to_json();
    write_file(&args.out, &json)?;
    let stats = PipelineStats {
        build: Some(build_stats),
        learn: Some(learn_stats),
        check: None,
        engine: None,
        total_time: total.elapsed(),
    };
    if args.stats == StatsMode::Json {
        let _ = writeln!(out, "{}", stats.to_json().render_pretty());
        return Ok(0);
    }
    let _ = writeln!(
        out,
        "learned {} contracts from {} configurations ({} lines, {} patterns, {} parameters) -> {}",
        contracts.len(),
        dataset.configs.len(),
        dataset.total_lines(),
        dataset.pattern_count(),
        dataset.parameter_count(),
        args.out,
    );
    for (category, count) in contracts.count_by_category() {
        let _ = writeln!(out, "  {category:<10} {count}");
    }
    if args.stats == StatsMode::Text {
        let _ = writeln!(out, "{}", stats.render_text());
    }
    Ok(0)
}

fn run_check(args: &CheckArgs, out: &mut dyn std::io::Write) -> Result<i32, CliError> {
    let contracts_json = read_file(&args.contracts)?;
    let mut contracts = ContractSet::from_json(&contracts_json)
        .map_err(|e| CliError::Invalid(format!("{}: {e}", args.contracts)))?;
    if args.disable_ordering {
        // The production deployment disables ordering contracts (§5.4).
        contracts
            .contracts
            .retain(|c| !matches!(c, concord_core::Contract::Ordering { .. }));
    }
    if let Some(path) = &args.suppress {
        let suppressions = ci::load_suppressions(path)?;
        contracts
            .contracts
            .retain(|c| !ci::is_suppressed(c, &suppressions));
    }
    let total = Instant::now();
    let (dataset, build_stats) = load_dataset_with_stats(
        &args.configs,
        args.metadata.as_deref(),
        args.tokens.as_deref(),
        args.embed,
        args.parallelism,
    )?;
    let (report, check_stats) = check_parallel_with_stats(&contracts, &dataset, args.parallelism);
    let stats = PipelineStats {
        build: Some(build_stats),
        learn: None,
        check: Some(check_stats),
        engine: None,
        total_time: total.elapsed(),
    };

    if args.stats == StatsMode::Json {
        let _ = writeln!(out, "{}", stats.to_json().render_pretty());
    } else {
        for v in &report.violations {
            let _ = writeln!(out, "{v}");
        }
        let summary = report.coverage.summary();
        let _ = writeln!(
            out,
            "{} violations; coverage {:.1}% of {} lines",
            report.violations.len(),
            summary.fraction * 100.0,
            summary.total_lines,
        );
        if args.stats == StatsMode::Text {
            let _ = writeln!(out, "{}", stats.render_text());
        }
    }

    if let Some(path) = &args.out {
        let json =
            concord_json::to_string_pretty(&report.violations).expect("violations serialize");
        write_file(path, &json)?;
    }
    if let Some(path) = &args.html {
        write_file(path, &report::html_report(&contracts, &report))?;
    }
    Ok(if report.violations.is_empty() { 0 } else { 1 })
}

fn run_coverage(args: &CoverageArgs, out: &mut dyn std::io::Write) -> Result<i32, CliError> {
    let contracts_json = read_file(&args.contracts)?;
    let contracts = ContractSet::from_json(&contracts_json)
        .map_err(|e| CliError::Invalid(format!("{}: {e}", args.contracts)))?;
    let dataset = load_dataset(
        &args.configs,
        args.metadata.as_deref(),
        args.tokens.as_deref(),
        true,
        args.parallelism,
    )?;
    let report = check_parallel(&contracts, &dataset, args.parallelism);
    let summary = report.coverage.summary();
    let _ = writeln!(
        out,
        "coverage: {:.1}% ({} / {} lines) under {} contracts",
        summary.fraction * 100.0,
        summary.covered_lines,
        summary.total_lines,
        contracts.len(),
    );
    for (category, fraction) in &summary.by_category {
        let _ = writeln!(out, "  {category:<10} {:>5.1}%", fraction * 100.0);
    }
    if args.uncovered > 0 {
        let _ = writeln!(out, "uncovered lines (first {}):", args.uncovered);
        let mut shown = 0usize;
        'outer: for (config, cov) in dataset.configs.iter().zip(&report.coverage.per_config) {
            for (i, line) in config.lines(&dataset.arenas).enumerate() {
                if line.is_meta || cov.covered.contains(&i) {
                    continue;
                }
                let _ = writeln!(
                    out,
                    "  {}:{} {}",
                    dataset.name_of(config),
                    line.line_no,
                    line.original
                );
                shown += 1;
                if shown >= args.uncovered {
                    break 'outer;
                }
            }
        }
        if shown == 0 {
            let _ = writeln!(out, "  (none)");
        }
    }
    Ok(0)
}

/// Loads configurations (and optional metadata) matching the globs.
pub fn load_dataset(
    configs_glob: &str,
    metadata_glob: Option<&str>,
    tokens_file: Option<&str>,
    embed: bool,
    parallelism: usize,
) -> Result<Dataset, CliError> {
    load_dataset_with_stats(configs_glob, metadata_glob, tokens_file, embed, parallelism)
        .map(|(dataset, _)| dataset)
}

/// Like [`load_dataset`], also reporting construction statistics
/// (lex/intern timing and lex-cache hit counts).
pub fn load_dataset_with_stats(
    configs_glob: &str,
    metadata_glob: Option<&str>,
    tokens_file: Option<&str>,
    embed: bool,
    parallelism: usize,
) -> Result<(Dataset, BuildStats), CliError> {
    let lexer = match tokens_file {
        Some(path) => build_lexer(path)?,
        None => Lexer::standard(),
    };
    let config_files = read_glob(configs_glob)?;
    if config_files.is_empty() {
        return Err(CliError::Invalid(format!(
            "no files match --configs {configs_glob}"
        )));
    }
    let metadata_files = match metadata_glob {
        Some(glob) => read_glob(glob)?,
        None => Vec::new(),
    };
    let cache = concord_lexer::LexCache::new();
    Dataset::build_with_stats(
        &config_files,
        &metadata_files,
        &lexer,
        embed,
        parallelism,
        Some(&cache),
    )
    .map_err(|e| CliError::Invalid(e.to_string()))
}

/// Parses a custom-token definition file: one `name<ws>regex` pair per
/// line; `#` starts a comment.
pub fn build_lexer(path: &str) -> Result<Lexer, CliError> {
    let text = read_file(path)?;
    let mut defs = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((name, regex)) = line.split_once(char::is_whitespace) else {
            return Err(CliError::Invalid(format!(
                "{path}:{}: expected `name regex`",
                i + 1
            )));
        };
        defs.push((name.trim().to_string(), regex.trim().to_string()));
    }
    Lexer::with_custom(defs).map_err(|e| CliError::Invalid(format!("{path}: {e}")))
}

pub(crate) fn read_glob(pattern: &str) -> Result<Vec<(String, String)>, CliError> {
    let mut out = Vec::new();
    for path in expand_glob(pattern).map_err(|e| CliError::Io(pattern.to_string(), e))? {
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.to_string_lossy().into_owned());
        let text = std::fs::read_to_string(&path)
            .map_err(|e| CliError::Io(path.to_string_lossy().into_owned(), e))?;
        out.push((name, text));
    }
    out.sort();
    Ok(out)
}

pub(crate) fn read_file(path: &str) -> Result<String, CliError> {
    std::fs::read_to_string(path).map_err(|e| CliError::Io(path.to_string(), e))
}

fn write_file(path: &str, contents: &str) -> Result<(), CliError> {
    if let Some(parent) = Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| CliError::Io(path.to_string(), e))?;
        }
    }
    std::fs::write(path, contents).map_err(|e| CliError::Io(path.to_string(), e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("concord-cli-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn run_str(argv: &[&str]) -> (i32, String) {
        let argv: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        let code = run(&argv, &mut out);
        (code, String::from_utf8(out).unwrap())
    }

    #[test]
    fn help_prints_usage() {
        let (code, out) = run_str(&["help"]);
        assert_eq!(code, 0);
        assert!(out.contains("concord learn"));
    }

    #[test]
    fn unknown_command_is_usage_error() {
        let (code, out) = run_str(&["frobnicate"]);
        assert_eq!(code, 2);
        assert!(out.contains("usage error"));
    }

    #[test]
    fn learn_then_check_end_to_end() {
        let dir = tempdir("e2e");
        for i in 0..6 {
            std::fs::write(
                dir.join(format!("dev{i}.cfg")),
                format!(
                    "hostname DEV{}\nrouter bgp 65000\n vlan {}\n",
                    100 + i,
                    250 + i
                ),
            )
            .unwrap();
        }
        let configs = format!("{}/*.cfg", dir.display());
        let contracts = format!("{}/contracts.json", dir.display());

        let (code, out) = run_str(&["learn", "--configs", &configs, "--out", &contracts]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("learned"));
        assert!(std::fs::metadata(&contracts).is_ok());

        // Clean configs check clean.
        let (code, out) = run_str(&["check", "--configs", &configs, "--contracts", &contracts]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("0 violations"));

        // A broken config trips the check (exit code 1).
        std::fs::write(dir.join("dev0.cfg"), "hostname DEV100\n").unwrap();
        let violations = format!("{}/violations.json", dir.display());
        let html = format!("{}/report.html", dir.display());
        let (code, out) = run_str(&[
            "check",
            "--configs",
            &configs,
            "--contracts",
            &contracts,
            "--out",
            &violations,
            "--html",
            &html,
        ]);
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("missing required line"));
        let json = std::fs::read_to_string(&violations).unwrap();
        assert!(json.contains("router bgp"));
        let html_text = std::fs::read_to_string(&html).unwrap();
        assert!(html_text.contains("<html"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_json_mode_emits_schema_object() {
        let dir = tempdir("stats");
        for i in 0..6 {
            std::fs::write(
                dir.join(format!("dev{i}.cfg")),
                format!(
                    "hostname DEV{}\nrouter bgp 65000\n vlan {}\n",
                    100 + i,
                    250 + i
                ),
            )
            .unwrap();
        }
        let configs = format!("{}/*.cfg", dir.display());
        let contracts = format!("{}/contracts.json", dir.display());

        let (code, out) = run_str(&[
            "learn",
            "--configs",
            &configs,
            "--out",
            &contracts,
            "--stats",
            "json",
        ]);
        assert_eq!(code, 0, "{out}");
        let json = concord_json::Json::parse(&out).expect("stats output is one JSON object");
        assert_eq!(
            json["schema"].as_str(),
            Some(concord_core::STATS_SCHEMA),
            "{out}"
        );
        // Six configs share line shapes, so the cache must have hits.
        assert!(json["build"]["cache"]["hits"].as_u64().unwrap() > 0);
        assert!(json["learn"]["miners"].as_array().unwrap().len() > 1);
        assert!(json["check"].is_null());

        let (code, out) = run_str(&[
            "check",
            "--configs",
            &configs,
            "--contracts",
            &contracts,
            "--stats",
            "json",
        ]);
        assert_eq!(code, 0, "{out}");
        let json = concord_json::Json::parse(&out).expect("stats output is one JSON object");
        assert!(json["learn"].is_null());
        assert_eq!(json["check"]["violations"].as_u64(), Some(0));
        assert!(json["check"]["parallelism"].as_u64().unwrap() >= 1);

        // Text mode keeps the human summary and appends a stats block.
        let (code, out) = run_str(&[
            "check",
            "--configs",
            &configs,
            "--contracts",
            &contracts,
            "--stats",
            "text",
        ]);
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("0 violations"));
        assert!(out.contains("lex cache:"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_rejects_unknown_mode() {
        let (code, out) = run_str(&["learn", "--configs", "x/*", "--stats", "xml"]);
        assert_eq!(code, 2);
        assert!(out.contains("--stats"));
    }

    #[test]
    fn missing_configs_glob_errors() {
        let (code, out) = run_str(&[
            "learn",
            "--configs",
            "/nonexistent-concord-path/*.cfg",
            "--out",
            "/tmp/unused.json",
        ]);
        assert_eq!(code, 2);
        assert!(out.contains("no files match"));
    }

    #[test]
    fn tokens_file_parses() {
        let dir = tempdir("tokens");
        let tokens = dir.join("tokens.txt");
        std::fs::write(&tokens, "# comment\niface ([eE]t|ae)-?[0-9]+\n").unwrap();
        let lexer = build_lexer(tokens.to_str().unwrap()).unwrap();
        let (pattern, _) = lexer.lex_fragment("interface Et1");
        assert_eq!(pattern, "interface [a:iface]");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tokens_file_bad_regex_errors() {
        let dir = tempdir("badtokens");
        let tokens = dir.join("tokens.txt");
        std::fs::write(&tokens, "bad (((\n").unwrap();
        assert!(build_lexer(tokens.to_str().unwrap()).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disable_ordering_drops_ordering_contracts() {
        let dir = tempdir("noord");
        for i in 0..6 {
            std::fs::write(dir.join(format!("dev{i}.cfg")), "alpha line\nbeta line\n").unwrap();
        }
        let configs = format!("{}/*.cfg", dir.display());
        let contracts = format!("{}/contracts.json", dir.display());
        let (code, _) = run_str(&["learn", "--configs", &configs, "--out", &contracts]);
        assert_eq!(code, 0);

        // Break the ordering in one config.
        std::fs::write(dir.join("dev0.cfg"), "alpha line\ngamma\nbeta line\n").unwrap();
        let (code_with, _) = run_str(&["check", "--configs", &configs, "--contracts", &contracts]);
        let (code_without, out) = run_str(&[
            "check",
            "--configs",
            &configs,
            "--contracts",
            &contracts,
            "--disable-ordering",
        ]);
        assert_eq!(code_with, 1);
        assert_eq!(code_without, 0, "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
